//! ETPP — an event-triggered programmable prefetcher for irregular
//! workloads.
//!
//! A complete, cycle-level Rust reproduction of *"An Event-Triggered
//! Programmable Prefetcher for Irregular Workloads"* (Ainsworth & Jones,
//! ASPLOS 2018): the prefetcher architecture itself, the out-of-order core
//! and memory hierarchy it attaches to, the compiler passes that generate
//! event programs, the eight evaluation benchmarks, and the experiment
//! harness that regenerates every figure and table of the paper.
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `etpp-core` | the programmable prefetcher (filter, PPUs, EWMA, tags) |
//! | [`mem`] | `etpp-mem` | caches + MSHRs, DRAM, TLBs, memory image |
//! | [`cpu`] | `etpp-cpu` | out-of-order core, branch predictor, traces |
//! | [`isa`] | `etpp-isa` | PPU bytecode, assembler, interpreter |
//! | [`compiler`] | `etpp-compiler` | loop IR, software-prefetch conversion, pragma pass |
//! | [`baselines`] | `etpp-baselines` | stride (RPT) and Markov GHB prefetchers |
//! | [`workloads`] | `etpp-workloads` | the eight Table 2 benchmarks |
//! | [`sim`] | `etpp-sim` | full-system wiring + experiment drivers |
//! | [`trace`] | `etpp-trace` | demand-trace capture/replay fast path |
//!
//! # Example
//!
//! ```
//! use etpp::sim::{run, PrefetchMode, SystemConfig};
//! use etpp::workloads::{workload_by_name, Scale};
//!
//! let wl = workload_by_name("RandAcc").expect("Table 2 name").build(Scale::Tiny);
//! let cfg = SystemConfig::paper();
//! let base = run(&cfg, PrefetchMode::None, &wl).expect("runs");
//! let pf = run(&cfg, PrefetchMode::Manual, &wl).expect("runs");
//! assert!(pf.validated, "prefetching never changes program results");
//! assert!(pf.cycles < base.cycles, "and GUPS gets faster");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use etpp_baselines as baselines;
pub use etpp_compiler as compiler;
pub use etpp_core as core;
pub use etpp_cpu as cpu;
pub use etpp_isa as isa;
pub use etpp_mem as mem;
pub use etpp_sim as sim;
pub use etpp_trace as trace;
pub use etpp_workloads as workloads;
