//! The event-triggered programmable prefetcher — the paper's contribution.
//!
//! This crate implements the architecture of §4 of *"An Event-Triggered
//! Programmable Prefetcher for Irregular Workloads"* (Ainsworth & Jones,
//! ASPLOS 2018), attached to the simulated L1 data cache through
//! [`etpp_mem::PrefetchEngine`]:
//!
//! * **Address filter** ([`filter`]) — snoops demand loads and returning
//!   prefetches against configured virtual-address ranges (§4.2);
//! * **Observation queue** — a 40-entry FIFO of filtered events; overflow
//!   drops the oldest observation, which is always safe (§4.3);
//! * **Scheduler** — hands the oldest observation to the lowest-numbered
//!   free PPU (§4.3, the policy behind Figure 10);
//! * **PPUs** ([`ppu`]) — in-order programmable units running
//!   [`etpp_isa`] event kernels; their instruction counts are converted to
//!   time at any configured clock (§4.4, Figure 9);
//! * **EWMA calculators** ([`ewma`]) — dynamic look-ahead distances from
//!   iteration-interval and chain-latency moving averages (§4.5);
//! * **Prefetch request queue** — a 200-entry FIFO drained by the L1 as
//!   MSHRs free up (§4.6);
//! * **Memory request tags** — kernels bound to tags run when the tagged
//!   prefetch returns, enabling pointer-chasing chains (§4.7).
//!
//! A *blocked* mode (Figure 11) makes a PPU stall on every chained prefetch
//! instead of fielding its continuation as a fresh event, reproducing the
//! paper's ablation of the event-triggered programming model.
//!
//! # Example
//!
//! ```
//! use etpp_core::{ProgrammablePrefetcher, PrefetcherParams, PrefetchProgramBuilder};
//! use etpp_mem::{ConfigOp, FilterFlags, PrefetchEngine, RangeId};
//! use etpp_isa::KernelBuilder;
//!
//! // Fig. 4: on a load of A[x], prefetch two cache lines ahead.
//! let mut prog = PrefetchProgramBuilder::new();
//! let on_a_load = prog.add_kernel(
//!     KernelBuilder::new("on_A_load").ld_vaddr(0).addi(0, 0, 128).prefetch(0).halt().build(),
//! );
//! let mut pf = ProgrammablePrefetcher::new(PrefetcherParams::paper(), prog.build());
//! pf.config(0, &ConfigOp::SetRange {
//!     id: RangeId(0),
//!     lo: 0x1000,
//!     hi: 0x2000,
//!     on_load: Some(on_a_load.0),
//!     on_prefetch: None,
//!     flags: FilterFlags::default(),
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ewma;
pub mod filter;
pub mod ppu;
pub mod prefetcher;

pub use ewma::{Ewma, EwmaBank};
pub use filter::{FilterEntry, FilterTable};
pub use ppu::{Ppu, PpuState};
pub use prefetcher::{
    EngineTelemetry, PfCounters, PfEngineStats, PrefetchProgramBuilder, PrefetcherParams,
    ProgrammablePrefetcher,
};
