//! The address filter and filter table (§4.2).
//!
//! The filter snoops every demand load from the main core and every
//! prefetch completing at the L1. The filter table holds virtual-address
//! ranges, each with two kernel entry points — `Load Ptr` (run on a snooped
//! demand load in the range) and `PF Ptr` (run when a prefetch into the
//! range returns data) — plus EWMA scheduling flags. Ranges may overlap; an
//! address matching several entries produces one observation per entry.

use etpp_isa::KernelId;
use etpp_mem::FilterFlags;

/// One configured filter-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterEntry {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
    /// Kernel run on demand-load observations.
    pub on_load: Option<KernelId>,
    /// Kernel run on prefetch-return observations.
    pub on_prefetch: Option<KernelId>,
    /// EWMA roles.
    pub flags: FilterFlags,
}

impl FilterEntry {
    /// Whether `addr` falls inside this range.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.hi
    }
}

/// The filter table: a small array of optional entries, indexed by
/// [`etpp_mem::RangeId`].
#[derive(Debug, Clone)]
pub struct FilterTable {
    entries: Vec<Option<FilterEntry>>,
}

impl FilterTable {
    /// A table with `capacity` slots, all empty.
    pub fn new(capacity: usize) -> Self {
        FilterTable {
            entries: vec![None; capacity],
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Installs an entry (overwrites).
    ///
    /// # Panics
    /// Panics if `id` is beyond the table's capacity — configuration bugs
    /// are programming errors, as they would be in hardware bring-up.
    pub fn set(&mut self, id: usize, entry: FilterEntry) {
        assert!(
            id < self.entries.len(),
            "filter table slot {id} out of range"
        );
        self.entries[id] = Some(entry);
    }

    /// Clears a slot.
    pub fn clear(&mut self, id: usize) {
        if let Some(e) = self.entries.get_mut(id) {
            *e = None;
        }
    }

    /// Clears every slot.
    pub fn clear_all(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    /// Entry at `id`, if configured.
    pub fn get(&self, id: usize) -> Option<&FilterEntry> {
        self.entries.get(id).and_then(|e| e.as_ref())
    }

    /// Iterates `(range_index, entry)` pairs matching `addr`.
    pub fn matches(&self, addr: u64) -> impl Iterator<Item = (usize, &FilterEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| match e {
                Some(entry) if entry.contains(addr) => Some((i, entry)),
                _ => None,
            })
    }

    /// Number of configured entries.
    pub fn configured(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lo: u64, hi: u64) -> FilterEntry {
        FilterEntry {
            lo,
            hi,
            on_load: Some(KernelId(0)),
            on_prefetch: None,
            flags: FilterFlags::default(),
        }
    }

    #[test]
    fn match_respects_bounds() {
        let mut t = FilterTable::new(4);
        t.set(1, entry(0x1000, 0x2000));
        assert_eq!(t.matches(0x0fff).count(), 0);
        assert_eq!(t.matches(0x1000).count(), 1);
        assert_eq!(t.matches(0x1fff).count(), 1);
        assert_eq!(t.matches(0x2000).count(), 0);
    }

    #[test]
    fn overlapping_ranges_match_all() {
        let mut t = FilterTable::new(4);
        t.set(0, entry(0x1000, 0x3000));
        t.set(2, entry(0x2000, 0x4000));
        let hits: Vec<usize> = t.matches(0x2800).map(|(i, _)| i).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn clear_removes_entry() {
        let mut t = FilterTable::new(2);
        t.set(0, entry(0, 100));
        assert_eq!(t.configured(), 1);
        t.clear(0);
        assert_eq!(t.configured(), 0);
        assert_eq!(t.matches(50).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_beyond_capacity_panics() {
        let mut t = FilterTable::new(2);
        t.set(5, entry(0, 1));
    }
}
