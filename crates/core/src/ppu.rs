//! Programmable prefetch units (§4.4).
//!
//! Each PPU is an in-order, four-stage, one-instruction-per-cycle core
//! running at its own clock (1 GHz against the 3.2 GHz main core in the
//! paper's configuration). The simulator executes an event's kernel
//! *atomically* at dispatch and converts its instruction count into main-core
//! cycles of busy time; emitted prefetches are released into the request
//! queue at the cycle their `prefetch` instruction would have retired. This
//! is timing-equivalent to stepping the PPU cycle-by-cycle because kernels
//! have no external inputs after dispatch.
//!
//! In *blocked* mode (the Figure 11 ablation) a PPU additionally stalls
//! while any chained prefetch it issued is outstanding, modelling a
//! prefetcher without the event-triggered programming model.

/// Scheduling state of one PPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpuState {
    /// Available for new observations.
    Idle,
    /// Executing an event (until `busy_until`).
    Busy,
    /// Blocked-mode only: waiting for chained prefetches to return.
    Blocked,
}

/// One programmable prefetch unit.
#[derive(Debug, Clone)]
pub struct Ppu {
    /// Unit index (scheduling is lowest-ID-first, §7.2 / Figure 10).
    pub id: usize,
    busy_until: u64,
    blocked_outstanding: u32,
    block_started: u64,
    /// Total main-core cycles this unit has spent awake (busy or blocked),
    /// the numerator of Figure 10's activity factor.
    pub busy_cycles: u64,
    /// Events executed on this unit.
    pub events_run: u64,
}

impl Ppu {
    /// A fresh, idle unit.
    pub fn new(id: usize) -> Self {
        Ppu {
            id,
            busy_until: 0,
            blocked_outstanding: 0,
            block_started: 0,
            busy_cycles: 0,
            events_run: 0,
        }
    }

    /// Current state at `now`.
    pub fn state(&self, now: u64) -> PpuState {
        if self.blocked_outstanding > 0 {
            PpuState::Blocked
        } else if now < self.busy_until {
            PpuState::Busy
        } else {
            PpuState::Idle
        }
    }

    /// Whether the scheduler may assign a new observation at `now`.
    pub fn is_free(&self, now: u64) -> bool {
        self.state(now) == PpuState::Idle
    }

    /// Cycle at which current execution finishes.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Begins executing an event at `start` for `duration` core cycles.
    pub fn begin(&mut self, start: u64, duration: u64) {
        debug_assert!(start >= self.busy_until, "PPU double-booked");
        self.busy_until = start + duration;
        self.busy_cycles += duration;
        self.events_run += 1;
    }

    /// Registers `n` outstanding chained prefetches (blocked mode). The
    /// wait time is accounted as awake time when the block resolves.
    pub fn block(&mut self, now: u64, n: u32) {
        if n == 0 {
            return;
        }
        if self.blocked_outstanding == 0 {
            self.block_started = now.max(self.busy_until);
        }
        self.blocked_outstanding += n;
    }

    /// One chained prefetch returned (or was dropped).
    pub fn unblock_one(&mut self, now: u64) {
        debug_assert!(self.blocked_outstanding > 0);
        self.blocked_outstanding -= 1;
        if self.blocked_outstanding == 0 {
            let stall = now.saturating_sub(self.block_started.max(self.busy_until));
            self.busy_cycles += stall;
            self.busy_until = self.busy_until.max(now);
        }
    }

    /// Number of chained prefetches still outstanding.
    pub fn blocked_outstanding(&self) -> u32 {
        self.blocked_outstanding
    }

    /// When the current blocking episode began (timeout handling).
    pub fn block_started(&self) -> u64 {
        self.block_started
    }

    /// Force-releases a stuck blocked unit (dropped chained prefetch).
    pub fn force_unblock(&mut self, now: u64) {
        while self.blocked_outstanding > 0 {
            self.unblock_one(now);
        }
    }

    /// Clears all transient state (context switch, §5.3).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.blocked_outstanding = 0;
        self.block_started = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_idle_busy_idle() {
        let mut p = Ppu::new(0);
        assert!(p.is_free(0));
        p.begin(10, 32);
        assert_eq!(p.state(10), PpuState::Busy);
        assert_eq!(p.state(41), PpuState::Busy);
        assert_eq!(p.state(42), PpuState::Idle);
        assert_eq!(p.busy_cycles, 32);
        assert_eq!(p.events_run, 1);
    }

    #[test]
    fn blocked_until_all_fills_return() {
        let mut p = Ppu::new(1);
        p.begin(0, 10);
        p.block(0, 2);
        assert_eq!(p.state(100), PpuState::Blocked);
        p.unblock_one(50);
        assert_eq!(p.state(100), PpuState::Blocked);
        p.unblock_one(200);
        assert_eq!(p.state(201), PpuState::Idle);
        // Stall time 10..200 counted as awake.
        assert_eq!(p.busy_cycles, 10 + 190);
    }

    #[test]
    fn force_unblock_recovers() {
        let mut p = Ppu::new(2);
        p.begin(0, 4);
        p.block(0, 3);
        p.force_unblock(500);
        assert!(p.is_free(501));
    }

    #[test]
    fn back_to_back_events_accumulate() {
        let mut p = Ppu::new(3);
        p.begin(0, 20);
        p.begin(20, 30);
        assert_eq!(p.busy_cycles, 50);
        assert_eq!(p.events_run, 2);
    }
}
