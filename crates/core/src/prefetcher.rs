//! The complete programmable prefetcher engine (§4).
//!
//! Wires the address filter, observation queue, scheduler, PPUs, EWMA
//! calculators, request tags and prefetch request queue into a single
//! [`etpp_mem::PrefetchEngine`] implementation that attaches to the
//! simulated L1 data cache.

use crate::ewma::EwmaBank;
use crate::filter::{FilterEntry, FilterTable};
use crate::ppu::Ppu;
use etpp_isa::{run_kernel, EventCtx, Kernel, KernelId, Program};
use etpp_mem::{ConfigOp, DemandEvent, Line, PrefetchEngine, PrefetchRequest, TagId};
use etpp_telemetry::{Hist, Registry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Engine-side observability: occupancy distributions of the
/// observation and request queues, sampled at each enqueue. Attached
/// behind an `Option<Box<..>>` (one pointer null-check when disabled);
/// pure observation, so engine behaviour and [`PfEngineStats`] are
/// bit-identical with telemetry on or off.
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// Observation-queue occupancy after each enqueue.
    pub obs_q_depth: Hist,
    /// Request-queue occupancy after each release.
    pub req_q_depth: Hist,
}

impl EngineTelemetry {
    /// Publishes both histograms into a registry under `engine.*`.
    pub fn publish(&self, reg: &mut Registry) {
        reg.put_hist("engine.obs_q_depth", &self.obs_q_depth);
        reg.put_hist("engine.req_q_depth", &self.req_q_depth);
    }
}

/// Number of distinct memory-request tags supported.
const NUM_TAGS: usize = 64;

/// Mask for the chain-birth timestamp carried in request metadata.
const BIRTH_MASK: u64 = (1 << 48) - 1;

/// Configuration of the prefetcher (Table 1 defaults via
/// [`PrefetcherParams::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetcherParams {
    /// Number of PPUs.
    pub num_ppus: usize,
    /// Main core clock in Hz (time base of the simulation).
    pub core_hz: u64,
    /// PPU clock in Hz.
    pub ppu_hz: u64,
    /// Observation queue capacity.
    pub observation_queue: usize,
    /// Prefetch request queue capacity.
    pub request_queue: usize,
    /// PPU-cycles of scheduler/pipeline-fill overhead per event (4-stage
    /// pipeline).
    pub dispatch_overhead: u64,
    /// Instruction budget per event (runaway-kernel guard; §5.1 traps).
    pub max_event_insts: u64,
    /// Figure 11 ablation: stall the issuing PPU on every chained prefetch.
    pub blocked_mode: bool,
    /// Look-ahead distance reported before the EWMAs are primed.
    pub default_lookahead: u64,
    /// Safety multiplier on the EWMA chain/iteration ratio (§7.2: distances
    /// are overestimated because chained prefetches serialise).
    pub lookahead_scale: u64,
    /// Upper clamp for the EWMA look-ahead distance.
    pub max_lookahead: u64,
    /// Number of global prefetcher registers.
    pub num_globals: usize,
    /// Filter-table slots.
    pub max_ranges: usize,
    /// Core cycles after which a blocked PPU whose fill never arrived is
    /// force-released (dropped prefetches must not wedge the unit).
    pub blocked_timeout: u64,
}

impl PrefetcherParams {
    /// The paper's configuration: 12 PPUs at 1 GHz against a 3.2 GHz core,
    /// 40-entry observation queue, 200-entry prefetch queue.
    pub fn paper() -> Self {
        PrefetcherParams {
            num_ppus: 12,
            core_hz: 3_200_000_000,
            ppu_hz: 1_000_000_000,
            observation_queue: 40,
            request_queue: 200,
            dispatch_overhead: 4,
            max_event_insts: 512,
            blocked_mode: false,
            default_lookahead: 16,
            lookahead_scale: 4,
            max_lookahead: 256,
            num_globals: 32,
            max_ranges: 16,
            blocked_timeout: 4096,
        }
    }

    /// Paper configuration with a different PPU count and clock (Figure 9).
    pub fn with_ppus(num_ppus: usize, ppu_hz: u64) -> Self {
        PrefetcherParams {
            num_ppus,
            ppu_hz,
            ..PrefetcherParams::paper()
        }
    }
}

impl Default for PrefetcherParams {
    fn default() -> Self {
        PrefetcherParams::paper()
    }
}

/// Builder assembling the kernels of a prefetch program.
#[derive(Debug, Default)]
pub struct PrefetchProgramBuilder {
    program: Program,
}

impl PrefetchProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        PrefetchProgramBuilder::default()
    }

    /// Adds a kernel, returning its id (used in filter/tag configuration).
    pub fn add_kernel(&mut self, kernel: Kernel) -> KernelId {
        self.program.add(kernel)
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        self.program
    }
}

/// Scalar event counters, updated on the hot path. Allocation-free and
/// cheap to read mid-run via [`ProgrammablePrefetcher::counters`];
/// per-PPU tallies live on the [`Ppu`]s themselves and are only gathered
/// into a [`PfEngineStats`] snapshot at reporting boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfCounters {
    /// Events dispatched to PPUs.
    pub events_run: u64,
    /// Events terminated early (trap / instruction budget).
    pub events_terminated: u64,
    /// Total PPU instructions executed.
    pub insts_executed: u64,
    /// Prefetch requests emitted by kernels.
    pub prefetches_emitted: u64,
    /// Observations enqueued.
    pub obs_enqueued: u64,
    /// Observations dropped on queue overflow.
    pub obs_dropped: u64,
    /// Requests dropped on queue overflow.
    pub req_dropped: u64,
    /// Blocked PPUs force-released by timeout.
    pub blocked_timeouts: u64,
}

/// Statistics exported by the engine — a reporting-boundary snapshot
/// assembled by [`ProgrammablePrefetcher::stats`]. Building one
/// allocates the per-PPU vectors, so take it once per run, never inside
/// a simulation loop (use [`ProgrammablePrefetcher::counters`] there).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PfEngineStats {
    /// Events dispatched to PPUs.
    pub events_run: u64,
    /// Events terminated early (trap / instruction budget).
    pub events_terminated: u64,
    /// Total PPU instructions executed.
    pub insts_executed: u64,
    /// Prefetch requests emitted by kernels.
    pub prefetches_emitted: u64,
    /// Observations enqueued.
    pub obs_enqueued: u64,
    /// Observations dropped on queue overflow.
    pub obs_dropped: u64,
    /// Requests dropped on queue overflow.
    pub req_dropped: u64,
    /// Blocked PPUs force-released by timeout.
    pub blocked_timeouts: u64,
    /// Per-PPU busy (awake) core cycles — Figure 10's numerator.
    pub per_ppu_busy: Vec<u64>,
    /// Per-PPU events executed.
    pub per_ppu_events: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Observation {
    /// Cycle the observation entered the queue. An observation can
    /// never dispatch before this — it floors the scheduling horizon
    /// when idle PPUs carry stale (past) `busy_until` stamps.
    at: u64,
    vaddr: u64,
    kernel: KernelId,
    line: Option<Line>,
    /// Chain-birth timestamp (0 = untimed).
    birth: u64,
}

#[derive(Debug, Clone, Copy)]
struct Emission {
    vaddr: u64,
    tag: Option<u16>,
    at_inst: u64,
}

#[derive(Debug, Clone, Copy)]
struct Release {
    vaddr: u64,
    tag: Option<TagId>,
    meta: u64,
}

impl Ord for ReleaseAt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for ReleaseAt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for ReleaseAt {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ReleaseAt {}

#[derive(Debug, Clone, Copy)]
struct ReleaseAt {
    at: u64,
    seq: u64,
    rel: Release,
}

/// Kernel execution context: a snapshot of observation + global state.
/// Emissions land in a scratch buffer owned by the engine so dispatch
/// does not allocate per event.
struct KernelCtx<'a> {
    vaddr: u64,
    line: Option<&'a Line>,
    globals: &'a [u64],
    ewma: &'a EwmaBank,
    emissions: &'a mut Vec<Emission>,
}

impl EventCtx for KernelCtx<'_> {
    fn vaddr(&self) -> u64 {
        self.vaddr
    }
    fn line_word(&self, off: u8) -> u64 {
        match self.line {
            Some(l) => {
                let o = off as usize;
                u64::from_le_bytes(l[o..o + 8].try_into().expect("interp masks offsets"))
            }
            None => 0,
        }
    }
    fn global(&self, idx: u8) -> u64 {
        self.globals.get(idx as usize).copied().unwrap_or(0)
    }
    fn ewma_lookahead(&self, range: u16) -> u64 {
        self.ewma.lookahead(range as usize)
    }
    fn prefetch(&mut self, vaddr: u64, tag: Option<u16>, at_inst: u64) {
        self.emissions.push(Emission {
            vaddr,
            tag,
            at_inst,
        });
    }
}

/// The event-triggered programmable prefetcher.
#[derive(Debug)]
pub struct ProgrammablePrefetcher {
    params: PrefetcherParams,
    program: Program,
    enabled: bool,
    filter: FilterTable,
    globals: Vec<u64>,
    tag_kernels: Vec<Option<(KernelId, bool)>>,
    ewma: EwmaBank,
    obs_q: VecDeque<Observation>,
    req_q: VecDeque<Release>,
    releases: BinaryHeap<Reverse<ReleaseAt>>,
    ppus: Vec<Ppu>,
    seq: u64,
    stats: PfCounters,
    /// Scratch: filter hits collected in `on_demand`/`on_prefetch_fill`.
    scratch_hits: Vec<(usize, FilterEntry)>,
    /// Scratch: (kernel, birth) events gathered per prefetch fill.
    scratch_events: Vec<(KernelId, u64)>,
    /// Scratch: kernel emissions collected per dispatch.
    scratch_emissions: Vec<Emission>,
    /// Optional observability collector (`None` = disabled, free).
    tel: Option<Box<EngineTelemetry>>,
    /// Debug builds count scratch-buffer reallocations so tests can
    /// assert the hot path is allocation-free once warm.
    #[cfg(debug_assertions)]
    scratch_regrows: u64,
}

impl ProgrammablePrefetcher {
    /// Creates an enabled prefetcher loaded with `program`.
    pub fn new(params: PrefetcherParams, program: Program) -> Self {
        ProgrammablePrefetcher {
            enabled: true,
            filter: FilterTable::new(params.max_ranges),
            globals: vec![0; params.num_globals],
            tag_kernels: vec![None; NUM_TAGS],
            ewma: EwmaBank::new(
                params.max_ranges,
                params.default_lookahead,
                params.max_lookahead,
                params.lookahead_scale,
            ),
            obs_q: VecDeque::with_capacity(params.observation_queue),
            req_q: VecDeque::with_capacity(params.request_queue),
            releases: BinaryHeap::new(),
            ppus: (0..params.num_ppus).map(Ppu::new).collect(),
            seq: 0,
            stats: PfCounters::default(),
            scratch_hits: Vec::with_capacity(params.max_ranges),
            scratch_events: Vec::with_capacity(params.max_ranges + 1),
            scratch_emissions: Vec::with_capacity(16),
            tel: None,
            #[cfg(debug_assertions)]
            scratch_regrows: 0,
            params,
            program,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &PrefetcherParams {
        &self.params
    }

    /// Current EWMA look-ahead for a range (diagnostics/reporting).
    pub fn lookahead(&self, range: usize) -> u64 {
        self.ewma.lookahead(range)
    }

    /// Scalar event counters — allocation-free, safe to poll inside a
    /// simulation loop.
    pub fn counters(&self) -> &PfCounters {
        &self.stats
    }

    /// Full statistics snapshot including per-PPU tallies. Allocates the
    /// per-PPU vectors: take it once at a reporting boundary (end of a
    /// run), never per cycle — use [`Self::counters`] in loops.
    pub fn stats(&self) -> PfEngineStats {
        PfEngineStats {
            events_run: self.stats.events_run,
            events_terminated: self.stats.events_terminated,
            insts_executed: self.stats.insts_executed,
            prefetches_emitted: self.stats.prefetches_emitted,
            obs_enqueued: self.stats.obs_enqueued,
            obs_dropped: self.stats.obs_dropped,
            req_dropped: self.stats.req_dropped,
            blocked_timeouts: self.stats.blocked_timeouts,
            per_ppu_busy: self.ppus.iter().map(|p| p.busy_cycles).collect(),
            per_ppu_events: self.ppus.iter().map(|p| p.events_run).collect(),
        }
    }

    /// Debug builds only: how many times a hot-path scratch buffer had
    /// to reallocate. After a warm-up pass this must stay flat — the
    /// event path (`on_demand`, `on_prefetch_fill`, `dispatch`) is
    /// allocation-free in steady state.
    #[cfg(debug_assertions)]
    pub fn scratch_regrows(&self) -> u64 {
        self.scratch_regrows
    }

    /// Attaches an observability collector (see [`EngineTelemetry`]).
    pub fn enable_telemetry(&mut self) {
        self.tel = Some(Box::default());
    }

    /// The attached collector, if telemetry is enabled.
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.tel.as_deref()
    }

    /// Detaches the collector for publishing.
    pub fn take_telemetry(&mut self) -> Option<Box<EngineTelemetry>> {
        self.tel.take()
    }

    /// Simulates a context switch (§5.3): transient state — queues, PPU
    /// registers, EWMA values — is discarded; the configuration (filter
    /// table, globals, tag bindings) survives.
    pub fn context_switch(&mut self) {
        self.obs_q.clear();
        self.req_q.clear();
        self.releases.clear();
        self.ewma.reset();
        for p in &mut self.ppus {
            p.reset();
        }
    }

    /// Converts PPU cycles into core cycles at the configured clock ratio.
    #[inline]
    fn ppu_to_core(&self, ppu_cycles: u64) -> u64 {
        (ppu_cycles * self.params.core_hz).div_ceil(self.params.ppu_hz)
    }

    fn enqueue_obs(&mut self, obs: Observation) {
        if self.obs_q.len() >= self.params.observation_queue {
            // §4.3: old observations can be safely dropped.
            self.obs_q.pop_front();
            self.stats.obs_dropped += 1;
        }
        self.stats.obs_enqueued += 1;
        self.obs_q.push_back(obs);
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.obs_q_depth.record(self.obs_q.len() as u64);
        }
    }

    /// Whether a prefetch to `vaddr` with `tag` will trigger a further
    /// event when it returns (it is a *chained* prefetch).
    fn is_chained(&self, vaddr: u64, tag: Option<u16>) -> bool {
        if let Some(t) = tag {
            if self
                .tag_kernels
                .get(t as usize)
                .copied()
                .flatten()
                .is_some()
            {
                return true;
            }
        }
        self.filter
            .matches(vaddr)
            .any(|(_, e)| e.on_prefetch.is_some())
    }

    /// Executes `obs`'s kernel on `ppu_id` starting at `start`.
    fn dispatch(&mut self, start: u64, obs: &Observation, ppu_id: usize) {
        let mut emissions = std::mem::take(&mut self.scratch_emissions);
        emissions.clear();
        #[cfg(debug_assertions)]
        let cap_before = emissions.capacity();
        let kernel = self.program.kernel(obs.kernel);
        let mut ctx = KernelCtx {
            vaddr: obs.vaddr,
            line: obs.line.as_ref(),
            globals: &self.globals,
            ewma: &self.ewma,
            emissions: &mut emissions,
        };
        let out = run_kernel(kernel, &mut ctx, self.params.max_event_insts);

        self.stats.events_run += 1;
        self.stats.insts_executed += out.insts;
        if !out.completed {
            self.stats.events_terminated += 1;
        }

        let duration = self.ppu_to_core(self.params.dispatch_overhead + out.insts);
        let mut chained = 0u32;
        for em in &emissions {
            let rel_at = start + self.ppu_to_core(self.params.dispatch_overhead + em.at_inst);
            let chained_pf = self.params.blocked_mode && self.is_chained(em.vaddr, em.tag);
            if chained_pf {
                chained += 1;
            }
            let ppu_bits = if chained_pf {
                ((ppu_id as u64) + 1) << 48
            } else {
                0
            };
            let meta = (obs.birth & BIRTH_MASK) | ppu_bits;
            self.seq += 1;
            self.stats.prefetches_emitted += 1;
            self.releases.push(Reverse(ReleaseAt {
                at: rel_at,
                seq: self.seq,
                rel: Release {
                    vaddr: em.vaddr,
                    tag: em.tag.map(TagId),
                    meta,
                },
            }));
        }
        let ppu = &mut self.ppus[ppu_id];
        ppu.begin(start.max(ppu.busy_until()), duration);
        if chained > 0 {
            let until = self.ppus[ppu_id].busy_until();
            self.ppus[ppu_id].block(until, chained);
        }
        #[cfg(debug_assertions)]
        if emissions.capacity() != cap_before {
            self.scratch_regrows += 1;
        }
        self.scratch_emissions = emissions;
    }

    fn drain_releases(&mut self, now: u64) {
        while let Some(Reverse(r)) = self.releases.peek() {
            if r.at > now {
                break;
            }
            let r = self.releases.pop().expect("peeked").0;
            if self.req_q.len() >= self.params.request_queue {
                // §4.6: old requests dropped on overflow.
                if let Some(old) = self.req_q.pop_front() {
                    self.drop_request(now, &old);
                }
            }
            self.req_q.push_back(r.rel);
            if let Some(tel) = self.tel.as_deref_mut() {
                tel.req_q_depth.record(self.req_q.len() as u64);
            }
        }
    }

    fn drop_request(&mut self, now: u64, rel: &Release) {
        self.stats.req_dropped += 1;
        let ppu_bits = rel.meta >> 48;
        if ppu_bits != 0 {
            let ppu = (ppu_bits - 1) as usize;
            if ppu < self.ppus.len() && self.ppus[ppu].blocked_outstanding() > 0 {
                self.ppus[ppu].unblock_one(now);
            }
        }
    }

    /// Dispatches queued observations to free PPUs at `now`. During
    /// batched *catch-up* steps (`gate_arrivals`, replaying times before
    /// the current tick) an observation that had not been enqueued yet
    /// must not dispatch — FIFO order means the front carries the oldest
    /// stamp, so gating the front blocks nothing that could legally run.
    /// The final step at the tick's own time dispatches everything
    /// present, exactly as a unit tick would.
    fn schedule(&mut self, now: u64, gate_arrivals: bool) {
        loop {
            match self.obs_q.front() {
                Some(obs) if !gate_arrivals || obs.at <= now => {}
                _ => return,
            }
            let Some(ppu_id) = self.ppus.iter().position(|p| p.is_free(now)) else {
                return;
            };
            let obs = self.obs_q.pop_front().expect("checked non-empty");
            self.dispatch(now, &obs, ppu_id);
        }
    }

    fn check_blocked_timeouts(&mut self, now: u64) {
        if !self.params.blocked_mode {
            return;
        }
        let timeout = self.params.blocked_timeout;
        for i in 0..self.ppus.len() {
            let p = &self.ppus[i];
            if p.blocked_outstanding() > 0 && now > p.block_started() + timeout {
                self.ppus[i].force_unblock(now);
                self.stats.blocked_timeouts += 1;
            }
        }
    }

    /// One batched scheduling step at time `t` — exactly what a unit
    /// tick does: expire blocked-mode timeouts, move due emissions into
    /// the request queue, dispatch waiting observations to free PPUs.
    /// `catch_up` marks steps replaying skipped time, where
    /// not-yet-enqueued observations must stay parked.
    fn step_at(&mut self, t: u64, catch_up: bool) {
        self.check_blocked_timeouts(t);
        self.drain_releases(t);
        self.schedule(t, catch_up);
    }

    /// Earliest internal event strictly before `bound`: a release
    /// falling due, a busy PPU freeing up while observations wait, or a
    /// blocked PPU's timeout expiring. Request-queue drain is *not* an
    /// internal event — pops come from the memory system, which polls
    /// every cycle while [`PrefetchEngine::next_event_at`] reports one.
    fn next_internal_step(&self, bound: u64) -> Option<u64> {
        let mut next = u64::MAX;
        if let Some(Reverse(r)) = self.releases.peek() {
            next = next.min(r.at);
        }
        if let Some(front) = self.obs_q.front() {
            let mut free_at = u64::MAX;
            for p in &self.ppus {
                if p.blocked_outstanding() == 0 {
                    free_at = free_at.min(p.busy_until());
                }
            }
            if free_at != u64::MAX {
                // A PPU idle since before the observation arrived frees
                // "at" the observation's own enqueue cycle — never
                // earlier, or the dispatch would time-travel.
                next = next.min(free_at.max(front.at));
            }
        }
        if self.params.blocked_mode {
            for p in &self.ppus {
                if p.blocked_outstanding() > 0 {
                    next = next.min(p.block_started() + self.params.blocked_timeout + 1);
                }
            }
        }
        (next < bound).then_some(next)
    }

    /// Advances the engine to cycle `now`, processing every internal
    /// event in the skipped span in time order. Equivalent to calling
    /// [`PrefetchEngine::tick`] once per cycle from the last call up to
    /// `now`: at cycles with no due release, no freeable PPU with a
    /// waiting observation, and no expiring timeout, a unit tick is a
    /// no-op, so only the event times need visiting.
    pub fn advance_to(&mut self, now: u64) {
        if !self.enabled {
            return;
        }
        let mut guard = 0u64;
        while let Some(t) = self.next_internal_step(now) {
            self.step_at(t, true);
            debug_assert!(
                self.next_internal_step(now).is_none_or(|n| n > t),
                "engine event horizon must advance"
            );
            debug_assert!(guard < 1 << 32, "advance_to stuck at t={t}");
            guard += 1;
        }
        self.step_at(now, false);
    }
}

impl PrefetchEngine for ProgrammablePrefetcher {
    fn on_demand(&mut self, now: u64, ev: &DemandEvent) {
        if !self.enabled || ev.is_write {
            return;
        }
        let mut hits = std::mem::take(&mut self.scratch_hits);
        hits.clear();
        #[cfg(debug_assertions)]
        let cap_before = hits.capacity();
        hits.extend(self.filter.matches(ev.vaddr).map(|(i, e)| (i, *e)));
        for &(i, e) in &hits {
            if e.flags.ewma_iteration {
                self.ewma.record_iteration(i, now);
            }
            if let Some(kernel) = e.on_load {
                let birth = if e.flags.ewma_chain_start { now } else { 0 };
                self.enqueue_obs(Observation {
                    at: now,
                    vaddr: ev.vaddr,
                    kernel,
                    line: None,
                    birth,
                });
            }
        }
        #[cfg(debug_assertions)]
        if hits.capacity() != cap_before {
            self.scratch_regrows += 1;
        }
        self.scratch_hits = hits;
    }

    fn on_prefetch_fill(
        &mut self,
        now: u64,
        vaddr: u64,
        line: &Line,
        tag: Option<TagId>,
        meta: u64,
    ) {
        if !self.enabled {
            return;
        }
        let birth = meta & BIRTH_MASK;
        let ppu_bits = meta >> 48;
        let blocked_ppu = if ppu_bits != 0 {
            Some((ppu_bits - 1) as usize)
        } else {
            None
        };

        // Collect events triggered by this fill: tag binding first, then
        // filter ranges (an address in several ranges yields several events).
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        #[cfg(debug_assertions)]
        let ev_cap_before = events.capacity();
        if let Some(TagId(t)) = tag {
            if let Some((kernel, chain_end)) = self.tag_kernels.get(t as usize).copied().flatten() {
                if chain_end && birth != 0 {
                    self.ewma.record_chain(now.saturating_sub(birth));
                }
                let next_birth = if chain_end { 0 } else { birth };
                events.push((kernel, next_birth));
            }
        }
        let mut range_hits = std::mem::take(&mut self.scratch_hits);
        range_hits.clear();
        #[cfg(debug_assertions)]
        let hit_cap_before = range_hits.capacity();
        range_hits.extend(self.filter.matches(vaddr).map(|(i, e)| (i, *e)));
        for &(_i, e) in &range_hits {
            if e.flags.ewma_chain_end && birth != 0 {
                self.ewma.record_chain(now.saturating_sub(birth));
            }
            if let Some(kernel) = e.on_prefetch {
                let next_birth = if e.flags.ewma_chain_end { 0 } else { birth };
                events.push((kernel, next_birth));
            }
        }
        #[cfg(debug_assertions)]
        if range_hits.capacity() != hit_cap_before {
            self.scratch_regrows += 1;
        }
        self.scratch_hits = range_hits;

        match blocked_ppu {
            Some(p) if p < self.ppus.len() => {
                // Blocked mode: the stalled unit resumes and runs every
                // continuation itself, in sequence.
                if self.ppus[p].blocked_outstanding() > 0 {
                    self.ppus[p].unblock_one(now);
                }
                for &(kernel, next_birth) in &events {
                    let start = now.max(self.ppus[p].busy_until());
                    let obs = Observation {
                        at: now,
                        vaddr,
                        kernel,
                        line: Some(*line),
                        birth: next_birth,
                    };
                    self.dispatch(start, &obs, p);
                }
            }
            _ => {
                for &(kernel, next_birth) in &events {
                    self.enqueue_obs(Observation {
                        at: now,
                        vaddr,
                        kernel,
                        line: Some(*line),
                        birth: next_birth,
                    });
                }
            }
        }
        #[cfg(debug_assertions)]
        if events.capacity() != ev_cap_before {
            self.scratch_regrows += 1;
        }
        self.scratch_events = events;
    }

    fn tick(&mut self, now: u64) {
        // `advance_to` degenerates to the classic
        // timeouts → drain → schedule phases when called every cycle,
        // and replays any skipped span's internal events in time order
        // when the caller jumped ahead by the event horizon.
        self.advance_to(now);
    }

    fn pop_request(&mut self, _now: u64) -> Option<PrefetchRequest> {
        if !self.enabled {
            return None;
        }
        self.req_q.pop_front().map(|r| PrefetchRequest {
            vaddr: r.vaddr,
            tag: r.tag,
            meta: r.meta,
        })
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        // Queued requests drain through per-cycle pops by the memory
        // system, so they pin the horizon to the very next cycle.
        let mut next = if self.req_q.is_empty() {
            u64::MAX
        } else {
            now + 1
        };
        if let Some(t) = self.next_internal_step(u64::MAX) {
            next = next.min(t.max(now + 1));
        }
        (next != u64::MAX).then_some(next)
    }

    fn next_tick_at(&self, now: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        // Internal work only — due releases, a busy PPU freeing up for
        // a waiting observation, a blocked-mode timeout. The pop queue
        // is excluded: while the memory system's prefetch buffer is
        // full it cannot pop anyway, and it re-arms the round itself
        // when a slot frees.
        self.next_internal_step(u64::MAX).map(|t| t.max(now + 1))
    }

    fn config(&mut self, _now: u64, op: &ConfigOp) {
        match op {
            ConfigOp::SetRange {
                id,
                lo,
                hi,
                on_load,
                on_prefetch,
                flags,
            } => {
                self.filter.set(
                    id.0 as usize,
                    FilterEntry {
                        lo: *lo,
                        hi: *hi,
                        on_load: on_load.map(KernelId),
                        on_prefetch: on_prefetch.map(KernelId),
                        flags: *flags,
                    },
                );
            }
            ConfigOp::ClearRange { id } => self.filter.clear(id.0 as usize),
            ConfigOp::SetGlobal { idx, value } => {
                if let Some(g) = self.globals.get_mut(*idx as usize) {
                    *g = *value;
                }
            }
            ConfigOp::SetTagKernel {
                tag,
                kernel,
                chain_end,
            } => {
                if let Some(slot) = self.tag_kernels.get_mut(tag.0 as usize) {
                    *slot = Some((KernelId(*kernel), *chain_end));
                }
            }
            ConfigOp::Enable(on) => self.enabled = *on,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_isa::KernelBuilder;
    use etpp_mem::{FilterFlags, RangeId};

    fn fig4_engine(blocked: bool) -> (ProgrammablePrefetcher, u64, u64, u64) {
        // Arrays A (0x1000..0x2000), B (0x8000..0x10000), C (0x20000..0x28000).
        let a = 0x1000u64;
        let b = 0x8000u64;
        let c = 0x20000u64;
        let mut prog = PrefetchProgramBuilder::new();
        let on_a_load = prog.add_kernel(
            KernelBuilder::new("on_A_load")
                .ld_vaddr(0)
                .addi(0, 0, 128)
                .prefetch(0)
                .halt()
                .build(),
        );
        let on_a_pf = prog.add_kernel(
            KernelBuilder::new("on_A_prefetch")
                .ld_vaddr(1)
                .ld_data(0, 1)
                .shli(0, 0, 3)
                .ld_global(2, 1)
                .add(0, 0, 2)
                .prefetch(0)
                .halt()
                .build(),
        );
        let on_b_pf = prog.add_kernel(
            KernelBuilder::new("on_B_prefetch")
                .ld_vaddr(1)
                .ld_data(0, 1)
                .shli(0, 0, 3)
                .ld_global(2, 2)
                .add(0, 0, 2)
                .prefetch(0)
                .halt()
                .build(),
        );
        let params = PrefetcherParams {
            blocked_mode: blocked,
            ..PrefetcherParams::paper()
        };
        let mut pf = ProgrammablePrefetcher::new(params, prog.build());
        pf.config(0, &ConfigOp::SetGlobal { idx: 1, value: b });
        pf.config(0, &ConfigOp::SetGlobal { idx: 2, value: c });
        pf.config(
            0,
            &ConfigOp::SetRange {
                id: RangeId(0),
                lo: a,
                hi: a + 0x1000,
                on_load: Some(on_a_load.0),
                on_prefetch: Some(on_a_pf.0),
                flags: FilterFlags::default(),
            },
        );
        pf.config(
            0,
            &ConfigOp::SetRange {
                id: RangeId(1),
                lo: b,
                hi: b + 0x8000,
                on_load: None,
                on_prefetch: Some(on_b_pf.0),
                flags: FilterFlags::default(),
            },
        );
        (pf, a, b, c)
    }

    fn demand_read(vaddr: u64) -> DemandEvent {
        DemandEvent {
            at: 0,
            vaddr,
            pc: 1,
            is_write: false,
            l1_hit: false,
        }
    }

    fn run_until_request(pf: &mut ProgrammablePrefetcher, from: u64) -> (u64, PrefetchRequest) {
        for now in from..from + 10_000 {
            pf.tick(now);
            if let Some(r) = pf.pop_request(now) {
                return (now, r);
            }
        }
        panic!("no request produced");
    }

    #[test]
    fn load_event_produces_lookahead_prefetch() {
        let (mut pf, a, _, _) = fig4_engine(false);
        pf.on_demand(0, &demand_read(a + 8));
        let (at, req) = run_until_request(&mut pf, 0);
        assert_eq!(req.vaddr, a + 8 + 128);
        // 4 overhead + 3 insts at 1GHz vs 3.2GHz: ~23 core cycles.
        assert!(at >= 20, "PPU time must elapse, got {at}");
        assert_eq!(pf.stats().events_run, 1);
    }

    #[test]
    fn late_demand_does_not_dispatch_in_the_past() {
        // Regression: with every PPU idle since cycle 0 (stale
        // `busy_until` stamps), an observation arriving at cycle 1000
        // must still pay full PPU latency from cycle 1000 — batched
        // catch-up stepping must not dispatch it "in the past" and make
        // its request poppable the same cycle the demand arrived.
        let (mut pf, a, _, _) = fig4_engine(false);
        pf.on_demand(1000, &demand_read(a + 8));
        pf.tick(1000);
        assert!(
            pf.pop_request(1000).is_none(),
            "request must not be ready the cycle its demand arrived"
        );
        let (at, req) = run_until_request(&mut pf, 1001);
        assert_eq!(req.vaddr, a + 8 + 128);
        assert!(
            at >= 1020,
            "PPU latency counts from the enqueue cycle, got {at}"
        );
    }

    #[test]
    fn chain_a_to_b_to_c() {
        let (mut pf, a, b, c) = fig4_engine(false);
        pf.on_demand(0, &demand_read(a));
        let (t1, r1) = run_until_request(&mut pf, 0);
        assert_eq!(r1.vaddr, a + 128);
        // Simulate the fill returning with A[16] = 7.
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&7u64.to_le_bytes());
        pf.on_prefetch_fill(t1 + 100, r1.vaddr, &line, r1.tag, r1.meta);
        let (t2, r2) = run_until_request(&mut pf, t1 + 100);
        assert_eq!(r2.vaddr, b + 7 * 8, "B[A[x]]");
        // Fill B with value 3 -> C prefetch.
        let mut line2 = [0u8; 64];
        let off = (r2.vaddr % 64) as usize;
        line2[off..off + 8].copy_from_slice(&3u64.to_le_bytes());
        pf.on_prefetch_fill(t2 + 100, r2.vaddr, &line2, r2.tag, r2.meta);
        let (_, r3) = run_until_request(&mut pf, t2 + 100);
        assert_eq!(r3.vaddr, c + 3 * 8, "C[B[A[x]]]");
        assert_eq!(pf.stats().events_run, 3);
    }

    #[test]
    fn write_events_are_ignored() {
        let (mut pf, a, _, _) = fig4_engine(false);
        pf.on_demand(
            0,
            &DemandEvent {
                at: 0,
                vaddr: a,
                pc: 1,
                is_write: true,
                l1_hit: false,
            },
        );
        for now in 0..200 {
            pf.tick(now);
            assert!(pf.pop_request(now).is_none());
        }
    }

    #[test]
    fn observation_queue_drops_oldest() {
        let (mut pf, a, _, _) = fig4_engine(false);
        // More observations than queue capacity before any tick.
        for i in 0..60 {
            pf.on_demand(0, &demand_read(a + 8 * i));
        }
        let s = pf.stats();
        assert_eq!(s.obs_enqueued, 60);
        assert_eq!(s.obs_dropped, 60 - 40);
    }

    #[test]
    fn out_of_range_loads_ignored() {
        let (mut pf, _, _, _) = fig4_engine(false);
        pf.on_demand(0, &demand_read(0xdead_0000));
        for now in 0..100 {
            pf.tick(now);
        }
        assert_eq!(pf.stats().events_run, 0);
    }

    #[test]
    fn slower_ppu_takes_proportionally_longer() {
        let mk = |hz: u64| {
            let (mut pf, a, _, _) = fig4_engine(false);
            let mut params = *pf.params();
            params.ppu_hz = hz;
            let mut prog = PrefetchProgramBuilder::new();
            let k = prog.add_kernel(
                KernelBuilder::new("k")
                    .ld_vaddr(0)
                    .addi(0, 0, 128)
                    .prefetch(0)
                    .halt()
                    .build(),
            );
            pf = ProgrammablePrefetcher::new(params, prog.build());
            pf.config(
                0,
                &ConfigOp::SetRange {
                    id: RangeId(0),
                    lo: a,
                    hi: a + 0x1000,
                    on_load: Some(k.0),
                    on_prefetch: None,
                    flags: FilterFlags::default(),
                },
            );
            pf.on_demand(0, &demand_read(a));
            run_until_request(&mut pf, 0).0
        };
        let fast = mk(2_000_000_000);
        let slow = mk(250_000_000);
        assert!(
            slow >= fast * 6,
            "250MHz ({slow}) should be ~8x slower than 2GHz ({fast})"
        );
    }

    #[test]
    fn blocked_mode_stalls_ppu_until_fill() {
        let (mut pf, a, _, _) = fig4_engine(true);
        pf.on_demand(0, &demand_read(a));
        let (t1, r1) = run_until_request(&mut pf, 0);
        // The A-prefetch is chained (A has on_prefetch), so PPU 0 blocks.
        assert_eq!(pf.ppus[0].state(t1 + 1), crate::ppu::PpuState::Blocked);
        // New observations go to PPU 1, not PPU 0.
        pf.on_demand(t1 + 1, &demand_read(a + 64));
        pf.tick(t1 + 2);
        assert_eq!(pf.ppus[1].events_run, 1);
        // Fill arrives: PPU 0 unblocks and runs the continuation itself.
        let line = [0u8; 64];
        pf.on_prefetch_fill(t1 + 300, r1.vaddr, &line, r1.tag, r1.meta);
        assert_eq!(pf.ppus[0].events_run, 2);
    }

    #[test]
    fn event_mode_leaves_ppu_free_after_chained_prefetch() {
        let (mut pf, a, _, _) = fig4_engine(false);
        pf.on_demand(0, &demand_read(a));
        let (t1, _r1) = run_until_request(&mut pf, 0);
        assert!(pf.ppus[0].is_free(t1 + 50), "event mode never blocks");
    }

    #[test]
    fn blocked_timeout_recovers_stuck_unit() {
        let (mut pf, a, _, _) = fig4_engine(true);
        pf.on_demand(0, &demand_read(a));
        let (t1, _r1) = run_until_request(&mut pf, 0);
        // Never deliver the fill; after the timeout the PPU frees itself.
        let deadline = t1 + pf.params().blocked_timeout + 10;
        pf.tick(deadline);
        assert!(pf.ppus[0].is_free(deadline + 1));
        assert_eq!(pf.stats().blocked_timeouts, 1);
    }

    #[test]
    fn context_switch_discards_transients_keeps_config() {
        let (mut pf, a, _, _) = fig4_engine(false);
        pf.on_demand(0, &demand_read(a));
        pf.context_switch();
        for now in 0..100 {
            pf.tick(now);
            assert!(pf.pop_request(now).is_none(), "queues were cleared");
        }
        // Config survives: a new observation still triggers.
        pf.on_demand(200, &demand_read(a));
        let (_, r) = run_until_request(&mut pf, 200);
        assert_eq!(r.vaddr, a + 128);
    }

    #[test]
    fn disable_gates_everything() {
        let (mut pf, a, _, _) = fig4_engine(false);
        pf.config(0, &ConfigOp::Enable(false));
        pf.on_demand(0, &demand_read(a));
        for now in 0..100 {
            pf.tick(now);
            assert!(pf.pop_request(now).is_none());
        }
        assert_eq!(pf.stats().events_run, 0);
    }

    #[test]
    fn scheduler_prefers_lowest_id_ppu() {
        let (mut pf, a, _, _) = fig4_engine(false);
        for i in 0..3 {
            pf.on_demand(0, &demand_read(a + 8 * i));
        }
        pf.tick(0);
        // Three observations dispatched to PPUs 0,1,2 in one tick.
        assert_eq!(pf.ppus[0].events_run, 1);
        assert_eq!(pf.ppus[1].events_run, 1);
        assert_eq!(pf.ppus[2].events_run, 1);
        assert_eq!(pf.ppus[3].events_run, 0);
    }

    #[test]
    fn tagged_fill_runs_tag_kernel() {
        // Linked-list walk kernel: prefetch the next pointer unless null.
        let mut b = KernelBuilder::new("walk");
        let done = b.label();
        let walk = b
            .ld_data_imm(0, 0)
            .li(1, 0)
            .beq(0, 1, done)
            .prefetch_tag(0, 5)
            .bind(done)
            .halt()
            .build();
        let mut prog = PrefetchProgramBuilder::new();
        let k = prog.add_kernel(walk);
        let mut pf = ProgrammablePrefetcher::new(PrefetcherParams::paper(), prog.build());
        pf.config(
            0,
            &ConfigOp::SetTagKernel {
                tag: TagId(5),
                kernel: k.0,
                chain_end: false,
            },
        );
        // A fill with a non-null next pointer chains; a null one stops.
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&0x9000u64.to_le_bytes());
        pf.on_prefetch_fill(0, 0x5000, &line, Some(TagId(5)), 0);
        let (_, r) = run_until_request(&mut pf, 0);
        assert_eq!(r.vaddr, 0x9000);
        assert_eq!(r.tag, Some(TagId(5)));
        let nul = [0u8; 64];
        pf.on_prefetch_fill(500, 0x9000, &nul, Some(TagId(5)), 0);
        for now in 500..1000 {
            pf.tick(now);
            assert!(pf.pop_request(now).is_none(), "null pointer ends chain");
        }
    }

    #[test]
    fn ewma_chain_timing_flows_through_tags() {
        // Range with chain_start; tag with chain_end.
        let mut prog = PrefetchProgramBuilder::new();
        let start_k = prog.add_kernel(
            KernelBuilder::new("start")
                .ld_vaddr(0)
                .addi(0, 0, 4096)
                .prefetch_tag(0, 1)
                .halt()
                .build(),
        );
        let end_k = prog.add_kernel(KernelBuilder::new("end").halt().build());
        let mut pf = ProgrammablePrefetcher::new(PrefetcherParams::paper(), prog.build());
        pf.config(
            0,
            &ConfigOp::SetRange {
                id: RangeId(0),
                lo: 0x1000,
                hi: 0x2000,
                on_load: Some(start_k.0),
                on_prefetch: None,
                flags: FilterFlags {
                    ewma_iteration: true,
                    ewma_chain_start: true,
                    ewma_chain_end: false,
                },
            },
        );
        pf.config(
            0,
            &ConfigOp::SetTagKernel {
                tag: TagId(1),
                kernel: end_k.0,
                chain_end: true,
            },
        );
        // Iterations every 20 cycles; chain latency ~400.
        let mut now = 0;
        for i in 0..40u64 {
            pf.on_demand(now, &demand_read(0x1000 + (i % 64) * 8));
            pf.tick(now);
            if let Some(r) = pf.pop_request(now) {
                let line = [0u8; 64];
                pf.on_prefetch_fill(now + 400, r.vaddr, &line, r.tag, r.meta);
            }
            now += 20;
        }
        let la = pf.ewma.lookahead(0);
        let scale = pf.params().lookahead_scale;
        let expect = scale * 400 / 20;
        assert!(
            (expect.saturating_sub(15)..=expect + 15).contains(&la),
            "lookahead should approach {scale}*400/20={expect}, got {la}"
        );
    }
}
