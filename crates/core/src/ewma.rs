//! EWMA calculators for dynamic prefetch look-ahead (§4.5).
//!
//! The paper generalises Mowry-style compile-time look-ahead into hardware:
//! divide the observed *chain latency* (time from a triggering observation
//! to the completion of the last prefetch in its chain) by the observed
//! *iteration interval* (time between successive demand reads of the base
//! structure) to get the number of elements ahead to prefetch. Both numbers
//! are exponentially weighted moving averages that hardware can maintain
//! with a subtract-shift-add per sample.

/// A fixed-point exponentially weighted moving average.
///
/// `ewma += (sample - ewma) >> SHIFT` — the hardware-friendly form cited by
/// the paper. Stored with 8 fractional bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ewma {
    scaled: u64,
    primed: bool,
}

const FRAC_BITS: u32 = 8;
const SMOOTH_SHIFT: u32 = 3; // alpha = 1/8

impl Ewma {
    /// A fresh, unprimed average.
    pub fn new() -> Self {
        Ewma::default()
    }

    /// Whether at least one sample has been absorbed.
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// Absorbs a sample.
    pub fn update(&mut self, sample: u64) {
        let s = sample << FRAC_BITS;
        if !self.primed {
            self.scaled = s;
            self.primed = true;
        } else if s >= self.scaled {
            self.scaled += (s - self.scaled) >> SMOOTH_SHIFT;
        } else {
            self.scaled -= (self.scaled - s) >> SMOOTH_SHIFT;
        }
    }

    /// Current value (rounded down), or `None` before the first sample.
    pub fn value(&self) -> Option<u64> {
        self.primed.then_some(self.scaled >> FRAC_BITS)
    }

    /// Clears the average (context switches discard EWMA state, §5.3).
    pub fn reset(&mut self) {
        *self = Ewma::default();
    }
}

/// Per-range iteration timers plus the shared chain-latency timer.
#[derive(Debug, Clone)]
pub struct EwmaBank {
    iteration: Vec<Ewma>,
    last_access: Vec<u64>,
    chain: Ewma,
    default_lookahead: u64,
    max_lookahead: u64,
    scale: u64,
}

impl EwmaBank {
    /// Creates a bank for `ranges` filter entries. `scale` multiplies the
    /// chain/iteration ratio: the paper notes distances "must be
    /// overestimated relative to the EWMAs" (§7.2) since a chain's later
    /// links only start once earlier links return. `scale == 0` requests
    /// the *raw* (unscaled) ratio — the ablation point that measures
    /// what the safety multiplier buys — and is equivalent to `scale ==
    /// 1` by arithmetic, never a degenerate constant look-ahead of 1.
    pub fn new(ranges: usize, default_lookahead: u64, max_lookahead: u64, scale: u64) -> Self {
        EwmaBank {
            iteration: vec![Ewma::new(); ranges],
            last_access: vec![u64::MAX; ranges],
            chain: Ewma::new(),
            default_lookahead,
            max_lookahead,
            scale,
        }
    }

    /// Records a demand read of an iteration-flagged range at `now`.
    pub fn record_iteration(&mut self, range: usize, now: u64) {
        let last = self.last_access[range];
        if last != u64::MAX && now > last {
            self.iteration[range].update(now - last);
        }
        self.last_access[range] = now;
    }

    /// Records a completed timed prefetch chain (birth → completion).
    pub fn record_chain(&mut self, latency: u64) {
        self.chain.update(latency);
    }

    /// The look-ahead distance, in elements, for events observing `range`:
    /// `ceil(chain_latency / iteration_interval)`, clamped to
    /// `[1, max_lookahead]`; the configured default until both averages are
    /// primed (the paper's warm-up period).
    pub fn lookahead(&self, range: usize) -> u64 {
        let (Some(chain), Some(iter)) = (
            self.chain.value(),
            self.iteration.get(range).and_then(|e| e.value()),
        ) else {
            return self.default_lookahead;
        };
        if iter == 0 {
            return self.max_lookahead;
        }
        // `scale == 0` means "use the raw ratio": without this floor the
        // multiplication would collapse the look-ahead to a constant 1,
        // silently measuring nothing (the bug the ablation sweep used to
        // paper over by clamping its input).
        (self.scale.max(1) * chain)
            .div_ceil(iter)
            .clamp(1, self.max_lookahead)
    }

    /// Discards all timing state (context switch, §5.3).
    pub fn reset(&mut self) {
        for e in &mut self.iteration {
            e.reset();
        }
        for l in &mut self.last_access {
            *l = u64::MAX;
        }
        self.chain.reset();
    }

    /// Whether the chain timer has been primed (diagnostics).
    pub fn chain_primed(&self) -> bool {
        self.chain.primed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_stream() {
        let mut e = Ewma::new();
        for _ in 0..100 {
            e.update(320);
        }
        let v = e.value().unwrap();
        assert!((315..=320).contains(&v), "converged value {v}");
    }

    #[test]
    fn ewma_tracks_changes_smoothly() {
        let mut e = Ewma::new();
        for _ in 0..50 {
            e.update(100);
        }
        e.update(1000);
        let v = e.value().unwrap();
        assert!(v > 100 && v < 400, "one outlier moves it a little: {v}");
        for _ in 0..100 {
            e.update(1000);
        }
        assert!(e.value().unwrap() > 900, "sustained change converges");
    }

    #[test]
    fn lookahead_defaults_until_primed() {
        let bank = EwmaBank::new(4, 8, 64, 1);
        assert_eq!(bank.lookahead(0), 8);
    }

    #[test]
    fn lookahead_is_chain_over_iteration() {
        let mut bank = EwmaBank::new(4, 8, 64, 1);
        // Iterations every 10 cycles on range 2.
        let mut t = 0;
        for _ in 0..50 {
            bank.record_iteration(2, t);
            t += 10;
        }
        // Chains take ~200 cycles.
        for _ in 0..50 {
            bank.record_chain(200);
        }
        let la = bank.lookahead(2);
        assert!((18..=22).contains(&la), "expect ~20, got {la}");
    }

    #[test]
    fn lookahead_clamps_to_max() {
        let mut bank = EwmaBank::new(1, 8, 64, 1);
        for t in 0..50u64 {
            bank.record_iteration(0, t); // 1-cycle iterations
        }
        for _ in 0..50 {
            bank.record_chain(100_000);
        }
        assert_eq!(bank.lookahead(0), 64);
    }

    #[test]
    fn scale_zero_is_the_raw_ratio() {
        // The documented "0 = use the raw ratio" ablation point: a
        // zero scale must behave exactly like the unit multiplier, not
        // collapse to a constant look-ahead of 1.
        let mut raw = EwmaBank::new(1, 8, 64, 0);
        let mut unit = EwmaBank::new(1, 8, 64, 1);
        let mut t = 0;
        for _ in 0..50 {
            raw.record_iteration(0, t);
            unit.record_iteration(0, t);
            t += 10;
        }
        for _ in 0..50 {
            raw.record_chain(200);
            unit.record_chain(200);
        }
        assert_eq!(raw.lookahead(0), unit.lookahead(0));
        assert!(raw.lookahead(0) > 1, "raw ratio must still be measured");
    }

    #[test]
    fn reset_clears_state() {
        let mut bank = EwmaBank::new(1, 8, 64, 1);
        bank.record_iteration(0, 0);
        bank.record_iteration(0, 10);
        bank.record_chain(100);
        bank.reset();
        assert_eq!(bank.lookahead(0), 8);
        assert!(!bank.chain_primed());
    }
}
