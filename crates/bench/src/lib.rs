//! Benchmark harness support: scale selection and shared run helpers.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (`cargo run --release -p etpp-bench --bin repro -- all`);
//! the Criterion benches in `benches/` time the simulator itself on the
//! same experiment kernels so simulator-performance regressions are
//! visible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use etpp_workloads::Scale;

/// Parses a `--scale` argument (`tiny` | `small` | `paper`).
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("tiny"), Some(Scale::Tiny));
        assert_eq!(parse_scale("small"), Some(Scale::Small));
        assert_eq!(parse_scale("paper"), Some(Scale::Paper));
        assert_eq!(parse_scale("huge"), None);
    }
}
