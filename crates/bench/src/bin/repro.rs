//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale tiny|small|paper] [--jobs N] \
//!       [table1|table2|fig7|fig8|fig9a|fig9b|fig10|fig11|traffic|swpf|telemetry|all]
//! repro --replay [--trace-dir DIR] [--trace-format 1|2] [--jobs N] \
//!       [--scale tiny|small|paper]
//! repro --telemetry DIR [--scale tiny|small|paper] [--jobs N]
//! repro --sweep [--shard K/N] [--sweep-dir DIR] [--cache-dir DIR] \
//!       [--scale tiny|small|paper] [--trace-dir DIR] [--trace-format 1|2] [--jobs N] \
//!       [--resume] [--strict] [--fault-inject PLAN] [--cell-budget SECS]
//! repro --sweep-merge DIR
//! ```
//!
//! `--jobs N` (default: available parallelism) shards every grid —
//! workload builds, the cycle-level (workload × mode) figure grids, the
//! ablation sweeps and the replay grids — across N shared-queue worker
//! threads; results are collected by job index, so output tables are
//! byte-identical for any worker count.
//!
//! `--replay` switches to the trace-replay fast path: each workload's
//! demand stream is captured once from a cycle-level baseline run (cached
//! on disk under `--trace-dir`, default `target/traces`) and then replayed
//! against every prefetcher across `--jobs` worker threads. Replay
//! reproduces relative speedup orderings at a fraction of the cost; see
//! `etpp-trace` for the fidelity contract. `--trace-format` selects the
//! on-disk capture format (default 2: dependence-annotated, replayed
//! with the dependence-aware front end and reported with an
//! absolute-cycle agreement column against the capture run; 1 opts back
//! into the legacy fixed-window model).
//!
//! `--sweep` runs the composed ablation grid (observation-queue depth ×
//! EWMA look-ahead scale × prefetch-buffer capacity × engine mode, on
//! IntSort and HJ-8) through the sweep farm: every cell replays the
//! captured demand stream, escalating to the cycle core only where the
//! stream-level agreement gate fails, and every cell result is memoized
//! in the `--cache-dir` content-hash result cache (default
//! `target/sweep-cache`) so warm re-runs are near-free. `--shard K/N`
//! runs only jobs `i ≡ K (mod N)` and writes
//! `--sweep-dir`/shard-K-of-N.json (default `target/sweeps`); a full
//! `--sweep` (no `--shard`) also prints the merged tables.
//! `--sweep-merge DIR` parses every shard JSON in DIR, verifies exact
//! job coverage, and prints tables that are byte-identical for any
//! (jobs, shard-count) split of the same sweep.
//!
//! Sweeps are **fail-soft** (see the README's Robustness section): a
//! panicking cell is retried with deterministic backoff and then
//! quarantined into `--sweep-dir`/failures-K-of-N.json while the rest
//! of the grid completes; `--strict` restores abort-on-first-failure.
//! Every completed job is checkpointed to an fsync'd journal
//! (`--sweep-dir`/journal-K-of-N.jsonl) and `--resume` skips those
//! jobs after a crash or SIGTERM. `--fault-inject PLAN` injects
//! deterministic faults for testing — `panic=J@K` (cell J panics on
//! its first K attempts), `bpanic=W@K` (workload W's baseline),
//! `tear=J@B` (cell J's cache write torn at B bytes), `trace=W@OFF`
//! (flip a byte of workload W's trace file), `hang=J@P` (cell J spins
//! until its watchdog cancels it, polling every P ms), `slow=J@D`
//! (cell J sleeps D ms before running), `kill=C` (simulate a crash
//! after C cells), joined by `;`.
//!
//! Every sweep cell runs under a cooperative watchdog: a per-cell
//! wall-clock budget (default: a deterministic multiple of this
//! shard's measured baseline-cell time) cancels overrunning cells at
//! driver-visit granularity, retries them once at an escalated
//! budget, and then quarantines them as `timeout` alongside panics.
//! `--cell-budget SECS` overrides the budget (fractional seconds
//! accepted; `0` disarms the watchdog entirely).
//!
//! Unknown flags and experiment names are fatal (exit 2): a typo'd
//! `--shard` must never silently run the full grid.
//!
//! `--telemetry DIR` enables the observability stack on the telemetry
//! grid (IntSort + HJ-8 across the main engines): prefetch-lifecycle
//! classification tables, phase-timeline summaries, and — per cell —
//! `<wl>-<mode>.phases.json` (the interval counter time-series),
//! `<wl>-<mode>.registry.json` (all merged counters/histograms) and
//! `<wl>-<mode>.trace.json` (a Chrome-trace-event span log, loadable in
//! Perfetto / `chrome://tracing`) written under DIR. On its own it runs
//! just the `telemetry` experiment; combined with explicit experiment
//! names (or `all`) it appends the telemetry grid to them. Telemetry
//! never changes simulation results — runs are bit-identical with it
//! on or off (pinned by the equivalence suite).
//!
//! Output is GitHub-flavoured Markdown on stdout, suitable for pasting into
//! EXPERIMENTS.md.

use etpp_sim::{ablations, experiments as ex, faults, replay as rp, sweeps};
use etpp_sim::{report, PrefetchMode, SystemConfig};
use etpp_workloads::{all_workloads, Scale, Workload};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Every experiment name the positional argument accepts.
const EXPERIMENTS: [&str; 14] = [
    "table1",
    "table2",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "traffic",
    "swpf",
    "ablate",
    "zoo",
    "telemetry",
    "all",
];

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("see the doc comment at the top of crates/bench/src/bin/repro.rs for usage");
    std::process::exit(2);
}

/// The value following a flag, or a usage error naming the flag — no
/// `unwrap`/`expect` panics on user-typed command lines.
fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, msg: &str) -> &'a str {
    it.next().map_or_else(|| usage_error(msg), String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut what: Vec<String> = Vec::new();
    let mut replay = false;
    let mut sweep = false;
    let mut shard: Option<(usize, usize)> = None;
    let mut sweep_dir = PathBuf::from("target/sweeps");
    let mut cache_dir = PathBuf::from("target/sweep-cache");
    let mut sweep_merge: Option<PathBuf> = None;
    let mut telemetry_dir: Option<PathBuf> = None;
    let mut trace_dir = PathBuf::from("target/traces");
    let mut trace_format = etpp_trace::FORMAT_VERSION;
    let mut jobs = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut strict = false;
    let mut resume = false;
    let mut fault_plan: Option<faults::FaultPlan> = None;
    let mut cell_budget: Option<Duration> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            let v = next_value(&mut it, "--scale needs a value");
            scale = etpp_bench::parse_scale(v)
                .unwrap_or_else(|| usage_error(&format!("--scale: tiny|small|paper, got {v:?}")));
        } else if a == "--replay" {
            replay = true;
        } else if a == "--sweep" {
            sweep = true;
        } else if a == "--strict" {
            strict = true;
        } else if a == "--resume" {
            resume = true;
        } else if a == "--fault-inject" {
            let v = next_value(
                &mut it,
                "--fault-inject needs a plan (e.g. panic=3@2;tear=7@10;kill=5)",
            );
            match v.parse::<faults::FaultPlan>() {
                Ok(p) => fault_plan = Some(p),
                Err(e) => usage_error(&format!("--fault-inject: {e}")),
            }
        } else if a == "--cell-budget" {
            let v = next_value(&mut it, "--cell-budget needs seconds (0 disarms)");
            let secs: f64 = v.parse().unwrap_or(-1.0);
            if !secs.is_finite() || secs < 0.0 {
                usage_error(&format!("--cell-budget: non-negative seconds, got {v:?}"));
            }
            cell_budget = Some(Duration::from_secs_f64(secs));
        } else if a == "--shard" {
            let v = next_value(&mut it, "--shard needs K/N");
            let (k, n) = v
                .split_once('/')
                .and_then(|(k, n)| Some((k.parse().ok()?, n.parse().ok()?)))
                .unwrap_or_else(|| usage_error(&format!("--shard: expected K/N, got {v:?}")));
            if n == 0 || k >= n {
                usage_error(&format!("--shard: index {k} out of range for {n} shards"));
            }
            shard = Some((k, n));
        } else if a == "--sweep-dir" {
            sweep_dir = PathBuf::from(next_value(&mut it, "--sweep-dir needs a path"));
        } else if a == "--cache-dir" {
            cache_dir = PathBuf::from(next_value(&mut it, "--cache-dir needs a path"));
        } else if a == "--sweep-merge" {
            sweep_merge = Some(PathBuf::from(next_value(
                &mut it,
                "--sweep-merge needs a dir",
            )));
        } else if a == "--telemetry" {
            telemetry_dir = Some(PathBuf::from(next_value(
                &mut it,
                "--telemetry needs a dir",
            )));
        } else if a == "--trace-dir" {
            trace_dir = PathBuf::from(next_value(&mut it, "--trace-dir needs a path"));
        } else if a == "--trace-format" {
            let v = next_value(&mut it, "--trace-format needs a version");
            trace_format = v
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("--trace-format: 1 or 2, got {v:?}")));
            if !(etpp_trace::MIN_FORMAT_VERSION..=etpp_trace::FORMAT_VERSION)
                .contains(&trace_format)
            {
                usage_error(&format!(
                    "--trace-format: {}..={} supported, got {trace_format}",
                    etpp_trace::MIN_FORMAT_VERSION,
                    etpp_trace::FORMAT_VERSION
                ));
            }
        } else if a == "--jobs" {
            let v = next_value(&mut it, "--jobs needs a count");
            jobs = v
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("--jobs: positive integer, got {v:?}")));
        } else if a.starts_with('-') {
            usage_error(&format!("unknown flag: {a}"));
        } else {
            what.push(a.clone());
        }
    }
    for w in &what {
        if !EXPERIMENTS.contains(&w.as_str()) {
            usage_error(&format!(
                "unknown experiment: {w} (expected one of {})",
                EXPERIMENTS.join(", ")
            ));
        }
    }
    if shard.is_some() && !sweep {
        usage_error("--shard only applies to --sweep");
    }
    if !sweep {
        if strict {
            usage_error("--strict only applies to --sweep");
        }
        if resume {
            usage_error("--resume only applies to --sweep");
        }
        if fault_plan.is_some() {
            usage_error("--fault-inject only applies to --sweep");
        }
        if cell_budget.is_some() {
            usage_error("--cell-budget only applies to --sweep");
        }
    }
    if let Some(dir) = sweep_merge {
        if sweep || replay || !what.is_empty() {
            usage_error("--sweep-merge runs alone");
        }
        run_sweep_merge(&dir);
        return;
    }
    if sweep {
        if replay || !what.is_empty() {
            usage_error("--sweep runs alone (it has its own grid)");
        }
        run_sweep_cmd(&SweepCli {
            scale,
            trace_dir,
            trace_format,
            jobs,
            shard: shard.unwrap_or((0, 1)),
            cache_dir,
            sweep_dir,
            strict,
            resume,
            fault_plan,
            cell_budget,
        });
        return;
    }
    if replay {
        if !what.is_empty() {
            eprintln!(
                "warning: --replay runs the fig7/fig11 replay grids; ignoring: {}",
                what.join(" ")
            );
        }
        run_replay(scale, &trace_dir, trace_format, jobs);
        return;
    }
    // `--telemetry DIR` alone runs just the telemetry grid; alongside
    // explicit experiments (or the default `all` expansion) it rides
    // after them.
    if what.is_empty() && telemetry_dir.is_some() {
        what.push("telemetry".to_string());
    } else if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "table1", "table2", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11", "traffic",
            "swpf", "ablate", "zoo",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        if telemetry_dir.is_some() {
            what.push("telemetry".to_string());
        }
    } else if telemetry_dir.is_some() && !what.iter().any(|w| w == "telemetry") {
        what.push("telemetry".to_string());
    }

    let cfg = SystemConfig::paper();
    println!(
        "# ETPP reproduction — scale: {scale:?}\n\n\
         All speedups are relative to the no-prefetching baseline at the same scale.\n"
    );

    let needs_builds = what.iter().any(|w| w != "table1");
    let t0 = Instant::now();
    let workloads = if needs_builds {
        let w = ex::build_all(scale, jobs);
        eprintln!("[build] {} workloads in {:?}", w.len(), t0.elapsed());
        w
    } else {
        Vec::new()
    };

    for w in &what {
        let t = Instant::now();
        match w.as_str() {
            "table1" => print_table1(&cfg),
            "table2" => print_table2(&workloads),
            "fig7" => {
                let cells = ex::fig7(&cfg, &workloads, jobs);
                println!(
                    "{}",
                    report::speedup_table(
                        "Figure 7: speedup over no prefetching",
                        &cells,
                        &PrefetchMode::FIGURE7,
                    )
                );
            }
            "fig8" => println!("{}", report::fig8_table(&ex::fig8(&cfg, &workloads, jobs))),
            "fig9a" => println!("{}", report::fig9a_table(&ex::fig9a(&workloads, jobs))),
            "fig9b" => {
                let g = workloads
                    .iter()
                    .find(|w| w.name == "G500-CSR")
                    .expect("G500-CSR built");
                println!("{}", report::fig9b_table(&ex::fig9b(g, jobs)));
            }
            "fig10" => println!(
                "{}",
                report::fig10_table(&ex::fig10(&cfg, &workloads, jobs))
            ),
            "fig11" => {
                let cells = ex::fig11(&cfg, &workloads, jobs);
                println!(
                    "{}",
                    report::speedup_table(
                        "Figure 11: blocked vs event-triggered",
                        &cells,
                        &[PrefetchMode::Blocked, PrefetchMode::Manual],
                    )
                );
            }
            "traffic" => println!(
                "{}",
                report::traffic_table(&ex::extra_traffic(&cfg, &workloads, jobs))
            ),
            "ablate" => {
                let hj8 = workloads.iter().find(|w| w.name == "HJ-8").expect("built");
                let intsort = workloads
                    .iter()
                    .find(|w| w.name == "IntSort")
                    .expect("built");
                println!(
                    "{}",
                    ablations::table(
                        "observation queue depth (HJ-8)",
                        "entries",
                        &ablations::observation_queue(hj8, &[4, 10, 40, 160], jobs),
                    )
                );
                println!(
                    "{}",
                    ablations::table(
                        "request queue depth (IntSort)",
                        "entries",
                        &ablations::request_queue(intsort, &[25, 50, 200, 800], jobs),
                    )
                );
                println!(
                    "{}",
                    ablations::table(
                        "EWMA look-ahead scale (IntSort)",
                        "scale",
                        &ablations::lookahead_scale(intsort, &[1, 2, 4, 8], jobs),
                    )
                );
                println!(
                    "{}",
                    ablations::table(
                        "prefetch buffer entries (IntSort)",
                        "entries",
                        &ablations::prefetch_buffer(intsort, &[0, 8, 16, 32, 64], jobs),
                    )
                );
            }
            "swpf" => println!("{}", report::swpf_table(&ex::swpf_overhead(&workloads))),
            "zoo" => {
                let cells = ex::zoo(&cfg, &workloads, jobs);
                let mut zoo_modes = vec![PrefetchMode::Stride];
                zoo_modes.extend(PrefetchMode::ZOO);
                println!(
                    "{}",
                    report::speedup_table(
                        "Engine zoo: speedup over no prefetching",
                        &cells,
                        &zoo_modes,
                    )
                );
                // Adaptive vs static on the synthetic two-phase workload
                // (built here — it is not part of the Table 2 set) plus
                // the two already-built differential-suite benchmarks.
                let twophase = etpp_workloads::phases::TwoPhase.build(scale);
                let mut targets: Vec<&etpp_workloads::BuiltWorkload> = vec![&twophase];
                for name in ["IntSort", "HJ-8"] {
                    targets.extend(workloads.iter().find(|w| w.name == name));
                }
                println!(
                    "{}",
                    report::adaptive_table(&ex::adaptive_grid(&cfg, &targets, jobs))
                );
            }
            "telemetry" => {
                let dir = telemetry_dir
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("target/telemetry"));
                run_telemetry_report(scale, &cfg, &workloads, &dir, jobs);
            }
            other => unreachable!("experiment names validated up front: {other}"),
        }
        eprintln!("[{w}] done in {:?}", t.elapsed());
    }
}

/// The `telemetry` experiment: runs the observability grid (IntSort +
/// HJ-8 across the main engines), prints the lifecycle and
/// phase-summary tables, and writes each cell's phase series, merged
/// registry and Chrome trace under `dir`.
fn run_telemetry_report(
    scale: Scale,
    cfg: &SystemConfig,
    workloads: &[etpp_workloads::BuiltWorkload],
    dir: &std::path::Path,
    jobs: usize,
) {
    let targets: Vec<&etpp_workloads::BuiltWorkload> = ["IntSort", "HJ-8"]
        .iter()
        .filter_map(|name| workloads.iter().find(|w| w.name == *name))
        .collect();
    assert!(!targets.is_empty(), "telemetry workloads not built");
    // The classic observability set plus the engine zoo — every zoo
    // engine's lifecycle/phase behaviour is part of the nightly report.
    let mut modes = vec![
        PrefetchMode::Stride,
        PrefetchMode::GhbRegular,
        PrefetchMode::Converted,
        PrefetchMode::Manual,
    ];
    modes.extend(PrefetchMode::ZOO);
    let spec = etpp_sim::TelemetrySpec::full(ex::sample_interval(scale));
    let cells = ex::telemetry_grid(cfg, &targets, &modes, &spec, jobs);

    println!("{}", report::lifecycle_table(&cells));
    println!("{}", report::phase_summary_table(&cells));

    std::fs::create_dir_all(dir).expect("create telemetry dir");
    for c in &cells {
        let stem = format!("{}-{}", c.workload, c.mode.key());
        let write = |suffix: &str, body: String| {
            let path = dir.join(format!("{stem}.{suffix}.json"));
            std::fs::write(&path, body).expect("write telemetry artifact");
            eprintln!("[telemetry] wrote {}", path.display());
        };
        write("phases", c.report.phases_json());
        write("registry", c.report.registry_json());
        write("trace", c.report.chrome_trace_json());
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Everything `--sweep` needs, bundled so the fault/resume flags ride
/// along without a nine-argument signature.
struct SweepCli {
    scale: Scale,
    trace_dir: PathBuf,
    trace_format: u16,
    jobs: usize,
    shard: (usize, usize),
    cache_dir: PathBuf,
    sweep_dir: PathBuf,
    strict: bool,
    resume: bool,
    fault_plan: Option<faults::FaultPlan>,
    cell_budget: Option<Duration>,
}

/// Exit 1 with a diagnostic naming the operation and path. Used for I/O
/// on operator-supplied locations, where a panic backtrace would bury
/// the actual problem (a bad path or full disk).
fn io_fail(what: &str, path: &std::path::Path, e: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {what} {}: {e}", path.display());
    std::process::exit(1);
}

/// `--sweep [--shard K/N]`: run one shard of the composed grid through
/// the sweep farm, write its shard JSON, and (when unsharded) print the
/// merged tables — via the same parse-and-merge path `--sweep-merge`
/// uses, so a 1-shard run and any N-shard merge are byte-identical.
fn run_sweep_cmd(cli: &SweepCli) {
    let cfg = SystemConfig::paper();
    let label = scale_label(cli.scale);
    let spec = sweeps::composed_grid();
    let (jobs, shard) = (cli.jobs, cli.shard);

    let t0 = Instant::now();
    let names = ["IntSort", "HJ-8"];
    let workloads: Vec<etpp_workloads::BuiltWorkload> = ex::map_indexed(jobs, names.len(), |i| {
        etpp_workloads::workload_by_name(names[i])
            .expect("sweep workload exists")
            .build(cli.scale)
    });
    eprintln!(
        "[build] {} workloads in {:?}",
        workloads.len(),
        t0.elapsed()
    );

    // Decode-error telemetry is reported as a delta over this run, so
    // snapshot the process-wide counter before our own capture phase
    // (which may legitimately hit a stale trace) contributes to it.
    let decode_errors_from = faults::trace_decode_errors();
    let t0 = Instant::now();
    let capture_results: Vec<Result<rp::KeyedCapture, String>> =
        ex::map_indexed(jobs, workloads.len(), |i| {
            rp::try_load_or_capture_keyed(
                Some(&cli.trace_dir),
                &cfg,
                &workloads[i],
                label,
                cli.trace_format,
            )
        });
    let mut captures: Vec<rp::KeyedCapture> = Vec::with_capacity(capture_results.len());
    let mut capture_failures: Vec<faults::FailureRecord> = Vec::new();
    for (i, result) in capture_results.into_iter().enumerate() {
        match result {
            Ok(c) => captures.push(c),
            // A failed baseline capture quarantines through the same
            // failures file as a failed cell — a structured record and
            // exit 1, not a worker panic backtrace.
            Err(e) => capture_failures.push(faults::FailureRecord {
                index: None,
                workload: workloads[i].name.to_string(),
                mode: "capture".to_string(),
                settings: "-".to_string(),
                config_hash: 0,
                class: faults::FailureClass::Panic,
                attempts: 1,
                error: e,
            }),
        }
    }
    if !capture_failures.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&cli.sweep_dir) {
            io_fail("create sweep dir", &cli.sweep_dir, &e);
        }
        let failures_path = cli
            .sweep_dir
            .join(format!("failures-{}-of-{}.json", shard.0, shard.1));
        if let Err(e) = faults::write_failures(&failures_path, &capture_failures) {
            io_fail("write failures file", &failures_path, &e);
        }
        for f in &capture_failures {
            eprintln!("[capture] FAILED: {}", f.error);
        }
        eprintln!(
            "[capture] {} baseline capture(s) failed; details in {}",
            capture_failures.len(),
            failures_path.display()
        );
        std::process::exit(1);
    }
    eprintln!("[capture] {} traces in {:?}", captures.len(), t0.elapsed());

    // Fault injection: corrupt the on-disk traces the plan names, then
    // reload those workloads. The reload exercises the corruption-
    // tolerant read path — a named decode diagnostic plus recapture,
    // never a decoder panic.
    if let Some(plan) = &cli.fault_plan {
        let paths: Vec<PathBuf> = workloads
            .iter()
            .map(|w| rp::trace_path(&cli.trace_dir, w, label, cli.trace_format))
            .collect();
        let touched = faults::apply_trace_flips(plan, &paths)
            .unwrap_or_else(|e| io_fail("corrupt trace under", &cli.trace_dir, &e));
        for wi in touched {
            eprintln!(
                "[faults] flipped a byte in {}; reloading",
                paths[wi].display()
            );
            captures[wi] = rp::load_or_capture_keyed(
                Some(&cli.trace_dir),
                &cfg,
                &workloads[wi],
                label,
                cli.trace_format,
            );
        }
    }

    let journal = cli
        .sweep_dir
        .join(format!("journal-{}-of-{}.jsonl", shard.0, shard.1));
    let opts = sweeps::SweepOptions {
        cache_dir: Some(cli.cache_dir.clone()),
        shard,
        retry: faults::RetryPolicy {
            strict: cli.strict,
            ..Default::default()
        },
        faults: cli.fault_plan.clone(),
        journal: Some(journal),
        resume: cli.resume,
        cell_budget: cli.cell_budget,
        decode_errors_from: Some(decode_errors_from),
        ..sweeps::SweepOptions::new(jobs, label)
    };
    let t0 = Instant::now();
    let run = sweeps::run_sweep(&spec, &workloads, &captures, &opts);
    eprintln!(
        "[sweep] shard {}/{}: {} of {} jobs in {:?}; {}",
        shard.0,
        shard.1,
        run.cells.len(),
        run.total_jobs,
        t0.elapsed(),
        run.cache_summary()
    );

    if let Err(e) = std::fs::create_dir_all(&cli.sweep_dir) {
        io_fail("create sweep dir", &cli.sweep_dir, &e);
    }
    let failures_path = cli
        .sweep_dir
        .join(format!("failures-{}-of-{}.json", shard.0, shard.1));
    if let Err(e) = faults::write_failures(&failures_path, &run.failures) {
        io_fail("write failures file", &failures_path, &e);
    }
    if !run.failures.is_empty() {
        eprintln!(
            "[sweep] {} cell(s) quarantined; details in {}",
            run.failures.len(),
            failures_path.display()
        );
    }
    let path = cli
        .sweep_dir
        .join(format!("shard-{}-of-{}.json", shard.0, shard.1));
    if let Err(e) = std::fs::write(&path, run.to_json()) {
        io_fail("write shard file", &path, &e);
    }
    eprintln!("[sweep] wrote {}", path.display());

    if shard == (0, 1) {
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| io_fail("read back shard file", &path, &e));
        let parsed = sweeps::parse_shard(&raw)
            .unwrap_or_else(|e| io_fail("re-parse own shard file", &path, &e));
        let merged = sweeps::merge_shards(&[parsed]).expect("single shard covers the sweep");
        println!("{}", sweeps::render_merged(&merged));
    } else {
        eprintln!(
            "[sweep] partial shard; merge with `repro --sweep-merge {}` once all {} shards exist",
            cli.sweep_dir.display(),
            shard.1
        );
    }
}

/// `--sweep-merge DIR`: parse every shard JSON in DIR, verify exact job
/// coverage, and print the merged tables. Exits 1 on coverage gaps or
/// mismatched shards.
fn run_sweep_merge(dir: &std::path::Path) {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            usage_error(&format!(
                "--sweep-merge: cannot read {}: {e}",
                dir.display()
            ))
        })
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        usage_error(&format!(
            "--sweep-merge: no shard JSONs in {}",
            dir.display()
        ));
    }
    let mut files = Vec::new();
    for p in &paths {
        let body = std::fs::read_to_string(p)
            .unwrap_or_else(|e| usage_error(&format!("cannot read {}: {e}", p.display())));
        match sweeps::parse_shard(&body) {
            Ok(f) => files.push(f),
            Err(e) => usage_error(&format!("{}: {e}", p.display())),
        }
    }
    eprintln!("[merge] {} shard files from {}", files.len(), dir.display());
    match sweeps::merge_shards(&files) {
        Ok(m) => println!("{}", sweeps::render_merged(&m)),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// The trace-replay fast path: capture (or load) every workload's demand
/// stream, then replay the Figure 7 and Figure 11 grids in parallel.
fn run_replay(scale: Scale, trace_dir: &std::path::Path, trace_format: u16, jobs: usize) {
    let cfg = SystemConfig::paper();
    let label = scale_label(scale);
    println!(
        "# ETPP reproduction (trace replay) — scale: {scale:?}, jobs: {jobs}, \
         trace format: v{trace_format}\n\n\
         Speedups are relative to a no-prefetch *replay* baseline over the same\n\
         captured stream; orderings are comparable with cycle-level results.\n\
         Dependence-annotated (v2) streams replay with the dependence-aware\n\
         front end, whose absolute cycle counts track the cycle core (see the\n\
         agreement table below); v1 streams replay with the legacy fixed\n\
         window, whose absolute counts are not comparable.\n"
    );

    let t0 = Instant::now();
    let workloads = ex::build_all(scale, jobs);
    eprintln!(
        "[build] {} workloads in {:?}",
        workloads.len(),
        t0.elapsed()
    );

    // Capture (or load from cache) every workload's stream, `jobs` at a time.
    let t0 = Instant::now();
    let captures: Vec<(etpp_trace::CapturedTrace, rp::CaptureSource)> =
        ex::map_indexed(jobs, workloads.len(), |i| {
            rp::load_or_capture_as(Some(trace_dir), &cfg, &workloads[i], label, trace_format)
        });
    eprintln!("[capture] {} traces in {:?}", captures.len(), t0.elapsed());

    println!("## Trace corpus\n");
    println!("| Benchmark | Records | Accesses | Capture cycles | Source | File |");
    println!("|---|---|---|---|---|---|");
    for (w, (t, src)) in workloads.iter().zip(&captures) {
        let path = rp::trace_path(trace_dir, w, label, trace_format);
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "| {} | {} | {} | {} | {:?} | {} ({:.1} MiB) |",
            w.name,
            t.records.len(),
            t.access_count(),
            if t.meta.capture_cycles > 0 {
                t.meta.capture_cycles.to_string()
            } else {
                "n/a (v1)".to_string()
            },
            src,
            path.display(),
            size as f64 / (1024.0 * 1024.0),
        );
    }
    println!();

    let traces: Vec<etpp_trace::CapturedTrace> = captures.into_iter().map(|(t, _)| t).collect();

    let t0 = Instant::now();
    // The Figure 7 modes that replay supports (Software needs the
    // swpf-annotated trace variant the capture corpus doesn't carry),
    // plus the engine zoo — replay coverage for the new engines is part
    // of the differential suite's contract.
    let mut replay_modes: Vec<PrefetchMode> = PrefetchMode::FIGURE7
        .into_iter()
        .filter(|m| *m != PrefetchMode::Software)
        .collect();
    replay_modes.extend(PrefetchMode::ZOO);
    let fig7 = rp::replay_grid(&cfg, &workloads, &traces, &replay_modes, jobs);
    println!(
        "{}",
        report::speedup_table(
            "Figure 7 (replay) + engine zoo: speedup over no prefetching",
            &fig7.cells,
            &replay_modes,
        )
    );
    eprintln!("[fig7-replay] done in {:?}", t0.elapsed());

    // Absolute-cycle agreement: no-prefetch replay vs the capture run's
    // recorded cycle count (the cycle core over the identical stream).
    // Only v2 headers carry the reference, so a v1 sweep skips this.
    if traces.iter().any(|t| t.meta.capture_cycles > 0) {
        println!("## Replay absolute-cycle agreement (baseline vs capture run)\n");
        println!("| Benchmark | Cycle core | Replay | Replay/cycle |");
        println!("|---|---|---|---|");
        for (i, (w, t)) in workloads.iter().zip(&traces).enumerate() {
            if t.meta.capture_cycles == 0 {
                continue;
            }
            let replayed = fig7.baseline_cycles[i];
            println!(
                "| {} | {} | {} | {:.3} |",
                w.name,
                t.meta.capture_cycles,
                replayed,
                replayed as f64 / t.meta.capture_cycles as f64,
            );
        }
        println!();
    }

    let t0 = Instant::now();
    let fig11 = rp::replay_grid(
        &cfg,
        &workloads,
        &traces,
        &[PrefetchMode::Blocked, PrefetchMode::Manual],
        jobs,
    );
    println!(
        "{}",
        report::speedup_table(
            "Figure 11 (replay): blocked vs event-triggered",
            &fig11.cells,
            &[PrefetchMode::Blocked, PrefetchMode::Manual],
        )
    );
    eprintln!("[fig11-replay] done in {:?}", t0.elapsed());
}

fn print_table1(cfg: &SystemConfig) {
    println!("## Table 1: system configuration\n");
    println!("| Component | Parameters |");
    println!("|---|---|");
    println!(
        "| Core | {}-wide OoO, {}-entry ROB, {}-entry IQ, {}/{} LQ/SQ, {} Int + {} FP + {} Mul ALUs |",
        cfg.core.width,
        cfg.core.rob_entries,
        cfg.core.iq_entries,
        cfg.core.lq_entries,
        cfg.core.sq_entries,
        cfg.core.int_alus,
        cfg.core.fp_alus,
        cfg.core.muldiv_alus
    );
    println!(
        "| Branch pred. | tournament: {} local, {} global, {} chooser, {} BTB |",
        cfg.core.bpred.local_entries,
        cfg.core.bpred.global_entries,
        cfg.core.bpred.chooser_entries,
        cfg.core.bpred.btb_entries
    );
    println!(
        "| L1D | {} KB, {}-way, {}-cycle, {} MSHRs |",
        cfg.mem.l1.size / 1024,
        cfg.mem.l1.ways,
        cfg.mem.l1.hit_latency,
        cfg.mem.l1.mshrs
    );
    println!(
        "| L2 | {} KB, {}-way, {}-cycle, {} MSHRs |",
        cfg.mem.l2.size / 1024,
        cfg.mem.l2.ways,
        cfg.mem.l2.hit_latency,
        cfg.mem.l2.mshrs
    );
    println!(
        "| TLB | {}-entry L1, {}-entry {}-way L2 ({}cy), {} walkers |",
        cfg.mem.tlb.l1_entries,
        cfg.mem.tlb.l2_entries,
        cfg.mem.tlb.l2_ways,
        cfg.mem.tlb.l2_latency,
        cfg.mem.tlb.walkers
    );
    println!(
        "| DRAM | DDR3-1600 {}-{}-{}-{}, {} banks |",
        cfg.mem.dram.t_cl,
        cfg.mem.dram.t_rcd,
        cfg.mem.dram.t_rp,
        cfg.mem.dram.t_ras,
        cfg.mem.dram.banks
    );
    println!(
        "| Prefetcher | {} PPUs @ {} MHz, {}-entry observation queue, {}-entry request queue |\n",
        cfg.pf.num_ppus,
        cfg.pf.ppu_hz / 1_000_000,
        cfg.pf.observation_queue,
        cfg.pf.request_queue
    );
}

fn print_table2(workloads: &[etpp_workloads::BuiltWorkload]) {
    println!("## Table 2: benchmarks\n");
    println!("| Benchmark | Trace ops | Mapped pages | Notes |");
    println!("|---|---|---|---|");
    let names: Vec<&str> = workloads.iter().map(|w| w.name).collect();
    let _ = names;
    for w in workloads {
        println!(
            "| {} | {} | {} | {} |",
            w.name,
            w.trace.len(),
            w.image.mapped_pages(),
            w.notes
        );
    }
    let _ = all_workloads();
    println!();
}
