//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale tiny|small|paper] [table1|table2|fig7|fig8|fig9a|fig9b|fig10|fig11|traffic|swpf|all]
//! ```
//!
//! Output is GitHub-flavoured Markdown on stdout, suitable for pasting into
//! EXPERIMENTS.md.

use etpp_sim::{ablations, experiments as ex};
use etpp_sim::{report, PrefetchMode, SystemConfig};
use etpp_workloads::{all_workloads, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut what: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            let v = it.next().expect("--scale needs a value");
            scale = etpp_bench::parse_scale(v).expect("scale: tiny|small|paper");
        } else {
            what.push(a.clone());
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "table1", "table2", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11", "traffic",
            "swpf", "ablate",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let cfg = SystemConfig::paper();
    println!(
        "# ETPP reproduction — scale: {scale:?}\n\n\
         All speedups are relative to the no-prefetching baseline at the same scale.\n"
    );

    let needs_builds = what.iter().any(|w| w != "table1");
    let t0 = Instant::now();
    let workloads = if needs_builds {
        let w = ex::build_all(scale);
        eprintln!("[build] {} workloads in {:?}", w.len(), t0.elapsed());
        w
    } else {
        Vec::new()
    };

    for w in &what {
        let t = Instant::now();
        match w.as_str() {
            "table1" => print_table1(&cfg),
            "table2" => print_table2(&workloads),
            "fig7" => {
                let cells = ex::fig7(&cfg, &workloads);
                println!(
                    "{}",
                    report::speedup_table(
                        "Figure 7: speedup over no prefetching",
                        &cells,
                        &[
                            PrefetchMode::Stride,
                            PrefetchMode::GhbRegular,
                            PrefetchMode::GhbLarge,
                            PrefetchMode::Software,
                            PrefetchMode::Pragma,
                            PrefetchMode::Converted,
                            PrefetchMode::Manual,
                        ],
                    )
                );
            }
            "fig8" => println!("{}", report::fig8_table(&ex::fig8(&cfg, &workloads))),
            "fig9a" => println!("{}", report::fig9a_table(&ex::fig9a(&workloads))),
            "fig9b" => {
                let g = workloads
                    .iter()
                    .find(|w| w.name == "G500-CSR")
                    .expect("G500-CSR built");
                println!("{}", report::fig9b_table(&ex::fig9b(g)));
            }
            "fig10" => println!("{}", report::fig10_table(&ex::fig10(&cfg, &workloads))),
            "fig11" => {
                let cells = ex::fig11(&cfg, &workloads);
                println!(
                    "{}",
                    report::speedup_table(
                        "Figure 11: blocked vs event-triggered",
                        &cells,
                        &[PrefetchMode::Blocked, PrefetchMode::Manual],
                    )
                );
            }
            "traffic" => println!("{}", report::traffic_table(&ex::extra_traffic(&cfg, &workloads))),
            "ablate" => {
                let hj8 = workloads.iter().find(|w| w.name == "HJ-8").expect("built");
                let intsort = workloads.iter().find(|w| w.name == "IntSort").expect("built");
                println!(
                    "{}",
                    ablations::table(
                        "observation queue depth (HJ-8)",
                        "entries",
                        &ablations::observation_queue(hj8, &[4, 10, 40, 160]),
                    )
                );
                println!(
                    "{}",
                    ablations::table(
                        "request queue depth (IntSort)",
                        "entries",
                        &ablations::request_queue(intsort, &[25, 50, 200, 800]),
                    )
                );
                println!(
                    "{}",
                    ablations::table(
                        "EWMA look-ahead scale (IntSort)",
                        "scale",
                        &ablations::lookahead_scale(intsort, &[1, 2, 4, 8]),
                    )
                );
                println!(
                    "{}",
                    ablations::table(
                        "prefetch buffer entries (IntSort)",
                        "entries",
                        &ablations::prefetch_buffer(intsort, &[0, 8, 16, 32, 64]),
                    )
                );
            }
            "swpf" => println!("{}", report::swpf_table(&ex::swpf_overhead(&workloads))),
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{w}] done in {:?}", t.elapsed());
    }
}

fn print_table1(cfg: &SystemConfig) {
    println!("## Table 1: system configuration\n");
    println!("| Component | Parameters |");
    println!("|---|---|");
    println!(
        "| Core | {}-wide OoO, {}-entry ROB, {}-entry IQ, {}/{} LQ/SQ, {} Int + {} FP + {} Mul ALUs |",
        cfg.core.width,
        cfg.core.rob_entries,
        cfg.core.iq_entries,
        cfg.core.lq_entries,
        cfg.core.sq_entries,
        cfg.core.int_alus,
        cfg.core.fp_alus,
        cfg.core.muldiv_alus
    );
    println!(
        "| Branch pred. | tournament: {} local, {} global, {} chooser, {} BTB |",
        cfg.core.bpred.local_entries,
        cfg.core.bpred.global_entries,
        cfg.core.bpred.chooser_entries,
        cfg.core.bpred.btb_entries
    );
    println!(
        "| L1D | {} KB, {}-way, {}-cycle, {} MSHRs |",
        cfg.mem.l1.size / 1024,
        cfg.mem.l1.ways,
        cfg.mem.l1.hit_latency,
        cfg.mem.l1.mshrs
    );
    println!(
        "| L2 | {} KB, {}-way, {}-cycle, {} MSHRs |",
        cfg.mem.l2.size / 1024,
        cfg.mem.l2.ways,
        cfg.mem.l2.hit_latency,
        cfg.mem.l2.mshrs
    );
    println!(
        "| TLB | {}-entry L1, {}-entry {}-way L2 ({}cy), {} walkers |",
        cfg.mem.tlb.l1_entries,
        cfg.mem.tlb.l2_entries,
        cfg.mem.tlb.l2_ways,
        cfg.mem.tlb.l2_latency,
        cfg.mem.tlb.walkers
    );
    println!(
        "| DRAM | DDR3-1600 {}-{}-{}-{}, {} banks |",
        cfg.mem.dram.t_cl, cfg.mem.dram.t_rcd, cfg.mem.dram.t_rp, cfg.mem.dram.t_ras, cfg.mem.dram.banks
    );
    println!(
        "| Prefetcher | {} PPUs @ {} MHz, {}-entry observation queue, {}-entry request queue |\n",
        cfg.pf.num_ppus,
        cfg.pf.ppu_hz / 1_000_000,
        cfg.pf.observation_queue,
        cfg.pf.request_queue
    );
}

fn print_table2(workloads: &[etpp_workloads::BuiltWorkload]) {
    println!("## Table 2: benchmarks\n");
    println!("| Benchmark | Trace ops | Mapped pages | Notes |");
    println!("|---|---|---|---|");
    let names: Vec<&str> = workloads.iter().map(|w| w.name).collect();
    let _ = names;
    for w in workloads {
        println!(
            "| {} | {} | {} | {} |",
            w.name,
            w.trace.len(),
            w.image.mapped_pages(),
            w.notes
        );
    }
    let _ = all_workloads();
    println!();
}
