//! Criterion benches: one per figure/table of the paper.
//!
//! These time the *simulator* running each experiment's kernel at Tiny
//! scale, so regressions in simulation speed (the practical cost of every
//! figure) are tracked. The experiment *results* themselves come from the
//! `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use etpp_sim::{experiments as ex, run, PrefetchMode, SystemConfig};
use etpp_workloads::{workload_by_name, BuiltWorkload, Scale};

fn built(name: &str) -> BuiltWorkload {
    workload_by_name(name)
        .expect("known workload")
        .build(Scale::Tiny)
}

/// Figure 7's hot cell: manual-mode simulation of the flagship benchmark.
fn bench_fig7(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for name in ["HJ-2", "IntSort"] {
        let wl = built(name);
        g.bench_function(format!("{name}/manual"), |b| {
            b.iter(|| run(&cfg, PrefetchMode::Manual, &wl).expect("runs"))
        });
        g.bench_function(format!("{name}/no-pf"), |b| {
            b.iter(|| run(&cfg, PrefetchMode::None, &wl).expect("runs"))
        });
    }
    g.finish();
}

/// Figure 8: utilisation accounting costs (manual run + stats extraction).
fn bench_fig8(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    let wl = built("ConjGrad");
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("ConjGrad/fig8-row", |b| {
        b.iter(|| ex::fig8(&cfg, std::slice::from_ref(&wl), 1))
    });
    g.finish();
}

/// Figure 9: PPU clock sweeps (the dominating sweep cost).
fn bench_fig9(c: &mut Criterion) {
    let wl = built("RandAcc");
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for hz in [250_000_000u64, 2_000_000_000] {
        let cfg = SystemConfig::with_ppus(12, hz);
        g.bench_function(format!("RandAcc/{}MHz", hz / 1_000_000), |b| {
            b.iter(|| run(&cfg, PrefetchMode::Manual, &wl).expect("runs"))
        });
    }
    g.finish();
}

/// Figure 10: per-PPU activity accounting.
fn bench_fig10(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    let wl = built("HJ-8");
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("HJ-8/activity", |b| {
        b.iter(|| ex::fig10(&cfg, std::slice::from_ref(&wl), 1))
    });
    g.finish();
}

/// Figure 11: blocked-mode simulation (PPU stalling path).
fn bench_fig11(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    let wl = built("HJ-8");
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("HJ-8/blocked", |b| {
        b.iter(|| run(&cfg, PrefetchMode::Blocked, &wl).expect("runs"))
    });
    g.finish();
}

/// Table 2: workload construction (graph generation, trace recording).
fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for name in ["G500-CSR", "HJ-8"] {
        g.bench_function(format!("{name}/build"), |b| b.iter(|| built(name)));
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_table2
);
criterion_main!(figures);
