//! Criterion microbenches for the simulator's hot components.

use criterion::{criterion_group, criterion_main, Criterion};
use etpp_core::{PrefetchProgramBuilder, PrefetcherParams, ProgrammablePrefetcher};
use etpp_isa::{run_kernel, EventCtx, KernelBuilder};
use etpp_mem::{
    AccessKind, Cache, CacheParams, Dram, DramParams, MemParams, MemoryImage, MemorySystem,
    NullEngine, PrefetchEngine,
};

struct NullCtx;
impl EventCtx for NullCtx {
    fn vaddr(&self) -> u64 {
        0x1000
    }
    fn line_word(&self, _off: u8) -> u64 {
        7
    }
    fn global(&self, _idx: u8) -> u64 {
        0x8000
    }
    fn ewma_lookahead(&self, _range: u16) -> u64 {
        16
    }
    fn prefetch(&mut self, _vaddr: u64, _tag: Option<u16>, _at: u64) {}
}

fn bench_interpreter(c: &mut Criterion) {
    let mut b = KernelBuilder::new("fanout");
    let top = b.label();
    let kernel = b
        .ld_global(1, 0)
        .li(2, 0)
        .bind(top)
        .ld_data(3, 2)
        .shli(3, 3, 3)
        .add(3, 3, 1)
        .prefetch(3)
        .addi(2, 2, 8)
        .li(4, 64)
        .bltu(2, 4, top)
        .halt()
        .build();
    c.bench_function("isa/8-wide-fanout-kernel", |bch| {
        bch.iter(|| run_kernel(&kernel, &mut NullCtx, 512))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/lookup-fill-evict", |b| {
        let mut cache = Cache::new(CacheParams::paper_l1());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x40).wrapping_mul(0x9E3779B9) & 0xFF_FFC0;
            cache.lookup_demand(addr);
            cache.fill(addr, false, false)
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/random-reads", |b| {
        let mut dram = Dram::new(DramParams::paper());
        let mut now = 0u64;
        let mut addr = 1u64;
        b.iter(|| {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            now += 10;
            dram.access_read(now, addr & 0xFF_FFC0)
        })
    });
}

fn bench_mem_system_tick(c: &mut Criterion) {
    let mut image = MemoryImage::new();
    let base = image.alloc(1 << 20, 4096);
    let mut mem = MemorySystem::new(MemParams::paper(), image);
    let mut engine = NullEngine;
    c.bench_function("mem/tick+access", |b| {
        let mut now = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            let _ = mem.try_access(now, base + (i * 8) % (1 << 20), AccessKind::Load, 1);
            mem.tick(now, &mut engine);
            mem.take_completions_due(now);
            now += 1;
            i += 1;
        })
    });
}

fn bench_prefetcher_event(c: &mut Criterion) {
    let mut prog = PrefetchProgramBuilder::new();
    let k = prog.add_kernel(
        KernelBuilder::new("k")
            .ld_vaddr(0)
            .addi(0, 0, 128)
            .prefetch(0)
            .halt()
            .build(),
    );
    let mut pf = ProgrammablePrefetcher::new(PrefetcherParams::paper(), prog.build());
    pf.config(
        0,
        &etpp_mem::ConfigOp::SetRange {
            id: etpp_mem::RangeId(0),
            lo: 0,
            hi: u64::MAX,
            on_load: Some(k.0),
            on_prefetch: None,
            flags: etpp_mem::FilterFlags::default(),
        },
    );
    c.bench_function("prefetcher/observe+dispatch+pop", |b| {
        let mut now = 0u64;
        b.iter(|| {
            pf.on_demand(
                now,
                &etpp_mem::DemandEvent {
                    at: now,
                    vaddr: 0x1000 + (now * 8) % 4096,
                    pc: 1,
                    is_write: false,
                    l1_hit: true,
                },
            );
            pf.tick(now);
            let r = pf.pop_request(now);
            now += 40;
            r
        })
    });
}

criterion_group!(
    components,
    bench_interpreter,
    bench_cache,
    bench_dram,
    bench_mem_system_tick,
    bench_prefetcher_event
);
criterion_main!(components);
