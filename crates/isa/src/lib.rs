//! The PPU instruction set: a tiny 64-bit RISC bytecode for prefetch events.
//!
//! Programmable prefetch units (PPUs) in the paper are microcontroller-class
//! in-order cores (Cortex-M0+-sized) with no load/store units, no stack and
//! no data cache. Their entire world is:
//!
//! * the virtual address that triggered the event,
//! * the 64-byte cache line observed (for prefetch-return events),
//! * local registers,
//! * global prefetcher registers (array bases, hash masks, sizes), and
//! * the EWMA look-ahead calculators.
//!
//! This crate defines that world as an instruction set ([`Inst`]), an
//! assembler with labels ([`KernelBuilder`]), and an interpreter
//! ([`run_kernel`]) that executes one event to completion against an
//! [`EventCtx`], counting instructions so the caller can convert work into
//! PPU-cycles at any clock frequency (the Figure 9 sweeps).
//!
//! # Example: the `on_A_load` kernel from Figure 4 of the paper
//!
//! ```
//! use etpp_isa::{KernelBuilder, run_kernel, EventCtx, RunOutcome};
//!
//! // void on_A_load() { prefetch(get_vaddr() + 128); }
//! let kernel = KernelBuilder::new("on_A_load")
//!     .ld_vaddr(0)
//!     .addi(0, 0, 128)
//!     .prefetch(0)
//!     .halt()
//!     .build();
//!
//! struct Ctx(Vec<u64>);
//! impl EventCtx for Ctx {
//!     fn vaddr(&self) -> u64 { 0x1000 }
//!     fn line_word(&self, _off: u8) -> u64 { 0 }
//!     fn global(&self, _idx: u8) -> u64 { 0 }
//!     fn ewma_lookahead(&self, _range: u16) -> u64 { 1 }
//!     fn prefetch(&mut self, vaddr: u64, _tag: Option<u16>, _at: u64) { self.0.push(vaddr); }
//! }
//!
//! let mut ctx = Ctx(vec![]);
//! let out = run_kernel(&kernel, &mut ctx, 64);
//! assert_eq!(out, RunOutcome { insts: 4, completed: true, prefetches: 1 });
//! assert_eq!(ctx.0, vec![0x1000 + 128]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod inst;
pub mod interp;

pub use asm::KernelBuilder;
pub use inst::{Inst, Kernel, KernelId, Program, Reg, NUM_REGS};
pub use interp::{run_kernel, EventCtx, RunOutcome};
