//! A small assembler for writing PPU kernels by hand.
//!
//! Manual prefetch programs (the paper's best-performing configuration) are
//! written with [`KernelBuilder`], which provides one chainable method per
//! instruction plus forward-referencing labels for loops — needed by kernels
//! such as HJ-8's "walk every bucket until a null pointer" (§7.1).

use crate::inst::{Inst, Kernel, Reg};
use std::collections::HashMap;

/// A label handle for branch targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum PendingBranch {
    Beq(Reg, Reg),
    Bne(Reg, Reg),
    Bltu(Reg, Reg),
    Bgeu(Reg, Reg),
    Jmp,
}

/// Builder producing a [`Kernel`] with label resolution.
///
/// # Panics
/// [`KernelBuilder::build`] panics if a label was referenced but never
/// bound, or a branch target exceeds `u16::MAX`.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<Label, usize>,
    pending: Vec<(usize, Label, PendingBranch)>,
    next_label: usize,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            pending: Vec::new(),
            next_label: 0,
        }
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    pub fn bind(mut self, label: Label) -> Self {
        self.labels.insert(label, self.insts.len());
        self
    }

    /// `rd = imm`
    pub fn li(mut self, rd: Reg, imm: u64) -> Self {
        self.insts.push(Inst::Li { rd, imm });
        self
    }

    /// `rd = rs`
    pub fn mov(mut self, rd: Reg, rs: Reg) -> Self {
        self.insts.push(Inst::Mov { rd, rs });
        self
    }

    /// `rd = ra + rb`
    pub fn add(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.insts.push(Inst::Add { rd, ra, rb });
        self
    }

    /// `rd = ra - rb`
    pub fn sub(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.insts.push(Inst::Sub { rd, ra, rb });
        self
    }

    /// `rd = ra * rb`
    pub fn mul(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.insts.push(Inst::Mul { rd, ra, rb });
        self
    }

    /// `rd = ra & rb`
    pub fn and(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.insts.push(Inst::And { rd, ra, rb });
        self
    }

    /// `rd = ra | rb`
    pub fn or(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.insts.push(Inst::Or { rd, ra, rb });
        self
    }

    /// `rd = ra ^ rb`
    pub fn xor(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.insts.push(Inst::Xor { rd, ra, rb });
        self
    }

    /// `rd = ra + imm`
    pub fn addi(mut self, rd: Reg, ra: Reg, imm: i64) -> Self {
        self.insts.push(Inst::AddI { rd, ra, imm });
        self
    }

    /// `rd = ra * imm`
    pub fn muli(mut self, rd: Reg, ra: Reg, imm: u64) -> Self {
        self.insts.push(Inst::MulI { rd, ra, imm });
        self
    }

    /// `rd = ra & imm`
    pub fn andi(mut self, rd: Reg, ra: Reg, imm: u64) -> Self {
        self.insts.push(Inst::AndI { rd, ra, imm });
        self
    }

    /// `rd = ra << sh`
    pub fn shli(mut self, rd: Reg, ra: Reg, sh: u8) -> Self {
        self.insts.push(Inst::ShlI { rd, ra, sh });
        self
    }

    /// `rd = ra >> sh`
    pub fn shri(mut self, rd: Reg, ra: Reg, sh: u8) -> Self {
        self.insts.push(Inst::ShrI { rd, ra, sh });
        self
    }

    /// `rd = get_vaddr()`
    pub fn ld_vaddr(mut self, rd: Reg) -> Self {
        self.insts.push(Inst::LdVaddr { rd });
        self
    }

    /// `rd = line[off..off+8]` (fixed byte offset)
    pub fn ld_data_imm(mut self, rd: Reg, off: u8) -> Self {
        self.insts.push(Inst::LdDataImm { rd, off });
        self
    }

    /// `rd = line[(roff & 56)..]` (register byte offset)
    pub fn ld_data(mut self, rd: Reg, roff: Reg) -> Self {
        self.insts.push(Inst::LdData { rd, roff });
        self
    }

    /// `rd = global[idx]`
    pub fn ld_global(mut self, rd: Reg, idx: u8) -> Self {
        self.insts.push(Inst::LdGlobal { rd, idx });
        self
    }

    /// `rd = ewma_lookahead(range)`
    pub fn ld_ewma(mut self, rd: Reg, range: u16) -> Self {
        self.insts.push(Inst::LdEwma { rd, range });
        self
    }

    /// `prefetch(ra)` — chain-terminating prefetch.
    pub fn prefetch(mut self, ra: Reg) -> Self {
        self.insts.push(Inst::Prefetch { ra });
        self
    }

    /// `prefetch_tag(ra, tag)` — prefetch whose return triggers `tag`'s
    /// kernel.
    pub fn prefetch_tag(mut self, ra: Reg, tag: u16) -> Self {
        self.insts.push(Inst::PrefetchTag { ra, tag });
        self
    }

    /// Branch if equal.
    pub fn beq(mut self, ra: Reg, rb: Reg, label: Label) -> Self {
        self.pending
            .push((self.insts.len(), label, PendingBranch::Beq(ra, rb)));
        self.insts.push(Inst::Beq { ra, rb, target: 0 });
        self
    }

    /// Branch if not equal.
    pub fn bne(mut self, ra: Reg, rb: Reg, label: Label) -> Self {
        self.pending
            .push((self.insts.len(), label, PendingBranch::Bne(ra, rb)));
        self.insts.push(Inst::Bne { ra, rb, target: 0 });
        self
    }

    /// Branch if unsigned less-than.
    pub fn bltu(mut self, ra: Reg, rb: Reg, label: Label) -> Self {
        self.pending
            .push((self.insts.len(), label, PendingBranch::Bltu(ra, rb)));
        self.insts.push(Inst::Bltu { ra, rb, target: 0 });
        self
    }

    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(mut self, ra: Reg, rb: Reg, label: Label) -> Self {
        self.pending
            .push((self.insts.len(), label, PendingBranch::Bgeu(ra, rb)));
        self.insts.push(Inst::Bgeu { ra, rb, target: 0 });
        self
    }

    /// Unconditional jump.
    pub fn jmp(mut self, label: Label) -> Self {
        self.pending
            .push((self.insts.len(), label, PendingBranch::Jmp));
        self.insts.push(Inst::Jmp { target: 0 });
        self
    }

    /// `halt`
    pub fn halt(mut self) -> Self {
        self.insts.push(Inst::Halt);
        self
    }

    /// Resolves labels and produces the kernel.
    pub fn build(mut self) -> Kernel {
        for (pos, label, kind) in std::mem::take(&mut self.pending) {
            let target = *self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("unbound label {label:?} in kernel {}", self.name));
            let target = u16::try_from(target).expect("kernel too large");
            self.insts[pos] = match kind {
                PendingBranch::Beq(ra, rb) => Inst::Beq { ra, rb, target },
                PendingBranch::Bne(ra, rb) => Inst::Bne { ra, rb, target },
                PendingBranch::Bltu(ra, rb) => Inst::Bltu { ra, rb, target },
                PendingBranch::Bgeu(ra, rb) => Inst::Bgeu { ra, rb, target },
                PendingBranch::Jmp => Inst::Jmp { target },
            };
        }
        Kernel {
            name: self.name,
            insts: self.insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_kernel() {
        let k = KernelBuilder::new("k")
            .ld_vaddr(0)
            .addi(0, 0, 64)
            .prefetch(0)
            .halt()
            .build();
        assert_eq!(k.len(), 4);
        assert_eq!(k.insts[3], Inst::Halt);
    }

    #[test]
    fn backward_label_resolves() {
        let mut b = KernelBuilder::new("loop");
        let top = b.label();
        let k = b
            .li(0, 0)
            .bind(top)
            .addi(0, 0, 1)
            .li(1, 10)
            .bltu(0, 1, top)
            .halt()
            .build();
        match k.insts[3] {
            Inst::Bltu { target, .. } => assert_eq!(target, 1),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn forward_label_resolves() {
        let mut b = KernelBuilder::new("fwd");
        let out = b.label();
        let k = b
            .li(0, 0)
            .li(1, 0)
            .beq(0, 1, out)
            .prefetch(0)
            .bind(out)
            .halt()
            .build();
        match k.insts[2] {
            Inst::Beq { target, .. } => assert_eq!(target, 4),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = KernelBuilder::new("bad");
        let l = b.label();
        let _ = b.jmp(l).build();
    }
}
