//! The PPU interpreter: executes one event kernel to completion.
//!
//! Execution is *batched*: when the scheduler dispatches an observation to a
//! PPU, the kernel's effects are computed immediately against the observed
//! line and current global state, and the instruction count is returned so
//! the caller can charge PPU-cycles (and release emitted prefetches at the
//! cycle each `prefetch` instruction would have retired). This preserves
//! the timing behaviour of an in-order 1-IPC core at any clock frequency
//! while keeping simulation fast.
//!
//! Faulting operations (out-of-line reads, runaway loops hitting the
//! instruction budget) terminate the event, mirroring §5.1: "any operation
//! that would usually cause a trap or exception immediately causes
//! termination of the prefetch event".

use crate::inst::{Inst, Kernel, NUM_REGS};

/// The environment a kernel executes against.
///
/// Implemented by the programmable prefetcher (`etpp-core`), which supplies
/// observation state and collects emitted prefetches; tests implement it
/// directly.
pub trait EventCtx {
    /// The virtual address that triggered this event.
    fn vaddr(&self) -> u64;
    /// Read the 8-byte word at `off` (pre-masked to 0..=56) in the observed
    /// line. For load-triggered events with no observed line this returns 0.
    fn line_word(&self, off: u8) -> u64;
    /// Read a global prefetcher register.
    fn global(&self, idx: u8) -> u64;
    /// Current EWMA look-ahead distance (in elements) for a filter range.
    fn ewma_lookahead(&self, range: u16) -> u64;
    /// Emit a prefetch request. `tag` binds the follow-on kernel; `at_inst`
    /// is the dynamic instruction index of the `prefetch` instruction, so
    /// callers can stamp each request with the PPU-cycle it retires.
    fn prefetch(&mut self, vaddr: u64, tag: Option<u16>, at_inst: u64);
}

/// Result of running one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions executed (the PPU-cycle cost of the event).
    pub insts: u64,
    /// False if the event was terminated (fault or budget exhaustion).
    pub completed: bool,
    /// Number of prefetches emitted.
    pub prefetches: u64,
}

/// Executes `kernel` against `ctx`, stopping after `max_insts` instructions.
///
/// Register state starts zeroed: events are stateless between invocations
/// (§5.1 — "PPUs do not need to keep state between computations").
pub fn run_kernel(kernel: &Kernel, ctx: &mut dyn EventCtx, max_insts: u64) -> RunOutcome {
    let mut regs = [0u64; NUM_REGS];
    let mut pc = 0usize;
    let mut insts = 0u64;
    let mut prefetches = 0u64;

    while insts < max_insts {
        let Some(inst) = kernel.insts.get(pc) else {
            // Fell off the end: treat like halt.
            return RunOutcome {
                insts,
                completed: true,
                prefetches,
            };
        };
        insts += 1;
        pc += 1;
        match *inst {
            Inst::Li { rd, imm } => regs[rd as usize] = imm,
            Inst::Mov { rd, rs } => regs[rd as usize] = regs[rs as usize],
            Inst::Add { rd, ra, rb } => {
                regs[rd as usize] = regs[ra as usize].wrapping_add(regs[rb as usize])
            }
            Inst::Sub { rd, ra, rb } => {
                regs[rd as usize] = regs[ra as usize].wrapping_sub(regs[rb as usize])
            }
            Inst::Mul { rd, ra, rb } => {
                regs[rd as usize] = regs[ra as usize].wrapping_mul(regs[rb as usize])
            }
            Inst::And { rd, ra, rb } => regs[rd as usize] = regs[ra as usize] & regs[rb as usize],
            Inst::Or { rd, ra, rb } => regs[rd as usize] = regs[ra as usize] | regs[rb as usize],
            Inst::Xor { rd, ra, rb } => regs[rd as usize] = regs[ra as usize] ^ regs[rb as usize],
            Inst::AddI { rd, ra, imm } => {
                regs[rd as usize] = regs[ra as usize].wrapping_add(imm as u64)
            }
            Inst::MulI { rd, ra, imm } => regs[rd as usize] = regs[ra as usize].wrapping_mul(imm),
            Inst::AndI { rd, ra, imm } => regs[rd as usize] = regs[ra as usize] & imm,
            Inst::ShlI { rd, ra, sh } => {
                regs[rd as usize] = regs[ra as usize].wrapping_shl(sh as u32)
            }
            Inst::ShrI { rd, ra, sh } => {
                regs[rd as usize] = regs[ra as usize].wrapping_shr(sh as u32)
            }
            Inst::LdVaddr { rd } => regs[rd as usize] = ctx.vaddr(),
            Inst::LdDataImm { rd, off } => {
                if off > 56 || off % 8 != 0 {
                    // Misaligned line read: trap → terminate event.
                    return RunOutcome {
                        insts,
                        completed: false,
                        prefetches,
                    };
                }
                regs[rd as usize] = ctx.line_word(off);
            }
            Inst::LdData { rd, roff } => {
                let off = (regs[roff as usize] & 56) as u8;
                regs[rd as usize] = ctx.line_word(off);
            }
            Inst::LdGlobal { rd, idx } => regs[rd as usize] = ctx.global(idx),
            Inst::LdEwma { rd, range } => regs[rd as usize] = ctx.ewma_lookahead(range),
            Inst::Prefetch { ra } => {
                ctx.prefetch(regs[ra as usize], None, insts);
                prefetches += 1;
            }
            Inst::PrefetchTag { ra, tag } => {
                ctx.prefetch(regs[ra as usize], Some(tag), insts);
                prefetches += 1;
            }
            Inst::Beq { ra, rb, target } => {
                if regs[ra as usize] == regs[rb as usize] {
                    pc = target as usize;
                }
            }
            Inst::Bne { ra, rb, target } => {
                if regs[ra as usize] != regs[rb as usize] {
                    pc = target as usize;
                }
            }
            Inst::Bltu { ra, rb, target } => {
                if regs[ra as usize] < regs[rb as usize] {
                    pc = target as usize;
                }
            }
            Inst::Bgeu { ra, rb, target } => {
                if regs[ra as usize] >= regs[rb as usize] {
                    pc = target as usize;
                }
            }
            Inst::Jmp { target } => pc = target as usize,
            Inst::Halt => {
                return RunOutcome {
                    insts,
                    completed: true,
                    prefetches,
                }
            }
        }
    }
    // Instruction budget exhausted: runaway event terminated.
    RunOutcome {
        insts,
        completed: false,
        prefetches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::KernelBuilder;

    struct TestCtx {
        vaddr: u64,
        line: [u8; 64],
        globals: [u64; 8],
        ewma: u64,
        emitted: Vec<(u64, Option<u16>)>,
    }

    impl Default for TestCtx {
        fn default() -> Self {
            TestCtx {
                vaddr: 0x1000,
                line: [0; 64],
                globals: [0; 8],
                ewma: 4,
                emitted: vec![],
            }
        }
    }

    impl EventCtx for TestCtx {
        fn vaddr(&self) -> u64 {
            self.vaddr
        }
        fn line_word(&self, off: u8) -> u64 {
            u64::from_le_bytes(
                self.line[off as usize..off as usize + 8]
                    .try_into()
                    .unwrap(),
            )
        }
        fn global(&self, idx: u8) -> u64 {
            self.globals[idx as usize]
        }
        fn ewma_lookahead(&self, _range: u16) -> u64 {
            self.ewma
        }
        fn prefetch(&mut self, vaddr: u64, tag: Option<u16>, _at_inst: u64) {
            self.emitted.push((vaddr, tag));
        }
    }

    #[test]
    fn figure4_on_a_prefetch_kernel() {
        // on_A_prefetch: dat = get_data(); prefetch(get_base(1) + dat*8)
        let k = KernelBuilder::new("on_A_prefetch")
            .ld_vaddr(1)
            .ld_data(0, 1) // value at the observed address within the line
            .shli(0, 0, 3)
            .ld_global(2, 1)
            .add(0, 0, 2)
            .prefetch_tag(0, 9)
            .halt()
            .build();
        let mut ctx = TestCtx {
            vaddr: 0x1008, // second word of the line
            ..Default::default()
        };
        ctx.line[8..16].copy_from_slice(&42u64.to_le_bytes());
        ctx.globals[1] = 0x8000; // base of B
        let out = run_kernel(&k, &mut ctx, 64);
        assert!(out.completed);
        assert_eq!(ctx.emitted, vec![(0x8000 + 42 * 8, Some(9))]);
    }

    #[test]
    fn loop_kernel_prefetches_n_lines() {
        // for i in 0..4: prefetch(base + 64*i)
        let mut b = KernelBuilder::new("loop");
        let top = b.label();
        let k = b
            .ld_vaddr(0) // base
            .li(1, 0) // i
            .li(2, 4) // n
            .bind(top)
            .prefetch(0)
            .addi(0, 0, 64)
            .addi(1, 1, 1)
            .bltu(1, 2, top)
            .halt()
            .build();
        let mut ctx = TestCtx::default();
        let out = run_kernel(&k, &mut ctx, 1000);
        assert!(out.completed);
        assert_eq!(out.prefetches, 4);
        assert_eq!(
            ctx.emitted.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![0x1000, 0x1040, 0x1080, 0x10c0]
        );
        // 3 setup + 4 iterations x 4 insts + halt
        assert_eq!(out.insts, 3 + 16 + 1);
    }

    #[test]
    fn runaway_loop_is_terminated() {
        let mut b = KernelBuilder::new("spin");
        let top = b.label();
        let k = b.bind(top).addi(0, 0, 1).jmp(top).build();
        let mut ctx = TestCtx::default();
        let out = run_kernel(&k, &mut ctx, 100);
        assert!(!out.completed);
        assert_eq!(out.insts, 100);
    }

    #[test]
    fn misaligned_line_read_terminates() {
        let k = KernelBuilder::new("bad").ld_data_imm(0, 13).halt().build();
        let mut ctx = TestCtx::default();
        let out = run_kernel(&k, &mut ctx, 10);
        assert!(!out.completed);
    }

    #[test]
    fn ewma_lookahead_reaches_kernel() {
        let k = KernelBuilder::new("ew")
            .ld_ewma(0, 3)
            .shli(0, 0, 3)
            .ld_vaddr(1)
            .add(0, 0, 1)
            .prefetch(0)
            .halt()
            .build();
        let mut ctx = TestCtx {
            ewma: 16,
            ..Default::default()
        };
        run_kernel(&k, &mut ctx, 64);
        assert_eq!(ctx.emitted, vec![(0x1000 + 16 * 8, None)]);
    }

    #[test]
    fn empty_kernel_completes() {
        let k = Kernel {
            name: "empty".into(),
            insts: vec![],
        };
        let mut ctx = TestCtx::default();
        let out = run_kernel(&k, &mut ctx, 10);
        assert!(out.completed);
        assert_eq!(out.insts, 0);
    }

    use crate::inst::Kernel;
}
