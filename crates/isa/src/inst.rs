//! Instruction definitions for the PPU bytecode.

/// A PPU register index (`r0`–`r15`).
pub type Reg = u8;

/// Number of PPU general-purpose registers.
///
/// The paper notes registers "provide ample storage for temporary values";
/// sixteen 64-bit registers matches a Cortex-M-class core.
pub const NUM_REGS: usize = 16;

/// One PPU instruction.
///
/// All arithmetic is 64-bit and wrapping (address arithmetic semantics).
/// Branch targets are absolute instruction indices within the kernel,
/// resolved from labels by [`crate::KernelBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd = imm`
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `rd = rs`
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd = ra + rb`
    Add {
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd = ra - rb`
    Sub {
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd = ra * rb`
    Mul {
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd = ra & rb`
    And {
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd = ra | rb`
    Or {
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd = ra ^ rb`
    Xor {
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd = ra + imm` (imm is sign-extended)
    AddI {
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
        /// Signed immediate.
        imm: i64,
    },
    /// `rd = ra * imm`
    MulI {
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
        /// Immediate multiplier.
        imm: u64,
    },
    /// `rd = ra & imm`
    AndI {
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
        /// Immediate mask.
        imm: u64,
    },
    /// `rd = ra << sh`
    ShlI {
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
        /// Shift amount (0–63).
        sh: u8,
    },
    /// `rd = ra >> sh` (logical)
    ShrI {
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
        /// Shift amount (0–63).
        sh: u8,
    },
    /// `rd = get_vaddr()` — the address that triggered this event.
    LdVaddr {
        /// Destination.
        rd: Reg,
    },
    /// `rd = *(u64*)(line + off)` — read the observed cache line at a fixed
    /// byte offset (must be 8-byte aligned, 0–56).
    LdDataImm {
        /// Destination.
        rd: Reg,
        /// Byte offset within the line.
        off: u8,
    },
    /// `rd = *(u64*)(line + (roff & 56))` — line read at a register offset.
    LdData {
        /// Destination.
        rd: Reg,
        /// Register holding the byte offset (masked into the line).
        roff: Reg,
    },
    /// `rd = global[idx]` — read a global prefetcher register.
    LdGlobal {
        /// Destination.
        rd: Reg,
        /// Global register index.
        idx: u8,
    },
    /// `rd = ewma_lookahead(range)` — the dynamic look-ahead distance (in
    /// elements) computed by the EWMA calculators for a filter range.
    LdEwma {
        /// Destination.
        rd: Reg,
        /// Filter-table range the iteration EWMA is bound to.
        range: u16,
    },
    /// Issue a prefetch to the address in `ra`. No callback: this is the
    /// last link of a chain.
    Prefetch {
        /// Register holding the target virtual address.
        ra: Reg,
    },
    /// Issue a prefetch to the address in `ra`, tagged so that the kernel
    /// registered for `tag` runs when the data arrives (§4.7).
    PrefetchTag {
        /// Register holding the target virtual address.
        ra: Reg,
        /// Memory-request tag naming the follow-on kernel.
        tag: u16,
    },
    /// Branch to `target` if `ra == rb`.
    Beq {
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Absolute instruction index.
        target: u16,
    },
    /// Branch to `target` if `ra != rb`.
    Bne {
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Absolute instruction index.
        target: u16,
    },
    /// Branch to `target` if `ra < rb` (unsigned).
    Bltu {
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Absolute instruction index.
        target: u16,
    },
    /// Branch to `target` if `ra >= rb` (unsigned).
    Bgeu {
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Absolute instruction index.
        target: u16,
    },
    /// Unconditional jump to `target`.
    Jmp {
        /// Absolute instruction index.
        target: u16,
    },
    /// Finish the event.
    Halt,
}

/// Index of a kernel within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u16);

/// A compiled event kernel: a short straight-line-ish instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Human-readable name (e.g. `on_A_prefetch`).
    pub name: String,
    /// The instructions.
    pub insts: Vec<Inst>,
}

impl Kernel {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the kernel is empty (an empty kernel completes immediately).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A full prefetch program: every kernel loadable onto the PPUs.
///
/// The paper notes at most ~1 KB of PPU code per application; the shared
/// instruction cache is modelled as always-hitting since programs are tiny.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All kernels, indexed by [`KernelId`].
    pub kernels: Vec<Kernel>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a kernel, returning its id.
    pub fn add(&mut self, kernel: Kernel) -> KernelId {
        let id = KernelId(self.kernels.len() as u16);
        self.kernels.push(kernel);
        id
    }

    /// Looks a kernel up by id.
    pub fn kernel(&self, id: KernelId) -> &Kernel {
        &self.kernels[id.0 as usize]
    }

    /// Finds a kernel by name (diagnostics/tests).
    pub fn find(&self, name: &str) -> Option<KernelId> {
        self.kernels
            .iter()
            .position(|k| k.name == name)
            .map(|i| KernelId(i as u16))
    }

    /// Total instruction footprint across all kernels (the paper's "at most
    /// 1KB fetched" check corresponds to a few hundred instructions).
    pub fn total_insts(&self) -> usize {
        self.kernels.iter().map(|k| k.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_add_and_find() {
        let mut p = Program::new();
        let a = p.add(Kernel {
            name: "a".into(),
            insts: vec![Inst::Halt],
        });
        let b = p.add(Kernel {
            name: "b".into(),
            insts: vec![Inst::Li { rd: 0, imm: 1 }, Inst::Halt],
        });
        assert_eq!(p.find("a"), Some(a));
        assert_eq!(p.find("b"), Some(b));
        assert_eq!(p.find("c"), None);
        assert_eq!(p.total_insts(), 3);
        assert_eq!(p.kernel(b).len(), 2);
    }
}
