//! G500-CSR — Graph500 breadth-first search over CSR arrays (Table 2).
//!
//! The BFS inner loop pops a vertex from the FIFO queue, loads its edge
//! range from `rowstart`, scans `edges`, and tests/sets `visited` for each
//! neighbour — four dependent indirections with abundant inter-iteration
//! memory-level parallelism that neither stride nor history prefetchers can
//! reach.
//!
//! The manual event program is the paper's flagship chain: queue load →
//! (EWMA look-ahead) queue prefetch → vertex row bounds → edge lines →
//! visited entries. Per §7.1, the work per vertex is data-dependent, so
//! this benchmark is *prefetch-compute-bound*: it keeps all 12 PPUs busy
//! and keeps scaling with PPU clock (Figures 9 and 10).

use crate::common::{checksum_region, BuiltWorkload, PrefetchSetup, Scale, Workload};
use crate::graph::{bfs_reference, kronecker, pick_root, to_csr, Csr};
use etpp_cpu::TraceBuilder;
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_Q: u32 = 0x500;
const PC_ROW: u32 = 0x504;
const PC_ROW2: u32 = 0x508;
const PC_EDGE: u32 = 0x50c;
const PC_VIS: u32 = 0x510;
const PC_BR_VIS: u32 = 0x514;
const PC_ST_VIS: u32 = 0x518;
const PC_ST_Q: u32 = 0x51c;
const PC_BR_EDGE: u32 = 0x520;
const PC_BR_ITER: u32 = 0x524;

const G_ROW_BASE: u8 = 0;
const G_EDGE_BASE: u8 = 1;
const G_VIS_BASE: u8 = 2;
const G_Q_END: u8 = 3;

const TAG_Q: u16 = 0;
const TAG_ROW: u16 = 1;
const TAG_EDGE: u16 = 2;

/// Maximum edge lines prefetched per row event ("first N", §7.1).
const MAX_EDGE_LINES: u64 = 16;

/// The G500-CSR workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct G500Csr;

struct Layout {
    rowstart: Region,
    edges: Region,
    visited: Region,
    queue: Region,
}

impl Workload for G500Csr {
    fn name(&self) -> &'static str {
        "G500-CSR"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (g_scale, edge_factor) = match scale {
            Scale::Tiny => (11u32, 8u64),
            Scale::Small => (17, 10),
            // Graph500: -s 21 -e 10 (minus validation phases).
            Scale::Paper => (21, 10),
        };
        let el = kronecker(g_scale, edge_factor, 0x6500);
        let csr = to_csr(&el);
        let root = pick_root(&csr);
        let n = csr.rowstart.len() as u64 - 1;

        let mut image = MemoryImage::new();
        let l = Layout {
            rowstart: image.alloc_region((n + 1) * 8),
            edges: image.alloc_region(csr.adjacency.len() as u64 * 8),
            visited: image.alloc_region(n * 8),
            queue: image.alloc_region(n * 8),
        };
        image.write_u64_slice(l.rowstart.base, &csr.rowstart);
        image.write_u64_slice(l.edges.base, &csr.adjacency);
        // Initialisation (skipped in the paper's measurements): root queued.
        image.write_u64(l.visited.base + 8 * root, 1);
        image.write_u64(l.queue.base, root);
        let pristine = image.clone();

        let (conv, prag) = crate::loop_ir::run_passes(&crate::loop_ir::g500_csr(
            l.queue, l.rowstart, l.edges, l.visited, 16,
        ));
        let trace = build_trace(&mut image.clone(), &l, &csr, root);
        let (order, _) = bfs_reference(&csr, root);
        let mut post = image;
        reference(&mut post, &l);
        let expected = checksum_region(&post, l.visited);
        debug_assert_eq!(
            post.read_u64(l.queue.base + 8 * (order.len() as u64 - 1)),
            *order.last().unwrap()
        );

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: None, // data-dependent inner loop: no fixed-distance swpf
            manual: Some(manual_setup(&l)),
            converted: conv,
            pragma: prag,
            check_region: l.visited,
            expected,
            notes: "Kronecker BFS; inner loop length is data-dependent so plain \
                    software prefetching has no fixed look-ahead target",
        }
    }
}

fn reference(image: &mut MemoryImage, l: &Layout) {
    let mut head = 0u64;
    let mut tail = 1u64;
    while head < tail {
        let u = image.read_u64(l.queue.base + 8 * head);
        head += 1;
        let start = image.read_u64(l.rowstart.base + 8 * u);
        let end = image.read_u64(l.rowstart.base + 8 * (u + 1));
        for e in start..end {
            let v = image.read_u64(l.edges.base + 8 * e);
            if image.read_u64(l.visited.base + 8 * v) == 0 {
                image.write_u64(l.visited.base + 8 * v, 1);
                image.write_u64(l.queue.base + 8 * tail, v);
                tail += 1;
            }
        }
    }
}

fn build_trace(image: &mut MemoryImage, l: &Layout, _csr: &Csr, _root: u64) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    let mut head = 0u64;
    let mut tail = 1u64;
    while head < tail {
        let u = image.read_u64(l.queue.base + 8 * head);
        let ldq = b.load(l.queue.base + 8 * head, PC_Q, [None, None]);
        head += 1;
        let ldr1 = b.load(l.rowstart.base + 8 * u, PC_ROW, [Some(ldq), None]);
        let ldr2 = b.load(l.rowstart.base + 8 * (u + 1), PC_ROW2, [Some(ldq), None]);
        let start = image.read_u64(l.rowstart.base + 8 * u);
        let end = image.read_u64(l.rowstart.base + 8 * (u + 1));
        for e in start..end {
            let v = image.read_u64(l.edges.base + 8 * e);
            let lde = b.load(l.edges.base + 8 * e, PC_EDGE, [Some(ldr1), Some(ldr2)]);
            let ldv = b.load(l.visited.base + 8 * v, PC_VIS, [Some(lde), None]);
            let unvisited = image.read_u64(l.visited.base + 8 * v) == 0;
            b.branch(PC_BR_VIS, unvisited, [Some(ldv), None]);
            if unvisited {
                image.write_u64(l.visited.base + 8 * v, 1);
                image.write_u64(l.queue.base + 8 * tail, v);
                b.store(l.visited.base + 8 * v, 1, PC_ST_VIS, [Some(ldv), None]);
                b.store(l.queue.base + 8 * tail, v, PC_ST_Q, [Some(lde), None]);
                b.int_op(1, [None, None]); // tail++
                tail += 1;
            }
            b.branch(PC_BR_EDGE, e + 1 != end, [None, None]);
        }
        b.branch(PC_BR_ITER, head != tail, [None, None]);
    }
    b.build()
}

fn manual_setup(l: &Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    // on_queue_load: prefetch the queue entry `lookahead` pops ahead.
    let mut kb = KernelBuilder::new("on_queue_load");
    let halt = kb.label();
    let on_queue_load = program.add_kernel(
        kb.ld_vaddr(0)
            .ld_ewma(1, 0)
            .shli(1, 1, 3)
            .add(0, 0, 1)
            .ld_global(2, G_Q_END)
            .bgeu(0, 2, halt)
            .prefetch_tag(0, TAG_Q)
            .bind(halt)
            .halt()
            .build(),
    );

    // queue entry arrived: u -> rowstart[u] (rowstart[u+1] is in the same
    // line 7 times out of 8; the row kernel handles the boundary).
    let on_q = program.add_kernel(
        KernelBuilder::new("on_q_entry")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .shli(0, 0, 3)
            .ld_global(2, G_ROW_BASE)
            .add(0, 0, 2)
            .prefetch_tag(0, TAG_ROW)
            .halt()
            .build(),
    );

    // row bounds arrived: prefetch the edge lines start..end (capped at
    // MAX_EDGE_LINES; when rowstart[u+1] sits in the next line — one case in
    // eight — fall back to a fixed "first N" window, §7.1).
    let mut kb = KernelBuilder::new("on_row");
    let have_end = kb.label();
    let cont = kb.label();
    let loop_top = kb.label();
    let halt = kb.label();
    let on_row = {
        let k = kb
            .ld_vaddr(1)
            .andi(2, 1, 63)
            .ld_data(3, 2) // start
            .li(4, 56)
            .bltu(2, 4, have_end)
            .addi(5, 3, (MAX_EDGE_LINES * 8) as i64)
            .jmp(cont)
            .bind(have_end)
            .addi(2, 2, 8)
            .ld_data(5, 2) // end
            .bind(cont)
            .shli(3, 3, 3)
            .shli(5, 5, 3)
            .ld_global(6, G_EDGE_BASE)
            .add(3, 3, 6)
            .add(5, 5, 6)
            .li(7, MAX_EDGE_LINES)
            .bind(loop_top)
            .bgeu(3, 5, halt)
            .li(8, 0)
            .beq(7, 8, halt)
            .prefetch_tag(3, TAG_EDGE)
            .addi(3, 3, 64)
            .andi(3, 3, !63)
            .addi(7, 7, -1)
            .jmp(loop_top)
            .bind(halt)
            .halt()
            .build();
        program.add_kernel(k)
    };

    // edge line arrived: test-prefetch visited for all eight neighbours.
    let mut kb = KernelBuilder::new("on_edge_line");
    let top = kb.label();
    let on_edge_line = program.add_kernel(
        kb.ld_global(1, G_VIS_BASE)
            .li(2, 0)
            .bind(top)
            .ld_data(3, 2)
            .shli(3, 3, 3)
            .add(3, 3, 1)
            .prefetch(3)
            .addi(2, 2, 8)
            .li(4, 64)
            .bltu(2, 4, top)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_ROW_BASE,
            value: l.rowstart.base,
        },
        ConfigOp::SetGlobal {
            idx: G_EDGE_BASE,
            value: l.edges.base,
        },
        ConfigOp::SetGlobal {
            idx: G_VIS_BASE,
            value: l.visited.base,
        },
        ConfigOp::SetGlobal {
            idx: G_Q_END,
            value: l.queue.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.queue.base,
            hi: l.queue.end(),
            on_load: Some(on_queue_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: l.visited.base,
            hi: l.visited.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_Q),
            kernel: on_q.0,
            chain_end: false,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_ROW),
            kernel: on_row.0,
            chain_end: false,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_EDGE),
            kernel: on_edge_line.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_trace_visits_each_edge_once() {
        let w = G500Csr.build(Scale::Tiny);
        let c = w.trace.class_counts();
        // Each scanned edge contributes an edge load + a visited load.
        assert!(c.loads > 10_000, "loads {}", c.loads);
        assert!(c.stores > 1_000, "stores {}", c.stores);
    }

    #[test]
    fn manual_program_has_four_kernels() {
        let w = G500Csr.build(Scale::Tiny);
        let p = &w.manual.as_ref().unwrap().program;
        assert!(p.find("on_queue_load").is_some());
        assert!(p.find("on_q_entry").is_some());
        assert!(p.find("on_row").is_some());
        assert!(p.find("on_edge_line").is_some());
    }

    #[test]
    fn no_software_prefetch_variant() {
        let w = G500Csr.build(Scale::Tiny);
        assert!(w.sw_trace.is_none());
    }
}
