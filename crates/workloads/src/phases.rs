//! TwoPhase — a synthetic phase-change workload for the adaptive engine.
//!
//! Not one of Table 2's benchmarks: this workload exists so the
//! phase-adaptive meta-engine has a controlled stream with a sharp
//! behaviour change to react to, and is therefore *not* registered in
//! [`crate::all_workloads`].
//!
//! * **Phase 1 — streaming**: a dependent scan over an array at one
//!   64-byte line per access. The loads are chained (each address is
//!   known, but issue waits on the running checksum), so prefetch
//!   *depth* is what hides latency: the stride engine's degree-8
//!   lookahead wins this phase, while the PC-delta engine only ever
//!   learns the single +64 delta (depth 1).
//! * **Phase 2 — pointer chase**: a true dependent chain (each load's
//!   address is the previous load's value) whose hops alternate +192
//!   and +320 bytes. A stride predictor never steadies on the
//!   alternation, so the stride engine goes silent; the PC-delta
//!   engine learns both deltas at just-over-50% accuracy and covers
//!   every next hop.
//!
//! The meta-engine must pick stride for phase 1, switch exactly once at
//! the boundary, and finish on PC-delta — pinned by `tests/engine_zoo.rs`.

use crate::common::{checksum_region, mix64, BuiltWorkload, Scale, Workload};
use etpp_cpu::TraceBuilder;
use etpp_mem::{MemoryImage, Region};

const PC_STREAM: u32 = 0x500;
const PC_CHASE: u32 = 0x504;
const PC_ST_SUM: u32 = 0x508;
const PC_ST_PTR: u32 = 0x50c;
const PC_BR: u32 = 0x510;

/// Alternating chase deltas: small enough that both targets share the
/// trigger's 4 KiB page most of the time, never equal so a stride
/// predictor cannot steady.
const DELTA_A: u64 = 192;
const DELTA_B: u64 = 320;

/// The TwoPhase workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoPhase;

struct Layout {
    stream: Region,
    chase: Region,
    check: Region,
    n_stream: u64,
    n_chase: u64,
}

/// Allocation is deterministic from a fresh image, so rebuilding the
/// layout with the same sizes reproduces the exact regions (the tests
/// rely on this to reconstruct bases from a [`BuiltWorkload`]).
fn layout(image: &mut MemoryImage, n_stream: u64, n_chase: u64) -> Layout {
    Layout {
        stream: image.alloc_region(n_stream * 64),
        // Worst-case span: every hop takes the larger delta.
        chase: image.alloc_region((n_chase + 1) * DELTA_B.max(DELTA_A) + 64),
        check: image.alloc_region(16),
        n_stream,
        n_chase,
    }
}

impl Workload for TwoPhase {
    fn name(&self) -> &'static str {
        "TwoPhase"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (n_stream, n_chase) = match scale {
            Scale::Tiny => (2048u64, 2048u64),
            Scale::Small => (16_384, 16_384),
            Scale::Paper => (65_536, 65_536),
        };
        let mut image = MemoryImage::new();
        let l = layout(&mut image, n_stream, n_chase);
        for i in 0..n_stream {
            image.write_u64(l.stream.base + i * 64, mix64(i ^ 0x7a5e));
        }
        // Thread the chase: node i's value is node i+1's address.
        let mut addr = l.chase.base;
        for i in 0..n_chase {
            let next = addr + if i % 2 == 0 { DELTA_A } else { DELTA_B };
            image.write_u64(addr, next);
            addr = next;
        }
        image.write_u64(addr, 0);
        let pristine = image.clone();

        let trace = build_trace(&mut image.clone(), &l);
        let mut post = image;
        reference(&mut post, &l);
        let expected = checksum_region(&post, l.check);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: None,
            manual: None,
            converted: None,
            pragma: None,
            check_region: l.check,
            expected,
            notes: "synthetic stream→chase phase change for the adaptive engine",
        }
    }
}

fn reference(image: &mut MemoryImage, l: &Layout) {
    let mut sum = 0u64;
    for i in 0..l.n_stream {
        sum ^= image.read_u64(l.stream.base + i * 64);
    }
    let mut addr = l.chase.base;
    for _ in 0..l.n_chase {
        addr = image.read_u64(addr);
    }
    image.write_u64(l.check.base, sum);
    image.write_u64(l.check.base + 8, addr);
}

fn build_trace(image: &mut MemoryImage, l: &Layout) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();

    // Phase 1: chained streaming scan. Every load waits on the running
    // sum so latency serializes — prefetch depth is everything here.
    let mut sum = 0u64;
    let mut acc = None;
    for i in 0..l.n_stream {
        let a = l.stream.base + i * 64;
        sum ^= image.read_u64(a);
        let ld = b.load(a, PC_STREAM, [acc, None]);
        acc = Some(b.int_op(1, [Some(ld), acc]));
        b.branch(PC_BR, i + 1 != l.n_stream, [None, None]);
    }

    // Phase 2: the pointer chase. The address of each load is the value
    // of the previous one: a real dependent chain.
    let mut addr = l.chase.base;
    let mut prev = None;
    for i in 0..l.n_chase {
        let ld = b.load(addr, PC_CHASE, [prev, None]);
        prev = Some(ld);
        addr = image.read_u64(addr);
        b.branch(PC_BR, i + 1 != l.n_chase, [None, None]);
    }

    image.write_u64(l.check.base, sum);
    image.write_u64(l.check.base + 8, addr);
    b.store(l.check.base, sum, PC_ST_SUM, [acc, None]);
    b.store(l.check.base + 8, addr, PC_ST_PTR, [prev, None]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_layout() -> Layout {
        let mut scratch = MemoryImage::new();
        layout(&mut scratch, 2048, 2048)
    }

    #[test]
    fn trace_validates_against_reference() {
        let w = TwoPhase.build(Scale::Tiny);
        // The builder mutates a working copy; replaying the reference on
        // the pristine image must land on the published checksum.
        let l = tiny_layout();
        assert_eq!(l.check, w.check_region, "layout must be reproducible");
        let mut post = w.image.clone();
        reference(&mut post, &l);
        assert_eq!(checksum_region(&post, w.check_region), w.expected);
    }

    #[test]
    fn chase_alternates_both_deltas() {
        let w = TwoPhase.build(Scale::Tiny);
        let chase = tiny_layout().chase;
        let first = w.image.read_u64(chase.base);
        let second = w.image.read_u64(first);
        assert_eq!(first - chase.base, DELTA_A);
        assert_eq!(second - first, DELTA_B);
    }
}
