//! The eight Table-2 benchmarks of the paper, as trace generators.
//!
//! Each workload builds its real data structures in a simulated
//! [`etpp_mem::MemoryImage`], executes the algorithm to produce a
//! dependency-annotated trace for the out-of-order core, and supplies the
//! prefetch programs for the Manual (hand-written), Converted
//! (software-prefetch conversion) and Pragma (from-scratch generation)
//! modes.
//!
//! | Benchmark | Pattern | Module |
//! |-----------|---------|--------|
//! | G500-CSR  | BFS over CSR arrays | [`g500_csr`] |
//! | G500-List | BFS over adjacency linked lists | [`g500_list`] |
//! | PageRank  | stride-indirect over CSR | [`pagerank`] |
//! | HJ-2      | stride-hash-indirect | [`hashjoin`] |
//! | HJ-8      | stride-hash-indirect + list walks | [`hashjoin`] |
//! | RandAcc   | stride-hash-indirect (HPCC RandomAccess) | [`randacc`] |
//! | IntSort   | stride-indirect (NAS IS) | [`intsort`] |
//! | ConjGrad  | stride-indirect (NAS CG) | [`conjgrad`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod conjgrad;
pub mod g500_csr;
pub mod g500_list;
pub mod graph;
pub mod hashjoin;
pub mod intsort;
pub mod loop_ir;
pub mod pagerank;
pub mod phases;
pub mod randacc;

pub use common::{checksum_region, BuiltWorkload, PrefetchSetup, Scale, Workload};

/// All eight benchmarks in Table 2's order. The synthetic
/// [`phases::TwoPhase`] workload is deliberately *not* listed here — it
/// exists for the adaptive-engine experiments, not the paper's figures.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(g500_csr::G500Csr),
        Box::new(g500_list::G500List),
        Box::new(hashjoin::Hj2),
        Box::new(hashjoin::Hj8),
        Box::new(pagerank::PageRank),
        Box::new(randacc::RandAcc),
        Box::new(intsort::IntSort),
        Box::new(conjgrad::ConjGrad),
    ]
}

/// Looks a workload up by its Table 2 name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_workloads_registered() {
        assert_eq!(all_workloads().len(), 8);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("HJ-8").is_some());
        assert!(workload_by_name("nope").is_none());
    }
}
