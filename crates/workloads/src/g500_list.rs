//! G500-List — Graph500 BFS over adjacency *linked lists* (Table 2).
//!
//! Identical traversal to [`crate::g500_csr`], but each vertex's neighbours
//! live in a linked list of scattered 16-byte nodes instead of a contiguous
//! slice. Each edge can only be found through the previous node's `next`
//! pointer, which *serialises* edge fetching per vertex — the paper's
//! worst case: 1.7× speedup, low L1 prefetch utilisation (Fig. 8a, data
//! arrives too early and gets evicted), ~40% extra memory traffic, but an
//! L2 hit-rate win that still yields speedup.

use crate::common::{checksum_region, mix64, BuiltWorkload, PrefetchSetup, Scale, Workload};
use crate::graph::{kronecker, pick_root, to_csr};
use etpp_cpu::{OpId, TraceBuilder};
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_Q: u32 = 0x600;
const PC_HEAD: u32 = 0x604;
const PC_NODE: u32 = 0x608;
const PC_VIS: u32 = 0x60c;
const PC_BR_VIS: u32 = 0x610;
const PC_ST_VIS: u32 = 0x614;
const PC_ST_Q: u32 = 0x618;
const PC_BR_EDGE: u32 = 0x61c;
const PC_BR_ITER: u32 = 0x620;

const G_VTX_BASE: u8 = 0;
const G_VIS_BASE: u8 = 1;
const G_Q_END: u8 = 2;

const TAG_Q: u16 = 0;
const TAG_HEAD: u16 = 1;
const TAG_NODE: u16 = 2;

/// The G500-List workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct G500List;

struct Layout {
    vertices: Region,
    nodes: Region,
    visited: Region,
    queue: Region,
}

impl Workload for G500List {
    fn name(&self) -> &'static str {
        "G500-List"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (g_scale, edge_factor) = match scale {
            Scale::Tiny => (11u32, 8u64),
            Scale::Small => (16, 10),
            // Graph500: -s 16 -e 10 for the list variant.
            Scale::Paper => (16, 10),
        };
        let el = kronecker(g_scale, edge_factor, 0x6511);
        let csr = to_csr(&el);
        let root = pick_root(&csr);
        let n = csr.rowstart.len() as u64 - 1;
        let n_dir_edges = csr.adjacency.len() as u64;

        let mut image = MemoryImage::new();
        let l = Layout {
            vertices: image.alloc_region(n * 8),
            nodes: image.alloc_region(n_dir_edges * 16),
            visited: image.alloc_region(n * 8),
            queue: image.alloc_region(n * 8),
        };

        // Nodes are placed in shuffled pool slots so list walks hop across
        // cache lines, as per-edge heap allocation would produce.
        let mut used = vec![false; n_dir_edges as usize];
        let mut place = |j: u64| -> u64 {
            let mut s = mix64(j ^ 0x11ee) % n_dir_edges;
            while used[s as usize] {
                s = (s + 1) % n_dir_edges;
            }
            used[s as usize] = true;
            s
        };
        let mut j = 0u64;
        for u in 0..n {
            // Prepend so list order reverses CSR order — irrelevant to BFS
            // correctness, typical of insertion-built lists.
            for e in csr.rowstart[u as usize]..csr.rowstart[u as usize + 1] {
                let v = csr.adjacency[e as usize];
                let slot = place(j);
                j += 1;
                let node = l.nodes.base + 16 * slot;
                let head = image.read_u64(l.vertices.base + 8 * u);
                image.write_u64(node, v);
                image.write_u64(node + 8, head);
                image.write_u64(l.vertices.base + 8 * u, node);
            }
        }
        image.write_u64(l.visited.base + 8 * root, 1);
        image.write_u64(l.queue.base, root);
        let pristine = image.clone();

        let (conv, prag) = crate::loop_ir::run_passes(&crate::loop_ir::g500_list(
            l.queue, l.vertices, l.nodes, 16,
        ));
        let trace = build_trace(&mut image.clone(), &l);
        let mut post = image;
        reference(&mut post, &l);
        let expected = checksum_region(&post, l.visited);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            // §7.1: list traversal needs loop control flow, which a software
            // prefetch fundamentally cannot express.
            sw_trace: None,
            manual: Some(manual_setup(&l)),
            converted: conv,
            pragma: prag,
            check_region: l.visited,
            expected,
            notes: "adjacency linked lists with scattered nodes; edge fetch is serialised",
        }
    }
}

fn reference(image: &mut MemoryImage, l: &Layout) {
    let mut head = 0u64;
    let mut tail = 1u64;
    while head < tail {
        let u = image.read_u64(l.queue.base + 8 * head);
        head += 1;
        let mut ptr = image.read_u64(l.vertices.base + 8 * u);
        while ptr != 0 {
            let v = image.read_u64(ptr);
            if image.read_u64(l.visited.base + 8 * v) == 0 {
                image.write_u64(l.visited.base + 8 * v, 1);
                image.write_u64(l.queue.base + 8 * tail, v);
                tail += 1;
            }
            ptr = image.read_u64(ptr + 8);
        }
    }
}

fn build_trace(image: &mut MemoryImage, l: &Layout) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    let mut head = 0u64;
    let mut tail = 1u64;
    while head < tail {
        let u = image.read_u64(l.queue.base + 8 * head);
        let ldq = b.load(l.queue.base + 8 * head, PC_Q, [None, None]);
        head += 1;
        let ldh = b.load(l.vertices.base + 8 * u, PC_HEAD, [Some(ldq), None]);
        let mut ptr = image.read_u64(l.vertices.base + 8 * u);
        let mut dep: OpId = ldh;
        while ptr != 0 {
            b.branch(PC_BR_EDGE, true, [Some(dep), None]);
            let v = image.read_u64(ptr);
            // One load fetches the 16-byte node (dst and next share a line).
            let ldn = b.load(ptr, PC_NODE, [Some(dep), None]);
            let ldv = b.load(l.visited.base + 8 * v, PC_VIS, [Some(ldn), None]);
            let unvisited = image.read_u64(l.visited.base + 8 * v) == 0;
            b.branch(PC_BR_VIS, unvisited, [Some(ldv), None]);
            if unvisited {
                image.write_u64(l.visited.base + 8 * v, 1);
                image.write_u64(l.queue.base + 8 * tail, v);
                b.store(l.visited.base + 8 * v, 1, PC_ST_VIS, [Some(ldv), None]);
                b.store(l.queue.base + 8 * tail, v, PC_ST_Q, [Some(ldn), None]);
                b.int_op(1, [None, None]);
                tail += 1;
            }
            dep = ldn;
            ptr = image.read_u64(ptr + 8);
        }
        b.branch(PC_BR_EDGE, false, [Some(dep), None]);
        b.branch(PC_BR_ITER, head != tail, [None, None]);
    }
    b.build()
}

fn manual_setup(l: &Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    let mut kb = KernelBuilder::new("on_queue_load");
    let halt = kb.label();
    let on_queue_load = program.add_kernel(
        kb.ld_vaddr(0)
            .ld_ewma(1, 0)
            .shli(1, 1, 3)
            .add(0, 0, 1)
            .ld_global(2, G_Q_END)
            .bgeu(0, 2, halt)
            .prefetch_tag(0, TAG_Q)
            .bind(halt)
            .halt()
            .build(),
    );

    let on_q = program.add_kernel(
        KernelBuilder::new("on_q_entry")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .shli(0, 0, 3)
            .ld_global(2, G_VTX_BASE)
            .add(0, 0, 2)
            .prefetch_tag(0, TAG_HEAD)
            .halt()
            .build(),
    );

    let mut kb = KernelBuilder::new("on_head");
    let halt = kb.label();
    let on_head = program.add_kernel(
        kb.ld_vaddr(1)
            .ld_data(0, 1)
            .li(2, 0)
            .beq(0, 2, halt)
            .prefetch_tag(0, TAG_NODE)
            .bind(halt)
            .halt()
            .build(),
    );

    // Node arrived: prefetch visited[dst] and chase next.
    let mut kb = KernelBuilder::new("on_node");
    let halt = kb.label();
    let on_node = program.add_kernel(
        kb.ld_vaddr(1)
            .ld_data(3, 1) // dst
            .shli(3, 3, 3)
            .ld_global(4, G_VIS_BASE)
            .add(3, 3, 4)
            .prefetch(3)
            .addi(1, 1, 8)
            .ld_data(0, 1) // next
            .li(2, 0)
            .beq(0, 2, halt)
            .prefetch_tag(0, TAG_NODE)
            .bind(halt)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_VTX_BASE,
            value: l.vertices.base,
        },
        ConfigOp::SetGlobal {
            idx: G_VIS_BASE,
            value: l.visited.base,
        },
        ConfigOp::SetGlobal {
            idx: G_Q_END,
            value: l.queue.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.queue.base,
            hi: l.queue.end(),
            on_load: Some(on_queue_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: l.visited.base,
            hi: l.visited.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_Q),
            kernel: on_q.0,
            chain_end: false,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_HEAD),
            kernel: on_head.0,
            chain_end: false,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_NODE),
            kernel: on_node.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_and_csr_bfs_visit_same_vertices() {
        // The list variant must traverse the same component as the CSR
        // reference (order may differ; the visited set must not).
        let el = kronecker(11, 8, 0x6511);
        let csr = to_csr(&el);
        let root = pick_root(&csr);
        let (order, _) = crate::graph::bfs_reference(&csr, root);

        let w = G500List.build(Scale::Tiny);
        let post = w.image.clone();
        let l = Layout {
            vertices: Region {
                base: 0x1_0000,
                len: 0,
            },
            nodes: Region { base: 0, len: 0 },
            visited: w.check_region,
            queue: Region { base: 0, len: 0 },
        };
        // Count visited from the expected post-image by re-running reference.
        let _ = (post.clone(), l);
        // Simpler: the checksum is over `visited`; recompute count directly.
        let mut count = 0;
        let mut img = w.image.clone();
        // run the same reference used by build()
        let l2 = layout_tiny(&mut img);
        reference(&mut img, &l2);
        for v in 0..(w.check_region.len / 8) {
            if img.read_u64(w.check_region.base + 8 * v) != 0 {
                count += 1;
            }
        }
        assert_eq!(count as usize, order.len());
    }

    fn layout_tiny(_img: &mut MemoryImage) -> Layout {
        // Rebuild the Tiny allocation layout: same order as build().
        let el = kronecker(11, 8, 0x6511);
        let csr = to_csr(&el);
        let n = csr.rowstart.len() as u64 - 1;
        let n_dir = csr.adjacency.len() as u64;
        let mut probe = MemoryImage::new();
        Layout {
            vertices: probe.alloc_region(n * 8),
            nodes: probe.alloc_region(n_dir * 16),
            visited: probe.alloc_region(n * 8),
            queue: probe.alloc_region(n * 8),
        }
    }

    #[test]
    fn walks_are_pointer_serialised() {
        let w = G500List.build(Scale::Tiny);
        // Every node load depends on the previous node load in its list:
        // check at least one 3-deep dependence chain of PC_NODE loads exists.
        let ops = &w.trace.ops;
        let mut chain = 0;
        let mut best = 0;
        for op in ops {
            if op.pc == PC_NODE {
                let dep_is_node = op
                    .deps()
                    .next()
                    .map(|d| ops[d as usize].pc == PC_NODE)
                    .unwrap_or(false);
                chain = if dep_is_node { chain + 1 } else { 1 };
                best = best.max(chain);
            }
        }
        assert!(best >= 3, "longest node chain {best}");
    }
}
