//! IntSort — the NAS IS bucket-counting kernel (Table 2: stride-indirect).
//!
//! The hot loop increments `count[key[i]]` for a sequential stream of random
//! keys: a strided load feeding an indirect load/store. The key stream is
//! perfectly prefetchable; the count accesses are scattered across a table
//! much larger than the L2.
//!
//! * **Software prefetch** (paper: large speedup, +113% dynamic
//!   instructions): `swpf(&count[key[i+D]])` — an extra key load, shift and
//!   prefetch per iteration.
//! * **Manual events**: a load observation on the key array prefetches the
//!   key line `lookahead` ahead (EWMA-timed, tagged); when it returns, the
//!   PPU reads all eight keys and prefetches their count entries.

use crate::common::{checksum_region, mix64, BuiltWorkload, PrefetchSetup, Scale, Workload};
use etpp_cpu::TraceBuilder;
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_KEY: u32 = 0x100;
const PC_CNT: u32 = 0x104;
const PC_ST: u32 = 0x108;
const PC_BR: u32 = 0x10c;
const PC_KEY_PF: u32 = 0x110;
const PC_SWPF: u32 = 0x114;

/// Software-prefetch look-ahead distance (elements), as a fixed compile-time
/// constant in the paper's software scheme.
const SWPF_DIST: u64 = 32;

/// Global register assignments for the manual program.
const G_CNT_BASE: u8 = 0;
const G_KEY_END: u8 = 1;

/// Memory request tag for key-line prefetches.
const TAG_KEY: u16 = 0;

/// The IntSort workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntSort;

struct Params {
    n_keys: u64,
    n_buckets: u64,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Tiny => Params {
            n_keys: 20_000,
            n_buckets: 1 << 15,
        },
        Scale::Small => Params {
            n_keys: 400_000,
            n_buckets: 1 << 21,
        },
        // NAS IS class B: 2^25 keys into 2^21 buckets.
        Scale::Paper => Params {
            n_keys: 1 << 25,
            n_buckets: 1 << 21,
        },
    }
}

impl Workload for IntSort {
    fn name(&self) -> &'static str {
        "IntSort"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let p = params(scale);
        let mut image = MemoryImage::new();
        let keys = image.alloc_region(p.n_keys * 8);
        let counts = image.alloc_region(p.n_buckets * 8);
        for i in 0..p.n_keys {
            image.write_u64(keys.base + 8 * i, mix64(i) % p.n_buckets);
        }
        let pristine = image.clone();

        let (conv, prag) =
            crate::loop_ir::run_passes(&crate::loop_ir::intsort(keys, counts, SWPF_DIST));
        let trace = build_trace(&mut image.clone(), &p, keys, counts, false);
        let sw_trace = build_trace(&mut image.clone(), &p, keys, counts, true);
        // Produce the expected post-run state on a working copy.
        let mut post = image;
        run_reference(&mut post, &p, keys, counts);
        let expected = checksum_region(&post, counts);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: Some(sw_trace),
            manual: Some(manual_setup(keys, counts)),
            converted: conv,
            pragma: prag,
            check_region: counts,
            expected,
            notes: "NAS IS bucket-count kernel; keys regenerated from splitmix64",
        }
    }
}

fn run_reference(image: &mut MemoryImage, p: &Params, keys: Region, counts: Region) {
    for i in 0..p.n_keys {
        let k = image.read_u64(keys.base + 8 * i);
        let addr = counts.base + 8 * k;
        let v = image.read_u64(addr);
        image.write_u64(addr, v + 1);
    }
}

fn build_trace(
    image: &mut MemoryImage,
    p: &Params,
    keys: Region,
    counts: Region,
    swpf: bool,
) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    for i in 0..p.n_keys {
        if swpf {
            // k2 = key[i+D]; swpf(&count[k2]);
            let ahead = (i + SWPF_DIST).min(p.n_keys - 1);
            let k2 = image.read_u64(keys.base + 8 * ahead);
            let ld2 = b.load(keys.base + 8 * ahead, PC_KEY_PF, [None, None]);
            let sh2 = b.int_op(1, [Some(ld2), None]);
            b.swpf(counts.base + 8 * k2, PC_SWPF, [Some(sh2), None]);
        }
        let k = image.read_u64(keys.base + 8 * i);
        let ld = b.load(keys.base + 8 * i, PC_KEY, [None, None]);
        let sh = b.int_op(1, [Some(ld), None]);
        let addr = counts.base + 8 * k;
        let ldc = b.load(addr, PC_CNT, [Some(sh), None]);
        let v = image.read_u64(addr);
        let inc = b.int_op(1, [Some(ldc), None]);
        image.write_u64(addr, v + 1);
        b.store(addr, v + 1, PC_ST, [Some(inc), None]);
        b.branch(PC_BR, i + 1 != p.n_keys, [None, None]);
    }
    b.build()
}

/// The hand-written event program (§5-style).
fn manual_setup(keys: Region, counts: Region) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    // on_key_load: once per key line, prefetch the line `lookahead` elements
    // ahead (bounded by the array end), tagged so its arrival fans out.
    let mut kb = KernelBuilder::new("on_key_load");
    let halt = kb.label();
    let on_key_load = program.add_kernel(
        kb.ld_vaddr(0)
            .andi(1, 0, 63)
            .li(2, 0)
            .bne(1, 2, halt)
            .ld_ewma(3, 0)
            .shli(3, 3, 3)
            .add(0, 0, 3)
            .ld_global(4, G_KEY_END)
            .bgeu(0, 4, halt)
            .prefetch_tag(0, TAG_KEY)
            .bind(halt)
            .halt()
            .build(),
    );

    // on_key_line: fan out count prefetches for all eight keys in the line.
    let mut kb = KernelBuilder::new("on_key_line");
    let top = kb.label();
    let on_key_line = program.add_kernel(
        kb.ld_global(1, G_CNT_BASE)
            .li(2, 0)
            .bind(top)
            .ld_data(3, 2)
            .shli(3, 3, 3)
            .add(3, 3, 1)
            .prefetch(3)
            .addi(2, 2, 8)
            .li(4, 64)
            .bltu(2, 4, top)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_CNT_BASE,
            value: counts.base,
        },
        ConfigOp::SetGlobal {
            idx: G_KEY_END,
            value: keys.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: keys.base,
            hi: keys.end(),
            on_load: Some(on_key_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: counts.base,
            hi: counts.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_KEY),
            kernel: on_key_line.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Workload;

    #[test]
    fn trace_has_expected_shape() {
        let w = IntSort.build(Scale::Tiny);
        let c = w.trace.class_counts();
        assert_eq!(c.loads, 2 * 20_000);
        assert_eq!(c.stores, 20_000);
        assert_eq!(c.branches, 20_000);
        let sw = w.sw_trace.as_ref().unwrap().class_counts();
        assert_eq!(sw.swpf, 20_000);
        assert!(sw.total() > c.total());
    }

    #[test]
    fn swpf_overhead_is_meaningful() {
        // §7.1 reports +113% dynamic instructions for IntSort's software
        // prefetch; ours adds 3 ops to a 5-op loop (+60%): same regime.
        let w = IntSort.build(Scale::Tiny);
        let base = w.trace.class_counts().total() as f64;
        let sw = w.sw_trace.as_ref().unwrap().class_counts().total() as f64;
        let overhead = sw / base - 1.0;
        assert!(overhead > 0.4, "overhead {overhead}");
    }

    #[test]
    fn expected_checksum_matches_reference_recount() {
        let w = IntSort.build(Scale::Tiny);
        // Recompute independently from the pristine image.
        let p = params(Scale::Tiny);
        let keys_base = w.image.read_u64(w.check_region.base); // dummy read
        let _ = keys_base;
        let mut post = w.image.clone();
        run_reference(
            &mut post,
            &p,
            Region {
                base: 0x1_0000,
                len: p.n_keys * 8,
            },
            w.check_region,
        );
        assert_eq!(checksum_region(&post, w.check_region), w.expected);
    }

    #[test]
    fn manual_program_is_small() {
        let w = IntSort.build(Scale::Tiny);
        let m = w.manual.as_ref().unwrap();
        // Paper: PPU programs are minuscule (≤1KB).
        assert!(m.program.total_insts() < 64);
        assert_eq!(m.program.kernels.len(), 2);
    }
}
