//! Hash join probe kernels (Table 2: HJ-2 and HJ-8), after Blanas et al.
//!
//! The motivating kernel of the paper (Figure 1): a sequential scan of probe
//! keys, a multiplicative hash, an indirect bucket access, and — for HJ-8 —
//! a linked-list walk per bucket.
//!
//! * **HJ-2**: buckets hold tuples inline (stride-hash-indirect only).
//!   Software prefetching works well; manual events do better by moving the
//!   hash computation off the core.
//! * **HJ-8**: each bucket heads an (average) eight-node chain of
//!   non-contiguous nodes. Software prefetching can only reach the bucket
//!   head; the event program walks every chain via memory request tags
//!   (§4.7), prefetching all lists in parallel — the paper's headline case
//!   (3.8× vs. negligible for stride/software).

use crate::common::{checksum_region, mix64, BuiltWorkload, PrefetchSetup, Scale, Workload};
use etpp_cpu::{OpId, TraceBuilder};
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_KEY: u32 = 0x200;
const PC_BKT: u32 = 0x204;
const PC_NODE: u32 = 0x208;
const PC_BR_MATCH: u32 = 0x20c;
const PC_BR_LOOP: u32 = 0x210;
const PC_BR_ITER: u32 = 0x214;
const PC_ST_OUT: u32 = 0x218;
const PC_KEY_PF: u32 = 0x21c;
const PC_SWPF: u32 = 0x220;

const SWPF_DIST: u64 = 32;

/// Multiplicative hash constant (Fibonacci hashing).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

const G_BKT_BASE: u8 = 0;
const G_KEY_END: u8 = 1;

const TAG_KEY: u16 = 0;
const TAG_BKT: u16 = 1;
const TAG_NODE: u16 = 2;

#[inline]
fn hash(k: u64, log_buckets: u32) -> u64 {
    k.wrapping_mul(HASH_MUL) >> (64 - log_buckets)
}

/// HJ-2: inline-bucket hash join probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hj2;

/// HJ-8: chained-bucket hash join probe with ~8-node lists.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hj8;

struct Hj2Layout {
    keys: Region,
    buckets: Region,
    out: Region,
    log_buckets: u32,
    n_probes: u64,
}

fn hj2_build(scale: Scale) -> Hj2Layout {
    let (log_buckets, n_probes) = match scale {
        Scale::Tiny => (14u32, 20_000u64),
        Scale::Small => (20, 400_000),
        // Blanas: -r 12800000 -s 12800000.
        Scale::Paper => (24, 12_800_000),
    };
    Hj2Layout {
        keys: Region { base: 0, len: 0 },
        buckets: Region { base: 0, len: 0 },
        out: Region { base: 0, len: 0 },
        log_buckets,
        n_probes,
    }
}

impl Workload for Hj2 {
    fn name(&self) -> &'static str {
        "HJ-2"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let mut l = hj2_build(scale);
        let n_buckets = 1u64 << l.log_buckets;
        let mut image = MemoryImage::new();
        l.keys = image.alloc_region(l.n_probes * 8);
        // Bucket = 16 bytes: (key, payload).
        l.buckets = image.alloc_region(n_buckets * 16);
        l.out = image.alloc_region((l.n_probes + 1) * 8);

        // Build side: fill buckets with keys; every even probe key is
        // guaranteed present (≈50% match rate).
        for i in 0..l.n_probes {
            let k = if i % 2 == 0 {
                mix64(i) | 1 // odd keys: inserted below
            } else {
                mix64(i) & !1 // even keys: likely absent
            };
            image.write_u64(l.keys.base + 8 * i, k);
            if i % 2 == 0 {
                let h = hash(k, l.log_buckets);
                image.write_u64(l.buckets.base + 16 * h, k);
                image.write_u64(l.buckets.base + 16 * h + 8, mix64(k));
            }
        }
        let pristine = image.clone();

        let (conv, prag) = crate::loop_ir::run_passes(&crate::loop_ir::hashjoin(
            l.keys,
            l.buckets,
            16,
            None,
            HASH_MUL,
            l.log_buckets,
            SWPF_DIST,
        ));
        let trace = hj2_trace(&mut image.clone(), &l, false);
        let sw_trace = hj2_trace(&mut image.clone(), &l, true);
        let mut post = image;
        hj2_reference(&mut post, &l);
        let expected = checksum_region(&post, l.out);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: Some(sw_trace),
            manual: Some(hj2_manual(&l)),
            converted: conv,
            pragma: prag,
            check_region: l.out,
            expected,
            notes: "inline 16B buckets; ~50% probe match rate",
        }
    }
}

fn hj2_reference(image: &mut MemoryImage, l: &Hj2Layout) {
    let mut m = 0u64;
    for i in 0..l.n_probes {
        let k = image.read_u64(l.keys.base + 8 * i);
        let h = hash(k, l.log_buckets);
        let bk = image.read_u64(l.buckets.base + 16 * h);
        if bk == k {
            m += 1;
            image.write_u64(l.out.base + 8 * m, k);
        }
    }
    image.write_u64(l.out.base, m);
}

fn hj2_trace(image: &mut MemoryImage, l: &Hj2Layout, swpf: bool) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    let mut m = 0u64;
    for i in 0..l.n_probes {
        if swpf {
            let ahead = (i + SWPF_DIST).min(l.n_probes - 1);
            let k2 = image.read_u64(l.keys.base + 8 * ahead);
            let ld2 = b.load(l.keys.base + 8 * ahead, PC_KEY_PF, [None, None]);
            let h2 = b.muldiv(3, [Some(ld2), None]);
            let s2 = b.int_op(1, [Some(h2), None]);
            b.swpf(
                l.buckets.base + 16 * hash(k2, l.log_buckets),
                PC_SWPF,
                [Some(s2), None],
            );
        }
        let k = image.read_u64(l.keys.base + 8 * i);
        let h = hash(k, l.log_buckets);
        let ld = b.load(l.keys.base + 8 * i, PC_KEY, [None, None]);
        let hm = b.muldiv(3, [Some(ld), None]);
        let hs = b.int_op(1, [Some(hm), None]);
        let ldb = b.load(l.buckets.base + 16 * h, PC_BKT, [Some(hs), None]);
        let cmp = b.int_op(1, [Some(ldb), Some(ld)]);
        let bk = image.read_u64(l.buckets.base + 16 * h);
        let matched = bk == k;
        b.branch(PC_BR_MATCH, matched, [Some(cmp), None]);
        if matched {
            m += 1;
            image.write_u64(l.out.base + 8 * m, k);
            b.store(l.out.base + 8 * m, k, PC_ST_OUT, [Some(cmp), None]);
        }
        b.branch(PC_BR_ITER, i + 1 != l.n_probes, [None, None]);
    }
    image.write_u64(l.out.base, m);
    b.store(l.out.base, m, PC_ST_OUT, [None, None]);
    b.build()
}

fn hj2_manual(l: &Hj2Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    let mut kb = KernelBuilder::new("on_key_load");
    let halt = kb.label();
    let on_key_load = program.add_kernel(
        kb.ld_vaddr(0)
            .andi(1, 0, 63)
            .li(2, 0)
            .bne(1, 2, halt)
            .ld_ewma(3, 0)
            .shli(3, 3, 3)
            .add(0, 0, 3)
            .ld_global(4, G_KEY_END)
            .bgeu(0, 4, halt)
            .prefetch_tag(0, TAG_KEY)
            .bind(halt)
            .halt()
            .build(),
    );

    // Hash all eight keys of the arrived line and prefetch their buckets.
    let mut kb = KernelBuilder::new("on_key_line");
    let top = kb.label();
    let on_key_line = program.add_kernel(
        kb.ld_global(1, G_BKT_BASE)
            .li(2, 0)
            .bind(top)
            .ld_data(3, 2)
            .muli(3, 3, HASH_MUL)
            .shri(3, 3, 64 - l.log_buckets as u8)
            .shli(3, 3, 4) // 16-byte buckets
            .add(3, 3, 1)
            .prefetch(3)
            .addi(2, 2, 8)
            .li(4, 64)
            .bltu(2, 4, top)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_BKT_BASE,
            value: l.buckets.base,
        },
        ConfigOp::SetGlobal {
            idx: G_KEY_END,
            value: l.keys.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.keys.base,
            hi: l.keys.end(),
            on_load: Some(on_key_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: l.buckets.base,
            hi: l.buckets.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_KEY),
            kernel: on_key_line.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

// ---------------------------------------------------------------------------
// HJ-8
// ---------------------------------------------------------------------------

struct Hj8Layout {
    keys: Region,
    buckets: Region,
    nodes: Region,
    out: Region,
    log_buckets: u32,
    n_probes: u64,
}

impl Workload for Hj8 {
    fn name(&self) -> &'static str {
        "HJ-8"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (log_buckets, n_probes) = match scale {
            Scale::Tiny => (11u32, 4_000u64),
            Scale::Small => (18, 100_000),
            Scale::Paper => (21, 1_600_000),
        };
        let n_buckets = 1u64 << log_buckets;
        let n_nodes = n_buckets * 8;
        let mut image = MemoryImage::new();
        let l = Hj8Layout {
            keys: image.alloc_region(n_probes * 8),
            buckets: image.alloc_region(n_buckets * 8),
            nodes: image.alloc_region(n_nodes * 16),
            out: image.alloc_region((n_probes + 1) * 8),
            log_buckets,
            n_probes,
        };

        // Insert build keys, prepending to chains. Node slots are assigned
        // in a bit-reversed-ish shuffled order so chains jump across lines,
        // as malloc'd nodes would.
        let slot_of = |j: u64| -> u64 { mix64(j ^ 0xABCD_EF01) % n_nodes };
        let mut used = vec![false; n_nodes as usize];
        for j in 0..n_nodes {
            let mut s = slot_of(j);
            while used[s as usize] {
                s = (s + 1) % n_nodes;
            }
            used[s as usize] = true;
            let k = mix64(j) | 1;
            let node = l.nodes.base + 16 * s;
            let h = hash(k, log_buckets);
            let head_addr = l.buckets.base + 8 * h;
            let head = image.read_u64(head_addr);
            image.write_u64(node, k);
            image.write_u64(node + 8, head);
            image.write_u64(head_addr, node);
        }
        // Probe keys: half present.
        for i in 0..n_probes {
            let k = if i % 2 == 0 {
                mix64(i % n_nodes) | 1
            } else {
                mix64(i) & !1
            };
            image.write_u64(l.keys.base + 8 * i, k);
        }
        let pristine = image.clone();

        let (conv, prag) = crate::loop_ir::run_passes(&crate::loop_ir::hashjoin(
            l.keys,
            l.buckets,
            8,
            Some((l.nodes, 4)),
            HASH_MUL,
            l.log_buckets,
            SWPF_DIST,
        ));
        let trace = hj8_trace(&mut image.clone(), &l, false);
        let sw_trace = hj8_trace(&mut image.clone(), &l, true);
        let mut post = image;
        hj8_reference(&mut post, &l);
        let expected = checksum_region(&post, l.out);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: Some(sw_trace),
            manual: Some(hj8_manual(&l)),
            converted: conv,
            pragma: prag,
            check_region: l.out,
            expected,
            notes: "8-deep scattered bucket chains; swpf reaches only the bucket head",
        }
    }
}

fn hj8_reference(image: &mut MemoryImage, l: &Hj8Layout) {
    let mut m = 0u64;
    for i in 0..l.n_probes {
        let k = image.read_u64(l.keys.base + 8 * i);
        let h = hash(k, l.log_buckets);
        let mut ptr = image.read_u64(l.buckets.base + 8 * h);
        while ptr != 0 {
            if image.read_u64(ptr) == k {
                m += 1;
                image.write_u64(l.out.base + 8 * m, k);
            }
            ptr = image.read_u64(ptr + 8);
        }
    }
    image.write_u64(l.out.base, m);
}

fn hj8_trace(image: &mut MemoryImage, l: &Hj8Layout, swpf: bool) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    let mut m = 0u64;
    for i in 0..l.n_probes {
        if swpf {
            // Only the bucket head is reachable by software prefetch (Fig 1).
            let ahead = (i + SWPF_DIST).min(l.n_probes - 1);
            let k2 = image.read_u64(l.keys.base + 8 * ahead);
            let ld2 = b.load(l.keys.base + 8 * ahead, PC_KEY_PF, [None, None]);
            let h2 = b.muldiv(3, [Some(ld2), None]);
            let s2 = b.int_op(1, [Some(h2), None]);
            b.swpf(
                l.buckets.base + 8 * hash(k2, l.log_buckets),
                PC_SWPF,
                [Some(s2), None],
            );
        }
        let k = image.read_u64(l.keys.base + 8 * i);
        let h = hash(k, l.log_buckets);
        let ld = b.load(l.keys.base + 8 * i, PC_KEY, [None, None]);
        let hm = b.muldiv(3, [Some(ld), None]);
        let hs = b.int_op(1, [Some(hm), None]);
        let ldh = b.load(l.buckets.base + 8 * h, PC_BKT, [Some(hs), None]);
        let mut ptr = image.read_u64(l.buckets.base + 8 * h);
        let mut dep: OpId = ldh;
        while ptr != 0 {
            b.branch(PC_BR_LOOP, true, [Some(dep), None]);
            let ldn = b.load(ptr, PC_NODE, [Some(dep), None]);
            let cmp = b.int_op(1, [Some(ldn), Some(ld)]);
            let nk = image.read_u64(ptr);
            let matched = nk == k;
            b.branch(PC_BR_MATCH, matched, [Some(cmp), None]);
            if matched {
                m += 1;
                image.write_u64(l.out.base + 8 * m, k);
                b.store(l.out.base + 8 * m, k, PC_ST_OUT, [Some(cmp), None]);
            }
            dep = ldn;
            ptr = image.read_u64(ptr + 8);
        }
        b.branch(PC_BR_LOOP, false, [Some(dep), None]);
        b.branch(PC_BR_ITER, i + 1 != l.n_probes, [None, None]);
    }
    image.write_u64(l.out.base, m);
    b.store(l.out.base, m, PC_ST_OUT, [None, None]);
    b.build()
}

fn hj8_manual(l: &Hj8Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    let mut kb = KernelBuilder::new("on_key_load");
    let halt = kb.label();
    let on_key_load = program.add_kernel(
        kb.ld_vaddr(0)
            .andi(1, 0, 63)
            .li(2, 0)
            .bne(1, 2, halt)
            .ld_ewma(3, 0)
            .shli(3, 3, 3)
            .add(0, 0, 3)
            .ld_global(4, G_KEY_END)
            .bgeu(0, 4, halt)
            .prefetch_tag(0, TAG_KEY)
            .bind(halt)
            .halt()
            .build(),
    );

    // Hash each key in the line, prefetch its bucket head (tagged).
    let mut kb = KernelBuilder::new("on_key_line");
    let top = kb.label();
    let on_key_line = program.add_kernel(
        kb.ld_global(1, G_BKT_BASE)
            .li(2, 0)
            .bind(top)
            .ld_data(3, 2)
            .muli(3, 3, HASH_MUL)
            .shri(3, 3, 64 - l.log_buckets as u8)
            .shli(3, 3, 3) // 8-byte heads
            .add(3, 3, 1)
            .prefetch_tag(3, TAG_BKT)
            .addi(2, 2, 8)
            .li(4, 64)
            .bltu(2, 4, top)
            .halt()
            .build(),
    );

    // Bucket head arrived: chase the first node.
    let mut kb = KernelBuilder::new("on_bucket");
    let halt = kb.label();
    let on_bucket = program.add_kernel(
        kb.ld_vaddr(1)
            .ld_data(0, 1)
            .li(2, 0)
            .beq(0, 2, halt)
            .prefetch_tag(0, TAG_NODE)
            .bind(halt)
            .halt()
            .build(),
    );

    // Node arrived: chase `next` ([key, next] layout → next at +8).
    let mut kb = KernelBuilder::new("on_node");
    let halt = kb.label();
    let on_node = program.add_kernel(
        kb.ld_vaddr(1)
            .addi(1, 1, 8)
            .ld_data(0, 1)
            .li(2, 0)
            .beq(0, 2, halt)
            .prefetch_tag(0, TAG_NODE)
            .bind(halt)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_BKT_BASE,
            value: l.buckets.base,
        },
        ConfigOp::SetGlobal {
            idx: G_KEY_END,
            value: l.keys.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.keys.base,
            hi: l.keys.end(),
            on_load: Some(on_key_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_KEY),
            kernel: on_key_line.0,
            chain_end: false,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_BKT),
            kernel: on_bucket.0,
            chain_end: true,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_NODE),
            kernel: on_node.0,
            chain_end: true,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hj2_match_rate_near_half() {
        let w = Hj2.build(Scale::Tiny);
        // The out region's slot 0 holds the match count after a run; here we
        // recompute via reference on a copy.
        let mut post = w.image.clone();
        let l = hj2_layout_for_test(&w);
        hj2_reference(&mut post, &l);
        let m = post.read_u64(l.out.base);
        let rate = m as f64 / l.n_probes as f64;
        assert!((0.35..=0.65).contains(&rate), "match rate {rate}");
    }

    fn hj2_layout_for_test(w: &BuiltWorkload) -> Hj2Layout {
        // Reconstruct the Tiny layout deterministically (allocations are a
        // pure function of the build order).
        let mut l = hj2_build(Scale::Tiny);
        let n_buckets = 1u64 << l.log_buckets;
        let mut img = MemoryImage::new();
        l.keys = img.alloc_region(l.n_probes * 8);
        l.buckets = img.alloc_region(n_buckets * 16);
        l.out = img.alloc_region((l.n_probes + 1) * 8);
        assert_eq!(l.out, w.check_region);
        l
    }

    #[test]
    fn hj8_chains_average_eight() {
        let w = Hj8.build(Scale::Tiny);
        // Trace shape: ~(5 + 8*3) ops per probe implies chains were walked.
        let c = w.trace.class_counts();
        let per_probe = c.total() as f64 / 4_000.0;
        assert!(
            per_probe > 20.0,
            "expected deep chains, got {per_probe} ops/probe"
        );
    }

    #[test]
    fn hj8_manual_uses_three_tags() {
        let w = Hj8.build(Scale::Tiny);
        let m = w.manual.as_ref().unwrap();
        let tags = m
            .configs
            .iter()
            .filter(|c| matches!(c, ConfigOp::SetTagKernel { .. }))
            .count();
        assert_eq!(tags, 3, "key line, bucket, node");
        assert!(m.program.total_insts() < 96);
    }

    #[test]
    fn traces_are_deterministic() {
        let a = Hj2.build(Scale::Tiny);
        let b = Hj2.build(Scale::Tiny);
        assert_eq!(a.expected, b.expected);
        assert_eq!(a.trace.len(), b.trace.len());
    }
}
