//! Loop IR construction for every benchmark, feeding the compiler passes.
//!
//! Each function builds the SSA graph of the benchmark's kernel loop exactly
//! as a front end would see it — including the software prefetches the
//! programmer wrote (conversion roots) and the body loads (pragma roots).
//! The Converted/Pragma prefetch programs in each [`crate::BuiltWorkload`]
//! come from running [`etpp_compiler::convert_software_prefetches`] and
//! [`etpp_compiler::generate_from_pragma`] over these graphs.

use crate::common::PrefetchSetup;
use etpp_compiler::ir::{ArrayDecl, Expr, KernelLoop, SwPrefetch};
use etpp_compiler::{convert_software_prefetches, generate_from_pragma, GeneratedSetup};
use etpp_mem::Region;

fn decl(name: &str, r: Region, elem: u8) -> ArrayDecl {
    ArrayDecl {
        name: name.into(),
        base: r.base,
        end: r.end(),
        elem_size: elem,
        bounds_known: true,
    }
}

fn to_setup(g: GeneratedSetup) -> PrefetchSetup {
    PrefetchSetup {
        program: g.program,
        configs: g.configs,
    }
}

/// Runs both passes over a loop, returning (converted, pragma).
pub fn run_passes(l: &KernelLoop) -> (Option<PrefetchSetup>, Option<PrefetchSetup>) {
    (
        convert_software_prefetches(l).ok().map(to_setup),
        generate_from_pragma(l).ok().map(to_setup),
    )
}

/// IntSort: `count[key[i]]++` with `swpf(&count[key[i+D]])`.
pub fn intsort(keys: Region, counts: Region, dist: u64) -> KernelLoop {
    let mut l = KernelLoop::new("intsort");
    let k = l.array(decl("key", keys, 8));
    let c = l.array(decl("count", counts, 8));
    let iv = l.value(Expr::IndVar);
    let d = l.value(Expr::Const(dist));
    let ivd = l.value(Expr::Add(iv, d));
    let kd = l.load_index(k, ivd);
    let addr = l.index_addr(c, kd);
    l.prefetches.push(SwPrefetch { addr, dist });
    let k0 = l.load_index(k, iv);
    let c0 = l.load_index(c, k0);
    l.body_loads.extend([k0, c0]);
    l.pragma = true;
    l
}

/// HJ-2 / HJ-8 share the probe loop shape; HJ-8 adds pointer-chase roots
/// ("prefetch the first N" chain nodes, §7.1).
pub fn hashjoin(
    keys: Region,
    buckets: Region,
    bucket_elem: u8,
    nodes: Option<(Region, u32)>,
    hash_mul: u64,
    log_buckets: u32,
    dist: u64,
) -> KernelLoop {
    let mut l = KernelLoop::new(if nodes.is_some() { "hj8" } else { "hj2" });
    let k = l.array(decl("key", keys, 8));
    let b = l.array(decl("htab", buckets, bucket_elem));
    let n = nodes.map(|(r, _)| l.array(decl("nodes", r, 16)));

    let hash = |l: &mut KernelLoop, x| {
        // The hash multiplier is a compile-time constant in the source.
        let m = l.value(Expr::Const(hash_mul));
        let mul = l.value(Expr::Mul(x, m));
        l.value(Expr::Shr(mul, (64 - log_buckets) as u8))
    };

    // swpf(&htab[hash(key[i+dist])]) and, for HJ-8, the first-N node chain.
    let iv = l.value(Expr::IndVar);
    let d = l.value(Expr::Const(dist));
    let ivd = l.value(Expr::Add(iv, d));
    let kd = l.load_index(k, ivd);
    let h = hash(&mut l, kd);
    let bucket_addr = l.index_addr(b, h);
    l.prefetches.push(SwPrefetch {
        addr: bucket_addr,
        dist,
    });
    if let (Some(npool), Some((_, unroll))) = (n, nodes) {
        // head = htab[h]; node1 = *head; node2 = *(node1.next) ...
        let head = l.value(Expr::Load {
            addr: bucket_addr,
            array: b,
            points_into: Some(npool),
        });
        let mut ptr = head;
        for _ in 0..unroll {
            l.prefetches.push(SwPrefetch { addr: ptr, dist });
            // next pointer lives at +8 in the node.
            ptr = l.deref(ptr, 8, npool, Some(npool));
        }
    }

    // Body: k = key[i]; bucket = htab[hash(k)]; (HJ-8: list walk via phi).
    let k0 = l.load_index(k, iv);
    let h0 = hash(&mut l, k0);
    let b0 = l.load_index(b, h0);
    l.body_loads.extend([k0, b0]);
    if let Some(npool) = n {
        let phi = l.value(Expr::NonIndPhi);
        let node = l.value(Expr::Load {
            addr: phi,
            array: npool,
            points_into: Some(npool),
        });
        l.body_loads.push(node);
    }
    l.pragma = true;
    l
}

/// RandAcc phase 2 with the wrap-around + LCG software prefetch (§7.1).
pub fn randacc(ran: Region, table: Region, log_table: u32, dist: u64) -> KernelLoop {
    let mut l = KernelLoop::new("randacc");
    let r = l.array(decl("ran", ran, 8));
    let t = l.array(decl("table", table, 8));
    let iv = l.value(Expr::IndVar);
    let d = l.value(Expr::Const(dist));
    let ivd = l.value(Expr::Add(iv, d));
    let batch_mask = l.value(Expr::Const(127));
    let wrapped = l.value(Expr::And(ivd, batch_mask));
    let v = l.load_index(r, wrapped);
    // lcg step regenerates the wrapped entries' next-batch values.
    let s1 = l.value(Expr::Shl(v, 1));
    let s63 = l.value(Expr::Shr(v, 63));
    let poly = l.value(Expr::Const(7));
    let mul = l.value(Expr::Mul(s63, poly));
    let lcg = l.value(Expr::Xor(s1, mul));
    let mask = l.value(Expr::Invariant("table_mask", (1u64 << log_table) - 1));
    let idx = l.value(Expr::And(lcg, mask));
    let addr = l.index_addr(t, idx);
    l.prefetches.push(SwPrefetch { addr, dist });

    let v0 = l.load_index(r, iv);
    let idx0 = l.value(Expr::And(v0, mask));
    let t0 = l.load_index(t, idx0);
    l.body_loads.extend([v0, t0]);
    l.pragma = true;
    l
}

/// ConjGrad SpMV inner loop: `x[colidx[j+D]]`.
pub fn conjgrad(colidx: Region, x: Region, dist: u64) -> KernelLoop {
    let mut l = KernelLoop::new("conjgrad");
    let c = l.array(decl("colidx", colidx, 8));
    let xv = l.array(decl("x", x, 8));
    let iv = l.value(Expr::IndVar);
    let d = l.value(Expr::Const(dist));
    let ivd = l.value(Expr::Add(iv, d));
    let cd = l.load_index(c, ivd);
    let addr = l.index_addr(xv, cd);
    l.prefetches.push(SwPrefetch { addr, dist });
    let c0 = l.load_index(c, iv);
    let x0 = l.load_index(xv, c0);
    l.body_loads.extend([c0, x0]);
    l.pragma = true;
    l
}

/// PageRank edge loop: `rank[edges[j]]` — pragma only (BGL iterators hide
/// the addresses from software prefetch, §7.1).
pub fn pagerank(edges: Region, rank: Region) -> KernelLoop {
    let mut l = KernelLoop::new("pagerank");
    let e = l.array(decl("edges", edges, 8));
    let r = l.array(decl("rank", rank, 8));
    let iv = l.value(Expr::IndVar);
    let e0 = l.load_index(e, iv);
    let r0 = l.load_index(r, e0);
    l.body_loads.extend([e0, r0]);
    l.pragma = true;
    l
}

/// G500-CSR BFS: software prefetches walk queue→rowstart→edges→visited with
/// fixed look-ahead; inner edge loop is control flow the passes cannot
/// express, so conversion gets "first element" chains and pragma finds the
/// two stride-indirect patterns (§7.1).
pub fn g500_csr(
    queue: Region,
    rowstart: Region,
    edges: Region,
    visited: Region,
    dist: u64,
) -> KernelLoop {
    let mut l = KernelLoop::new("g500csr");
    let q = l.array(decl("queue", queue, 8));
    let rs = l.array(decl("rowstart", rowstart, 8));
    let ed = l.array(decl("edges", edges, 8));
    let vis = l.array(decl("visited", visited, 8));

    let iv = l.value(Expr::IndVar);
    let d = l.value(Expr::Const(dist));
    let ivd = l.value(Expr::Add(iv, d));
    let u = l.load_index(q, ivd);
    let rs_addr = l.index_addr(rs, u);
    l.prefetches.push(SwPrefetch {
        addr: rs_addr,
        dist,
    });
    let start = l.value(Expr::Load {
        addr: rs_addr,
        array: rs,
        points_into: None,
    });
    let e_addr = l.index_addr(ed, start);
    l.prefetches.push(SwPrefetch { addr: e_addr, dist });
    let v = l.value(Expr::Load {
        addr: e_addr,
        array: ed,
        points_into: None,
    });
    let vis_addr = l.index_addr(vis, v);
    l.prefetches.push(SwPrefetch {
        addr: vis_addr,
        dist,
    });

    // Body loads: u = q[i]; rowstart[u] — and, in the *inner* loop (its own
    // induction), edges[j] and visited[edges[j]] — the paper's "two
    // stride-indirect patterns".
    let u0 = l.load_index(q, iv);
    let r0 = l.load_index(rs, u0);
    let jv = l.value(Expr::IndVar);
    let e0 = l.load_index(ed, jv);
    let v0 = l.load_index(vis, e0);
    l.body_loads.extend([u0, r0, e0, v0]);
    l.pragma = true;
    l
}

/// G500-List BFS: only the queue→vertex-head hop is expressible; the list
/// walk is a non-induction phi (§7.1: "limited impact").
pub fn g500_list(queue: Region, vertices: Region, nodes: Region, dist: u64) -> KernelLoop {
    let mut l = KernelLoop::new("g500list");
    let q = l.array(decl("queue", queue, 8));
    let vtx = l.array(decl("vertices", vertices, 8));
    let pool = l.array(decl("nodes", nodes, 16));

    let iv = l.value(Expr::IndVar);
    let d = l.value(Expr::Const(dist));
    let ivd = l.value(Expr::Add(iv, d));
    let u = l.load_index(q, ivd);
    let head_addr = l.index_addr(vtx, u);
    l.prefetches.push(SwPrefetch {
        addr: head_addr,
        dist,
    });

    let u0 = l.load_index(q, iv);
    let h0 = l.load_pointer(vtx, u0, pool);
    let phi = l.value(Expr::NonIndPhi);
    let n0 = l.value(Expr::Load {
        addr: phi,
        array: pool,
        points_into: Some(pool),
    });
    l.body_loads.extend([u0, h0, n0]);
    l.pragma = true;
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(base: u64, len: u64) -> Region {
        Region { base, len }
    }

    #[test]
    fn intsort_converts_and_pragmas() {
        let l = intsort(r(0x1000, 0x1000), r(0x10000, 0x8000), 32);
        let (conv, prag) = run_passes(&l);
        assert!(conv.is_some());
        assert!(prag.is_some());
        assert_eq!(conv.unwrap().program.kernels.len(), 2);
    }

    #[test]
    fn hj8_conversion_reaches_first_n_nodes() {
        let l = hashjoin(
            r(0x1000, 0x1000),
            r(0x10000, 0x8000),
            8,
            Some((r(0x40000, 0x20000), 3)),
            0x9E37_79B9_7F4A_7C15,
            12,
            32,
        );
        let (conv, prag) = run_passes(&l);
        let conv = conv.unwrap();
        // Three chains (bucket, node1, node2-via-next): the node chains are
        // not formal prefixes of each other (the next-field offset differs),
        // so a naive conversion keeps all three — 3+4+5 kernels. The
        // duplicated key->bucket prefixes are the kind of inefficiency that
        // keeps Converted below Manual in Figure 7.
        assert_eq!(conv.program.kernels.len(), 12, "{:?}", conv.program);
        // Pragma can't see the list (NonIndPhi): only key→bucket.
        assert_eq!(prag.unwrap().program.kernels.len(), 2);
    }

    #[test]
    fn pagerank_has_no_conversion() {
        let l = pagerank(r(0x1000, 0x8000), r(0x10000, 0x8000));
        let (conv, prag) = run_passes(&l);
        assert!(conv.is_none(), "no software prefetches to convert");
        assert!(prag.is_some());
    }

    #[test]
    fn g500_csr_pragma_finds_two_patterns() {
        let l = g500_csr(
            r(0x1000, 0x1000),
            r(0x10000, 0x8000),
            r(0x20000, 0x8000),
            r(0x30000, 0x8000),
            16,
        );
        let (conv, prag) = run_passes(&l);
        assert!(conv.is_some());
        let prag = prag.unwrap();
        // q→rowstart and edges→visited: 2 chains x 2 kernels.
        assert_eq!(prag.program.kernels.len(), 4, "{:?}", prag.program);
    }

    #[test]
    fn g500_list_is_limited_to_one_hop() {
        let l = g500_list(
            r(0x1000, 0x1000),
            r(0x10000, 0x8000),
            r(0x20000, 0x10000),
            16,
        );
        let (conv, prag) = run_passes(&l);
        assert_eq!(conv.unwrap().program.kernels.len(), 2);
        assert_eq!(prag.unwrap().program.kernels.len(), 2);
    }

    #[test]
    fn randacc_conversion_keeps_wrap_pragma_loses_it() {
        let l = randacc(r(0x1000, 1024), r(0x10000, 0x8000), 12, 24);
        let (conv, prag) = run_passes(&l);
        let conv = conv.unwrap();
        let prag = prag.unwrap();
        // Converted level-0 kernel applies the wrap mask (andi 1023-ish on
        // the index); the pragma one does not.
        let conv_k0 = &conv.program.kernels[0];
        let has_wrap = conv_k0
            .insts
            .iter()
            .any(|i| matches!(i, etpp_isa::Inst::AndI { imm: 127, .. }));
        assert!(has_wrap, "{conv_k0:?}");
        let prag_k0 = &prag.program.kernels[0];
        let prag_wrap = prag_k0
            .insts
            .iter()
            .any(|i| matches!(i, etpp_isa::Inst::AndI { imm: 127, .. }));
        assert!(!prag_wrap, "pragma cannot discover the wrap");
    }
}
