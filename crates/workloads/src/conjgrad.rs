//! ConjGrad — the NAS CG sparse matrix-vector kernel (Table 2:
//! stride-indirect).
//!
//! The hot loop of conjugate gradient is the SpMV sweep over a CSR matrix:
//! sequential `colidx`/`a` streams feeding an indirect gather of `x`:
//!
//! ```text
//! for r in rows: for j in rowstart[r]..rowstart[r+1]:
//!     sum += a[j] * x[colidx[j]]
//! ```
//!
//! Values are carried as fixed-point integers in FP-class micro-ops, which
//! keeps validation exact while still occupying the FP units.

use crate::common::{checksum_region, mix64, BuiltWorkload, PrefetchSetup, Scale, Workload};
use etpp_cpu::{OpId, TraceBuilder};
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_ROW: u32 = 0x400;
const PC_COL: u32 = 0x404;
const PC_A: u32 = 0x408;
const PC_X: u32 = 0x40c;
const PC_ST_Y: u32 = 0x410;
const PC_BR: u32 = 0x414;
const PC_COL_PF: u32 = 0x418;
const PC_SWPF: u32 = 0x41c;

const SWPF_DIST: u64 = 32;

const G_X_BASE: u8 = 0;
const G_A_BASE: u8 = 1;
const G_COL_BASE: u8 = 2;
const G_COL_END: u8 = 3;

const TAG_COL: u16 = 0;

/// The ConjGrad (NAS CG SpMV) workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConjGrad;

struct Layout {
    rowstart: Region,
    colidx: Region,
    a: Region,
    x: Region,
    y: Region,
    rows: u64,
    nnz_per_row: u64,
}

impl Workload for ConjGrad {
    fn name(&self) -> &'static str {
        "ConjGrad"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (rows, nnz_per_row, n) = match scale {
            Scale::Tiny => (2_000u64, 8u64, 1u64 << 15),
            Scale::Small => (60_000, 8, 1 << 20),
            // NAS CG class B: n = 75000, ~13 nnz per row after outer products.
            Scale::Paper => (75_000, 168, 1 << 20),
        };
        let nnz = rows * nnz_per_row;
        let mut image = MemoryImage::new();
        let l = Layout {
            rowstart: image.alloc_region((rows + 1) * 8),
            colidx: image.alloc_region(nnz * 8),
            a: image.alloc_region(nnz * 8),
            x: image.alloc_region(n * 8),
            y: image.alloc_region(rows * 8),
            rows,
            nnz_per_row,
        };
        for r in 0..=rows {
            image.write_u64(l.rowstart.base + 8 * r, r * nnz_per_row);
        }
        for j in 0..nnz {
            image.write_u64(l.colidx.base + 8 * j, mix64(j ^ 0xC61) % n);
            image.write_u64(l.a.base + 8 * j, mix64(j ^ 0xA) % 1024);
        }
        for i in 0..n {
            image.write_u64(l.x.base + 8 * i, mix64(i ^ 0x11) % 1024);
        }
        let pristine = image.clone();

        let (conv, prag) =
            crate::loop_ir::run_passes(&crate::loop_ir::conjgrad(l.colidx, l.x, SWPF_DIST));
        let trace = build_trace(&mut image.clone(), &l, false);
        let sw_trace = build_trace(&mut image.clone(), &l, true);
        let mut post = image;
        reference(&mut post, &l);
        let expected = checksum_region(&post, l.y);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: Some(sw_trace),
            manual: Some(manual_setup(&l)),
            converted: conv,
            pragma: prag,
            check_region: l.y,
            expected,
            notes: "CSR SpMV sweep; fixed-point values in FP-class ops",
        }
    }
}

fn reference(image: &mut MemoryImage, l: &Layout) {
    for r in 0..l.rows {
        let start = image.read_u64(l.rowstart.base + 8 * r);
        let end = image.read_u64(l.rowstart.base + 8 * (r + 1));
        let mut sum = 0u64;
        for j in start..end {
            let col = image.read_u64(l.colidx.base + 8 * j);
            let av = image.read_u64(l.a.base + 8 * j);
            let xv = image.read_u64(l.x.base + 8 * col);
            sum = sum.wrapping_add(av.wrapping_mul(xv));
        }
        image.write_u64(l.y.base + 8 * r, sum);
    }
}

fn build_trace(image: &mut MemoryImage, l: &Layout, swpf: bool) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    let nnz = l.rows * l.nnz_per_row;
    for r in 0..l.rows {
        let ldr = b.load(l.rowstart.base + 8 * r, PC_ROW, [None, None]);
        let start = image.read_u64(l.rowstart.base + 8 * r);
        let end = image.read_u64(l.rowstart.base + 8 * (r + 1));
        let mut sum = 0u64;
        let mut acc: Option<OpId> = None;
        for j in start..end {
            if swpf {
                let jd = (j + SWPF_DIST).min(nnz - 1);
                let c2 = image.read_u64(l.colidx.base + 8 * jd);
                let ld2 = b.load(l.colidx.base + 8 * jd, PC_COL_PF, [None, None]);
                let s2 = b.int_op(1, [Some(ld2), None]);
                b.swpf(l.x.base + 8 * c2, PC_SWPF, [Some(s2), None]);
            }
            let col = image.read_u64(l.colidx.base + 8 * j);
            let av = image.read_u64(l.a.base + 8 * j);
            let xv = image.read_u64(l.x.base + 8 * col);
            let ldc = b.load(l.colidx.base + 8 * j, PC_COL, [Some(ldr), None]);
            let lda = b.load(l.a.base + 8 * j, PC_A, [Some(ldr), None]);
            let sh = b.int_op(1, [Some(ldc), None]);
            let ldx = b.load(l.x.base + 8 * col, PC_X, [Some(sh), None]);
            let mul = b.fp_op(4, [Some(ldx), Some(lda)]);
            acc = Some(b.fp_op(4, [Some(mul), acc]));
            sum = sum.wrapping_add(av.wrapping_mul(xv));
            b.branch(PC_BR, j + 1 != end, [None, None]);
        }
        image.write_u64(l.y.base + 8 * r, sum);
        b.store(l.y.base + 8 * r, sum, PC_ST_Y, [acc, None]);
    }
    b.build()
}

fn manual_setup(l: &Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    // on_col_load: once per colidx line, prefetch the colidx line
    // `lookahead` ahead (tagged) and the matching a[] line (untagged).
    let mut kb = KernelBuilder::new("on_col_load");
    let halt = kb.label();
    let on_col_load = program.add_kernel(
        kb.ld_vaddr(0)
            .andi(1, 0, 63)
            .li(2, 0)
            .bne(1, 2, halt)
            .ld_ewma(3, 0)
            .shli(3, 3, 3)
            .add(0, 0, 3)
            .ld_global(4, G_COL_END)
            .bgeu(0, 4, halt)
            .prefetch_tag(0, TAG_COL)
            .ld_global(5, G_COL_BASE)
            .sub(6, 0, 5)
            .ld_global(7, G_A_BASE)
            .add(6, 6, 7)
            .prefetch(6)
            .bind(halt)
            .halt()
            .build(),
    );

    // colidx line arrived: gather-prefetch x for all eight columns.
    let mut kb = KernelBuilder::new("on_col_line");
    let top = kb.label();
    let on_col_line = program.add_kernel(
        kb.ld_global(1, G_X_BASE)
            .li(2, 0)
            .bind(top)
            .ld_data(3, 2)
            .shli(3, 3, 3)
            .add(3, 3, 1)
            .prefetch(3)
            .addi(2, 2, 8)
            .li(4, 64)
            .bltu(2, 4, top)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_X_BASE,
            value: l.x.base,
        },
        ConfigOp::SetGlobal {
            idx: G_A_BASE,
            value: l.a.base,
        },
        ConfigOp::SetGlobal {
            idx: G_COL_BASE,
            value: l.colidx.base,
        },
        ConfigOp::SetGlobal {
            idx: G_COL_END,
            value: l.colidx.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.colidx.base,
            hi: l.colidx.end(),
            on_load: Some(on_col_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: l.x.base,
            hi: l.x.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_COL),
            kernel: on_col_line.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape_matches_nnz() {
        let w = ConjGrad.build(Scale::Tiny);
        let c = w.trace.class_counts();
        let nnz = 2_000 * 8;
        // rowstart + colidx + a + x loads.
        assert_eq!(c.loads, 2_000 + 3 * nnz);
        assert_eq!(c.fp, 2 * nnz);
        assert_eq!(c.stores, 2_000);
    }

    #[test]
    fn determinism() {
        let a = ConjGrad.build(Scale::Tiny);
        let b = ConjGrad.build(Scale::Tiny);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn manual_prefetches_both_streams() {
        let w = ConjGrad.build(Scale::Tiny);
        let m = w.manual.as_ref().unwrap();
        let k = m.program.find("on_col_load").unwrap();
        let n_pf = m
            .program
            .kernel(k)
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    etpp_isa::Inst::Prefetch { .. } | etpp_isa::Inst::PrefetchTag { .. }
                )
            })
            .count();
        assert_eq!(n_pf, 2, "colidx (tagged) + a (untagged)");
    }
}
