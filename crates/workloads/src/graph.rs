//! Graph generation: Graph500 Kronecker (R-MAT) edge lists and builders.
//!
//! The Graph500 reference generator produces R-MAT graphs with initiator
//! probabilities A=0.57, B=0.19, C=0.19, D=0.05 and an edge factor of 16.
//! This module reimplements it deterministically (quadrant choices are
//! derived from splitmix64 of the edge/bit indices) and provides CSR and
//! adjacency-linked-list builders plus a host-side BFS for validation.

use crate::common::mix64;

/// An undirected edge list over `2^scale` vertices.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Number of vertices (`2^scale`).
    pub n_vertices: u64,
    /// Directed edge tuples (both directions are inserted by the builders).
    pub edges: Vec<(u32, u32)>,
}

/// Generates a Kronecker (R-MAT) graph with Graph500's initiator matrix.
///
/// `scale` is log2 of the vertex count; `edge_factor` is edges per vertex.
pub fn kronecker(scale: u32, edge_factor: u64, seed: u64) -> EdgeList {
    let n = 1u64 << scale;
    let m = n * edge_factor;
    let mut edges = Vec::with_capacity(m as usize);
    for e in 0..m {
        let mut src = 0u64;
        let mut dst = 0u64;
        for bit in 0..scale {
            let r = mix64(seed ^ (e << 8) ^ bit as u64) % 100;
            // A=57, B=19, C=19, D=5.
            let (sbit, dbit) = if r < 57 {
                (0, 0)
            } else if r < 76 {
                (0, 1)
            } else if r < 95 {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | sbit;
            dst = (dst << 1) | dbit;
        }
        edges.push((src as u32, dst as u32));
    }
    EdgeList {
        n_vertices: n,
        edges,
    }
}

/// A CSR adjacency structure (vertex ids as u64 for direct 8-byte loads).
#[derive(Debug, Clone)]
pub struct Csr {
    /// `rowstart[v]..rowstart[v+1]` indexes `adjacency` for vertex `v`.
    pub rowstart: Vec<u64>,
    /// Flattened adjacency (both edge directions).
    pub adjacency: Vec<u64>,
}

/// Builds symmetric CSR adjacency from an edge list (self-loops dropped).
pub fn to_csr(el: &EdgeList) -> Csr {
    let n = el.n_vertices as usize;
    let mut degree = vec![0u64; n];
    for &(s, d) in &el.edges {
        if s != d {
            degree[s as usize] += 1;
            degree[d as usize] += 1;
        }
    }
    let mut rowstart = vec![0u64; n + 1];
    for v in 0..n {
        rowstart[v + 1] = rowstart[v] + degree[v];
    }
    let mut cursor = rowstart.clone();
    let mut adjacency = vec![0u64; rowstart[n] as usize];
    for &(s, d) in &el.edges {
        if s != d {
            adjacency[cursor[s as usize] as usize] = d as u64;
            cursor[s as usize] += 1;
            adjacency[cursor[d as usize] as usize] = s as u64;
            cursor[d as usize] += 1;
        }
    }
    Csr {
        rowstart,
        adjacency,
    }
}

/// Host-side BFS over CSR: returns (visit order, visited flags).
pub fn bfs_reference(csr: &Csr, root: u64) -> (Vec<u64>, Vec<bool>) {
    let n = csr.rowstart.len() - 1;
    let mut visited = vec![false; n];
    let mut queue = Vec::with_capacity(n);
    visited[root as usize] = true;
    queue.push(root);
    let mut i = 0;
    while i < queue.len() {
        let u = queue[i] as usize;
        i += 1;
        for e in csr.rowstart[u]..csr.rowstart[u + 1] {
            let v = csr.adjacency[e as usize];
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push(v);
            }
        }
    }
    (queue, visited)
}

/// Picks a root in the largest connected component: the highest-degree
/// vertex (Graph500 picks random roots with degree ≥ 1; the hub is the
/// deterministic equivalent that guarantees a large traversal).
pub fn pick_root(csr: &Csr) -> u64 {
    let n = csr.rowstart.len() - 1;
    (0..n)
        .max_by_key(|&v| csr.rowstart[v + 1] - csr.rowstart[v])
        .unwrap_or(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_is_deterministic() {
        let a = kronecker(8, 4, 1);
        let b = kronecker(8, 4, 1);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.edges.len(), 256 * 4);
    }

    #[test]
    fn kronecker_is_skewed() {
        // R-MAT concentrates edges on low-numbered vertices: the max degree
        // should far exceed the average.
        let el = kronecker(10, 8, 42);
        let csr = to_csr(&el);
        let n = 1024;
        let avg = csr.adjacency.len() as u64 / n;
        let max = (0..n as usize)
            .map(|v| csr.rowstart[v + 1] - csr.rowstart[v])
            .max()
            .unwrap();
        assert!(max > avg * 8, "max degree {max} vs avg {avg}");
    }

    #[test]
    fn csr_is_symmetric() {
        let el = kronecker(6, 4, 7);
        let csr = to_csr(&el);
        // Every edge (u,v) has a mirror (v,u).
        for u in 0..64usize {
            for e in csr.rowstart[u]..csr.rowstart[u + 1] {
                let v = csr.adjacency[e as usize] as usize;
                let back = (csr.rowstart[v]..csr.rowstart[v + 1])
                    .any(|e2| csr.adjacency[e2 as usize] == u as u64);
                assert!(back, "missing mirror of ({u},{v})");
            }
        }
    }

    #[test]
    fn bfs_reaches_most_of_the_hub_component() {
        let el = kronecker(10, 8, 3);
        let csr = to_csr(&el);
        let root = pick_root(&csr);
        let (order, visited) = bfs_reference(&csr, root);
        assert!(order.len() > 200, "traversal too small: {}", order.len());
        assert_eq!(order.len(), visited.iter().filter(|&&v| v).count());
    }
}
