//! PageRank over a CSR web graph (Table 2: stride-indirect).
//!
//! One pull-style PageRank iteration: for every vertex, accumulate
//! `rank[src]` over its in-edges, then write the damped result. The edge
//! array streams sequentially; the rank gathers are scattered. The paper
//! uses the Boost Graph Library on web-Google; here the graph is a
//! Kronecker graph with comparable degree skew (substitution recorded in
//! DESIGN.md).
//!
//! BGL's templated iterators hide element addresses, so *software
//! prefetching is not possible* (the empty Figure 7 bar); the pragma pass
//! works on the IR and succeeds.

use crate::common::{checksum_region, BuiltWorkload, PrefetchSetup, Scale, Workload};
use crate::graph::{kronecker, to_csr};
use etpp_cpu::{OpId, TraceBuilder};
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_ROW: u32 = 0x700;
const PC_EDGE: u32 = 0x704;
const PC_RANK: u32 = 0x708;
const PC_ST: u32 = 0x70c;
const PC_BR: u32 = 0x710;

const G_RANK_BASE: u8 = 0;
const G_EDGE_END: u8 = 1;

const TAG_EDGES: u16 = 0;

/// The PageRank workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageRank;

struct Layout {
    rowstart: Region,
    edges: Region,
    rank: Region,
    newrank: Region,
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (g_scale, edge_factor) = match scale {
            Scale::Tiny => (11u32, 8u64),
            Scale::Small => (17, 8),
            // web-Google: ~0.9M vertices, ~5M edges.
            Scale::Paper => (20, 5),
        };
        let el = kronecker(g_scale, edge_factor, 0x9a6e);
        let csr = to_csr(&el);
        let n = csr.rowstart.len() as u64 - 1;

        let mut image = MemoryImage::new();
        let l = Layout {
            rowstart: image.alloc_region((n + 1) * 8),
            edges: image.alloc_region(csr.adjacency.len() as u64 * 8),
            rank: image.alloc_region(n * 8),
            newrank: image.alloc_region(n * 8),
        };
        image.write_u64_slice(l.rowstart.base, &csr.rowstart);
        image.write_u64_slice(l.edges.base, &csr.adjacency);
        for v in 0..n {
            // Fixed-point initial rank.
            image.write_u64(l.rank.base + 8 * v, 1_000_000 / n.max(1));
        }
        let pristine = image.clone();

        let (conv, prag) = crate::loop_ir::run_passes(&crate::loop_ir::pagerank(l.edges, l.rank));
        assert!(conv.is_none(), "PageRank must not convert (no swpf)");
        let trace = build_trace(&mut image.clone(), &l, n);
        let mut post = image;
        reference(&mut post, &l, n);
        let expected = checksum_region(&post, l.newrank);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: None, // BGL iterators: no address to software-prefetch
            manual: Some(manual_setup(&l)),
            converted: None,
            pragma: prag,
            check_region: l.newrank,
            expected,
            notes: "pull-based PR iteration on Kronecker stand-in for web-Google; \
                    software prefetch impossible through BGL iterators",
        }
    }
}

fn reference(image: &mut MemoryImage, l: &Layout, n: u64) {
    for v in 0..n {
        let start = image.read_u64(l.rowstart.base + 8 * v);
        let end = image.read_u64(l.rowstart.base + 8 * (v + 1));
        let mut acc = 0u64;
        for e in start..end {
            let s = image.read_u64(l.edges.base + 8 * e);
            acc = acc.wrapping_add(image.read_u64(l.rank.base + 8 * s));
        }
        // Damping 0.85 in fixed point.
        image.write_u64(l.newrank.base + 8 * v, acc.wrapping_mul(85) / 100);
    }
}

fn build_trace(image: &mut MemoryImage, l: &Layout, n: u64) -> etpp_cpu::Trace {
    let mut b = TraceBuilder::new();
    for v in 0..n {
        let ldr = b.load(l.rowstart.base + 8 * v, PC_ROW, [None, None]);
        let start = image.read_u64(l.rowstart.base + 8 * v);
        let end = image.read_u64(l.rowstart.base + 8 * (v + 1));
        let mut acc: Option<OpId> = None;
        let mut sum = 0u64;
        for e in start..end {
            let s = image.read_u64(l.edges.base + 8 * e);
            let lde = b.load(l.edges.base + 8 * e, PC_EDGE, [Some(ldr), None]);
            let sh = b.int_op(1, [Some(lde), None]);
            let ldk = b.load(l.rank.base + 8 * s, PC_RANK, [Some(sh), None]);
            acc = Some(b.fp_op(4, [Some(ldk), acc]));
            sum = sum.wrapping_add(image.read_u64(l.rank.base + 8 * s));
            b.branch(PC_BR, e + 1 != end, [None, None]);
        }
        let damped = b.muldiv(3, [acc, None]);
        let out = sum.wrapping_mul(85) / 100;
        image.write_u64(l.newrank.base + 8 * v, out);
        b.store(l.newrank.base + 8 * v, out, PC_ST, [Some(damped), None]);
    }
    b.build()
}

fn manual_setup(l: &Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    // Edge stream drives everything: once per edge line, prefetch the edge
    // line `lookahead` ahead; on its arrival gather-prefetch the ranks.
    let mut kb = KernelBuilder::new("on_edge_load");
    let halt = kb.label();
    let on_edge_load = program.add_kernel(
        kb.ld_vaddr(0)
            .andi(1, 0, 63)
            .li(2, 0)
            .bne(1, 2, halt)
            .ld_ewma(3, 0)
            .shli(3, 3, 3)
            .add(0, 0, 3)
            .ld_global(4, G_EDGE_END)
            .bgeu(0, 4, halt)
            .prefetch_tag(0, TAG_EDGES)
            .bind(halt)
            .halt()
            .build(),
    );

    let mut kb = KernelBuilder::new("on_edge_line");
    let top = kb.label();
    let on_edge_line = program.add_kernel(
        kb.ld_global(1, G_RANK_BASE)
            .li(2, 0)
            .bind(top)
            .ld_data(3, 2)
            .shli(3, 3, 3)
            .add(3, 3, 1)
            .prefetch(3)
            .addi(2, 2, 8)
            .li(4, 64)
            .bltu(2, 4, top)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_RANK_BASE,
            value: l.rank.base,
        },
        ConfigOp::SetGlobal {
            idx: G_EDGE_END,
            value: l.edges.end(),
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.edges.base,
            hi: l.edges.end(),
            on_load: Some(on_edge_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: l.rank.base,
            hi: l.rank.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_EDGES),
            kernel: on_edge_line.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_visits_every_edge() {
        let w = PageRank.build(Scale::Tiny);
        let c = w.trace.class_counts();
        // Edge + rank load per edge.
        assert!(c.loads > 2 * 10_000);
        assert_eq!(c.fp, (c.loads - 2_048) / 2, "one fp acc per edge");
    }

    #[test]
    fn no_software_variant_matches_paper() {
        let w = PageRank.build(Scale::Tiny);
        assert!(w.sw_trace.is_none());
        assert!(w.notes.contains("impossible"));
    }
}
