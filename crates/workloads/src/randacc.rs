//! RandAcc — HPCC RandomAccess / GUPS (Table 2: stride-hash-indirect).
//!
//! Batches of 128 LCG streams are regenerated into a small array, then each
//! value XORs into a random slot of a table far larger than the L2:
//!
//! ```text
//! for each batch:
//!   for j in 0..128: ran[j] = lcg(ran[j]);            // phase 1 (registers)
//!   for j in 0..128: table[ran[j] & mask] ^= ran[j];  // phase 2 (traced loads)
//! ```
//!
//! The 128-entry `ran` array is the one the paper calls out: software
//! prefetch and manual events can encode the *wrap-around* to the next
//! batch — applying the LCG step inside the prefetch kernel — while the
//! pragma pass cannot discover it and leaves the first entries of each
//! batch unprefetched (§7.1).

use crate::common::{checksum_region, mix64, BuiltWorkload, PrefetchSetup, Scale, Workload};
use etpp_cpu::TraceBuilder;
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, MemoryImage, RangeId, Region, TagId};

const PC_RAN: u32 = 0x300;
const PC_TAB: u32 = 0x304;
const PC_ST_TAB: u32 = 0x308;
const PC_ST_RAN: u32 = 0x30c;
const PC_BR: u32 = 0x310;
const PC_RAN_PF: u32 = 0x314;
const PC_SWPF: u32 = 0x318;

/// HPCC polynomial for the LCG step.
const POLY: u64 = 7;

/// Streams per batch (fixed by the HPCC reference implementation).
const BATCH: u64 = 128;

/// Software / manual prefetch distance in elements.
const DIST: u64 = 24;

const G_TAB_BASE: u8 = 0;
const G_RAN_BASE: u8 = 1;
const G_MASK: u8 = 2;

const TAG_RAN: u16 = 0;
const TAG_RAN_WRAP: u16 = 1;

#[inline]
fn lcg(v: u64) -> u64 {
    (v << 1) ^ ((v >> 63).wrapping_mul(POLY))
}

/// The RandAcc workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandAcc;

struct Layout {
    ran: Region,
    table: Region,
    log_table: u32,
    n_updates: u64,
}

impl Workload for RandAcc {
    fn name(&self) -> &'static str {
        "RandAcc"
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let (log_table, n_updates) = match scale {
            Scale::Tiny => (15u32, 16_000u64),
            Scale::Small => (21, 300_000),
            // HPCC input 100000000 updates.
            Scale::Paper => (24, 100_000_000),
        };
        let mut image = MemoryImage::new();
        let l = Layout {
            ran: image.alloc_region(BATCH * 8),
            table: image.alloc_region((1u64 << log_table) * 8),
            log_table,
            n_updates: (n_updates / BATCH) * BATCH,
        };
        for j in 0..BATCH {
            image.write_u64(l.ran.base + 8 * j, mix64(j ^ 0x5eed));
        }
        for i in 0..(1u64 << log_table) {
            image.write_u64(l.table.base + 8 * i, i);
        }
        let pristine = image.clone();

        let (conv, prag) =
            crate::loop_ir::run_passes(&crate::loop_ir::randacc(l.ran, l.table, l.log_table, DIST));
        let trace = build_trace(&mut image.clone(), &l, false);
        let sw_trace = build_trace(&mut image.clone(), &l, true);
        let mut post = image;
        reference(&mut post, &l);
        let expected = checksum_region(&post, l.table);

        BuiltWorkload {
            name: self.name(),
            image: pristine,
            trace,
            sw_trace: Some(sw_trace),
            manual: Some(manual_setup(&l)),
            converted: conv,
            pragma: prag,
            check_region: l.table,
            expected,
            notes: "HPCC GUPS; 128-entry batch array exercises wrap-around prefetching",
        }
    }
}

fn reference(image: &mut MemoryImage, l: &Layout) {
    let mask = (1u64 << l.log_table) - 1;
    for _batch in 0..l.n_updates / BATCH {
        for j in 0..BATCH {
            let v = lcg(image.read_u64(l.ran.base + 8 * j));
            image.write_u64(l.ran.base + 8 * j, v);
        }
        for j in 0..BATCH {
            let v = image.read_u64(l.ran.base + 8 * j);
            let addr = l.table.base + 8 * (v & mask);
            let t = image.read_u64(addr);
            image.write_u64(addr, t ^ v);
        }
    }
}

fn build_trace(image: &mut MemoryImage, l: &Layout, swpf: bool) -> etpp_cpu::Trace {
    let mask = (1u64 << l.log_table) - 1;
    let mut b = TraceBuilder::new();
    for _batch in 0..l.n_updates / BATCH {
        // Phase 1: regenerate the streams (register arithmetic + stores).
        for j in 0..BATCH {
            let v = lcg(image.read_u64(l.ran.base + 8 * j));
            image.write_u64(l.ran.base + 8 * j, v);
            let a = b.int_op(1, [None, None]);
            let c = b.int_op(1, [Some(a), None]);
            b.store(l.ran.base + 8 * j, v, PC_ST_RAN, [Some(c), None]);
            b.branch(PC_BR, j + 1 != BATCH, [None, None]);
        }
        // Phase 2: apply the updates.
        for j in 0..BATCH {
            if swpf {
                // Wrap-aware software prefetch: for the tail of the batch,
                // apply the LCG step to predict the next batch's value.
                let jd = j + DIST;
                let (addr_known, extra_lcg) = if jd < BATCH {
                    (image.read_u64(l.ran.base + 8 * jd), false)
                } else {
                    (image.read_u64(l.ran.base + 8 * (jd - BATCH)), true)
                };
                let v2 = if extra_lcg {
                    lcg(addr_known)
                } else {
                    addr_known
                };
                let src = l.ran.base + 8 * (jd % BATCH);
                let ld2 = b.load(src, PC_RAN_PF, [None, None]);
                let mut dep = b.int_op(1, [Some(ld2), None]);
                if extra_lcg {
                    dep = b.int_op(1, [Some(dep), None]);
                    dep = b.int_op(1, [Some(dep), None]);
                }
                b.swpf(l.table.base + 8 * (v2 & mask), PC_SWPF, [Some(dep), None]);
            }
            let v = image.read_u64(l.ran.base + 8 * j);
            let addr = l.table.base + 8 * (v & mask);
            let ld = b.load(l.ran.base + 8 * j, PC_RAN, [None, None]);
            let mk = b.int_op(1, [Some(ld), None]);
            let ldt = b.load(addr, PC_TAB, [Some(mk), None]);
            let x = b.int_op(1, [Some(ldt), Some(ld)]);
            let t = image.read_u64(addr);
            image.write_u64(addr, t ^ v);
            b.store(addr, t ^ v, PC_ST_TAB, [Some(x), None]);
            b.branch(PC_BR, j + 1 != BATCH, [None, None]);
        }
    }
    b.build()
}

fn manual_setup(l: &Layout) -> PrefetchSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();

    // on_ran_load: prefetch the stream value DIST ahead, wrapping within the
    // 1 KiB array; wrapped targets get the LCG-applying kernel.
    let mut kb = KernelBuilder::new("on_ran_load");
    let wrapped = kb.label();
    let on_ran_load = program.add_kernel(
        kb.ld_vaddr(0)
            .ld_global(1, G_RAN_BASE)
            .sub(0, 0, 1) // offset in array
            .addi(0, 0, (DIST * 8) as i64)
            .li(2, BATCH * 8)
            .bgeu(0, 2, wrapped)
            .add(0, 0, 1)
            .prefetch_tag(0, TAG_RAN)
            .halt()
            .bind(wrapped)
            .andi(0, 0, BATCH * 8 - 1)
            .add(0, 0, 1)
            .prefetch_tag(0, TAG_RAN_WRAP)
            .halt()
            .build(),
    );

    // Current-batch value: table[v & mask].
    let on_ran = program.add_kernel(
        KernelBuilder::new("on_ran")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .ld_global(2, G_MASK)
            .and(0, 0, 2)
            .shli(0, 0, 3)
            .ld_global(3, G_TAB_BASE)
            .add(0, 0, 3)
            .prefetch(0)
            .halt()
            .build(),
    );

    // Wrapped: the next batch will first regenerate, so apply the LCG step
    // to the observed value before indexing the table.
    let on_ran_wrap = program.add_kernel(
        KernelBuilder::new("on_ran_wrap")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .shri(4, 0, 63)
            .muli(4, 4, POLY)
            .shli(0, 0, 1)
            .xor(0, 0, 4)
            .ld_global(2, G_MASK)
            .and(0, 0, 2)
            .shli(0, 0, 3)
            .ld_global(3, G_TAB_BASE)
            .add(0, 0, 3)
            .prefetch(0)
            .halt()
            .build(),
    );

    let configs = vec![
        ConfigOp::SetGlobal {
            idx: G_TAB_BASE,
            value: l.table.base,
        },
        ConfigOp::SetGlobal {
            idx: G_RAN_BASE,
            value: l.ran.base,
        },
        ConfigOp::SetGlobal {
            idx: G_MASK,
            value: (1u64 << l.log_table) - 1,
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: l.ran.base,
            hi: l.ran.end(),
            on_load: Some(on_ran_load.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: l.table.base,
            hi: l.table.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_RAN),
            kernel: on_ran.0,
            chain_end: false,
        },
        ConfigOp::SetTagKernel {
            tag: TagId(TAG_RAN_WRAP),
            kernel: on_ran_wrap.0,
            chain_end: false,
        },
    ];

    PrefetchSetup {
        program: program.build(),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_hpcc_semantics() {
        // Positive values shift left; negative (top-bit) values also XOR POLY.
        assert_eq!(lcg(1), 2);
        assert_eq!(lcg(1u64 << 63), POLY);
    }

    #[test]
    fn updates_are_batch_aligned() {
        let w = RandAcc.build(Scale::Tiny);
        let c = w.trace.class_counts();
        // Phase2 contributes 2 loads per update.
        assert_eq!(c.loads % (2 * BATCH), 0);
    }

    #[test]
    fn wrap_kernel_differs_from_plain() {
        let w = RandAcc.build(Scale::Tiny);
        let m = w.manual.as_ref().unwrap();
        let plain = m.program.find("on_ran").unwrap();
        let wrap = m.program.find("on_ran_wrap").unwrap();
        assert!(m.program.kernel(wrap).len() > m.program.kernel(plain).len());
    }

    #[test]
    fn reference_touches_table() {
        let w = RandAcc.build(Scale::Tiny);
        let mut post = w.image.clone();
        let l = Layout {
            ran: Region {
                base: 0x1_0000,
                len: BATCH * 8,
            },
            table: w.check_region,
            log_table: 15,
            n_updates: 16_000 / BATCH * BATCH,
        };
        reference(&mut post, &l);
        assert_eq!(checksum_region(&post, w.check_region), w.expected);
    }
}
