//! Four-state reference-prediction-table stride prefetcher (Chen & Baer).
//!
//! Where [`crate::StridePrefetcher`] collapses the classic RPT automaton
//! into a saturating two-bit counter, this engine implements the original
//! four-state machine verbatim: `Init`, `Transient`, `Steady`, `NoPred`.
//! A prediction is *correct* when the incoming address equals
//! `last_addr + stride`; the transitions are
//!
//! | state     | correct        | incorrect                     |
//! |-----------|----------------|-------------------------------|
//! | Init      | → Steady       | update stride, → Transient    |
//! | Transient | → Steady       | update stride, → NoPred       |
//! | Steady    | stay           | → Init (stride kept)          |
//! | NoPred    | → Transient    | update stride, stay           |
//!
//! Prefetches launch only from `Steady` with a non-zero stride, at
//! `addr + stride * 1..=degree`, through the same dedup ring and bounded
//! queue as the two-bit engine — so on a pure stride stream the two
//! implementations converge to the identical issued-prefetch multiset,
//! which `tests/engine_zoo.rs` pins.

use crate::stride::StrideParams;
use etpp_mem::{ConfigOp, DemandEvent, Line, PrefetchEngine, PrefetchRequest, TagId, LINE_SIZE};
use std::collections::VecDeque;

/// The RPT automaton states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum RptState {
    /// Entry just allocated: stride not yet trusted.
    #[default]
    Init,
    /// One misprediction from steady in either direction.
    Transient,
    /// Stride confirmed; predictions launch prefetches.
    Steady,
    /// Irregular: predictions are suppressed until the stride repeats.
    NoPred,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: u32,
    valid: bool,
    last_addr: u64,
    stride: i64,
    state: RptState,
}

/// The four-state RPT stride prefetcher. Shares [`StrideParams`] with the
/// two-bit engine so sweeps can swap one for the other cell-for-cell.
#[derive(Debug)]
pub struct RptStridePrefetcher {
    params: StrideParams,
    table: Vec<Entry>,
    queue: VecDeque<u64>,
    /// Last few issued line addresses, to suppress duplicates cheaply.
    recent: VecDeque<u64>,
    /// Prefetch requests issued.
    pub issued: u64,
}

impl RptStridePrefetcher {
    /// Creates an empty prefetcher.
    pub fn new(params: StrideParams) -> Self {
        RptStridePrefetcher {
            table: vec![Entry::default(); params.entries],
            queue: VecDeque::with_capacity(params.queue),
            recent: VecDeque::with_capacity(32),
            issued: 0,
            params,
        }
    }

    fn enqueue(&mut self, vaddr: u64) {
        let line = vaddr & !(LINE_SIZE - 1);
        if self.recent.contains(&line) {
            return;
        }
        if self.recent.len() >= 32 {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
        if self.queue.len() >= self.params.queue {
            self.queue.pop_front();
        }
        self.queue.push_back(vaddr);
    }
}

impl PrefetchEngine for RptStridePrefetcher {
    fn on_demand(&mut self, _now: u64, ev: &DemandEvent) {
        if ev.is_write {
            return;
        }
        let idx = (ev.pc as usize) & (self.params.entries - 1);
        let e = &mut self.table[idx];
        if !e.valid || e.pc != ev.pc {
            *e = Entry {
                pc: ev.pc,
                valid: true,
                last_addr: ev.vaddr,
                stride: 0,
                state: RptState::Init,
            };
            return;
        }
        let correct = ev.vaddr == e.last_addr.wrapping_add(e.stride as u64);
        let new_stride = ev.vaddr as i64 - e.last_addr as i64;
        e.state = match (e.state, correct) {
            (RptState::Init, true) => RptState::Steady,
            (RptState::Init, false) => {
                e.stride = new_stride;
                RptState::Transient
            }
            (RptState::Transient, true) => RptState::Steady,
            (RptState::Transient, false) => {
                e.stride = new_stride;
                RptState::NoPred
            }
            (RptState::Steady, true) => RptState::Steady,
            // Chen & Baer keep the stride on the steady→init fall so a
            // single blip does not forget a long-lived pattern.
            (RptState::Steady, false) => RptState::Init,
            (RptState::NoPred, true) => RptState::Transient,
            (RptState::NoPred, false) => {
                e.stride = new_stride;
                RptState::NoPred
            }
        };
        e.last_addr = ev.vaddr;
        if e.state == RptState::Steady && e.stride != 0 {
            let stride = e.stride;
            let base = ev.vaddr;
            for d in 1..=self.params.degree as i64 {
                let target = base.wrapping_add((stride * d) as u64);
                self.enqueue(target);
            }
        }
    }

    fn on_prefetch_fill(
        &mut self,
        _now: u64,
        _vaddr: u64,
        _line: &Line,
        _tag: Option<TagId>,
        _meta: u64,
    ) {
    }

    fn tick(&mut self, _now: u64) {}

    fn pop_request(&mut self, _now: u64) -> Option<PrefetchRequest> {
        self.queue.pop_front().map(|vaddr| {
            self.issued += 1;
            PrefetchRequest {
                vaddr,
                tag: None,
                meta: 0,
            }
        })
    }

    fn config(&mut self, _now: u64, _op: &ConfigOp) {}

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Purely reactive: the only pending work is queued requests,
        // which the memory system pops one per cycle.
        (!self.queue.is_empty()).then_some(now + 1)
    }

    fn next_tick_at(&self, _now: u64) -> Option<u64> {
        // `tick` is a no-op, exactly like the two-bit stride engine.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(pc: u32, vaddr: u64) -> DemandEvent {
        DemandEvent {
            at: 0,
            vaddr,
            pc,
            is_write: false,
            l1_hit: false,
        }
    }

    fn drain(s: &mut RptStridePrefetcher) -> Vec<u64> {
        let mut v = vec![];
        while let Some(r) = s.pop_request(0) {
            v.push(r.vaddr);
        }
        v
    }

    #[test]
    fn steadies_one_access_earlier_than_two_bit() {
        // alloc, stride learned, steady: the third access already issues.
        let mut s = RptStridePrefetcher::new(StrideParams::paper());
        s.on_demand(0, &load(0x40, 0x1000));
        s.on_demand(0, &load(0x40, 0x1100));
        assert!(drain(&mut s).is_empty(), "transient must not issue");
        s.on_demand(0, &load(0x40, 0x1200));
        let t = drain(&mut s);
        assert!(!t.is_empty(), "steady stream must prefetch");
        assert!(t.contains(&(0x1200 + 0x100)));
    }

    #[test]
    fn single_blip_recovers_without_retraining() {
        let mut s = RptStridePrefetcher::new(StrideParams::paper());
        for i in 0..8u64 {
            s.on_demand(0, &load(0x40, 0x1000 + i * 256));
        }
        drain(&mut s);
        // One off-pattern access: steady → init, stride kept.
        s.on_demand(0, &load(0x40, 0x9000));
        drain(&mut s);
        // The pattern resumes relative to the blip: init → steady
        // immediately because the kept stride predicts correctly.
        s.on_demand(0, &load(0x40, 0x9000 + 256));
        let t = drain(&mut s);
        assert!(t.contains(&(0x9000 + 2 * 256)), "kept stride must recover");
    }

    #[test]
    fn random_addresses_park_in_no_pred() {
        let mut s = RptStridePrefetcher::new(StrideParams::paper());
        let mut x = 1u64;
        let mut n = 0;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.on_demand(0, &load(0x40, x % (1 << 30)));
            n += drain(&mut s).len();
        }
        assert!(n < 16, "random stream should not sustain prefetching: {n}");
    }

    #[test]
    fn stores_are_ignored() {
        let mut s = RptStridePrefetcher::new(StrideParams::paper());
        for i in 0..8u64 {
            s.on_demand(
                0,
                &DemandEvent {
                    at: 0,
                    vaddr: 0x1000 + i * 64,
                    pc: 9,
                    is_write: true,
                    l1_hit: false,
                },
            );
        }
        assert!(s.pop_request(0).is_none());
    }
}
