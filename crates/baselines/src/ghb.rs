//! Markov global-history-buffer prefetcher (Nesbit & Smith, G/AC).
//!
//! A circular *global history buffer* records the stream of L1 demand-miss
//! line addresses; an *index table* maps a miss address to its most recent
//! occurrence, and each GHB entry links to the previous occurrence of the
//! same address. On a miss, the prefetcher walks up to `depth` prior
//! occurrences and issues the `width` addresses that followed each one —
//! classic Markov address correlation.
//!
//! The paper evaluates a *regular* configuration (2048-entry index/GHB,
//! SRAM-realistic) and a *large* one with 1 GiB of state, free to access, as
//! an upper bound on modern history prefetchers that keep state in DRAM.
//! Here "large" uses 2²⁴ entries — far more than the distinct lines any
//! scaled workload touches, so it behaves as unbounded history (the
//! substitution is recorded in DESIGN.md).

use etpp_mem::{ConfigOp, DemandEvent, Line, PrefetchEngine, PrefetchRequest, TagId, LINE_SIZE};
use std::collections::VecDeque;

/// GHB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhbParams {
    /// Index table entries (power of two).
    pub index_entries: usize,
    /// History buffer entries (power of two).
    pub ghb_entries: usize,
    /// Prior occurrences of the miss address to walk.
    pub depth: usize,
    /// Successor addresses fetched per occurrence.
    pub width: usize,
    /// Pending request queue capacity.
    pub queue: usize,
}

impl GhbParams {
    /// Table 1 "regular": index/GHB 2048/2048, depth 16, width 6.
    pub fn regular() -> Self {
        GhbParams {
            index_entries: 2048,
            ghb_entries: 2048,
            depth: 16,
            width: 6,
            queue: 128,
        }
    }

    /// Table 1 "large": effectively unbounded history (paper: 1 GiB with
    /// free access; here 2²⁴ entries ≫ any workload's footprint).
    pub fn large() -> Self {
        GhbParams {
            index_entries: 1 << 24,
            ghb_entries: 1 << 24,
            depth: 16,
            width: 6,
            queue: 128,
        }
    }
}

/// The Markov GHB prefetcher engine.
#[derive(Debug)]
pub struct GhbPrefetcher {
    params: GhbParams,
    /// Line address (compressed to u32 line index) per GHB slot.
    lines: Vec<u32>,
    /// Link to the previous occurrence (absolute position), or `u64::MAX`.
    links: Vec<u64>,
    /// Index table: line-index hash → last absolute position.
    index: Vec<u64>,
    /// Absolute write position (monotonic; slot = pos % ghb_entries).
    pos: u64,
    queue: VecDeque<u64>,
    /// Prefetch requests issued.
    pub issued: u64,
}

impl GhbPrefetcher {
    /// Creates an empty history.
    pub fn new(params: GhbParams) -> Self {
        assert!(params.index_entries.is_power_of_two());
        assert!(params.ghb_entries.is_power_of_two());
        GhbPrefetcher {
            lines: vec![0; params.ghb_entries],
            links: vec![u64::MAX; params.ghb_entries],
            index: vec![u64::MAX; params.index_entries],
            pos: 0,
            queue: VecDeque::with_capacity(params.queue),
            issued: 0,
            params,
        }
    }

    #[inline]
    fn line_index(vaddr: u64) -> u32 {
        (vaddr / LINE_SIZE) as u32
    }

    #[inline]
    fn hash(&self, line: u32) -> usize {
        // Fibonacci hash into the index table.
        ((line as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize
            & (self.params.index_entries - 1)
    }

    #[inline]
    fn in_window(&self, abs: u64) -> bool {
        abs != u64::MAX && abs < self.pos && self.pos - abs <= self.params.ghb_entries as u64
    }

    fn enqueue(&mut self, line: u32) {
        let vaddr = line as u64 * LINE_SIZE;
        if self.queue.contains(&vaddr) {
            return;
        }
        if self.queue.len() >= self.params.queue {
            self.queue.pop_front();
        }
        self.queue.push_back(vaddr);
    }
}

impl PrefetchEngine for GhbPrefetcher {
    fn on_demand(&mut self, _now: u64, ev: &DemandEvent) {
        if ev.is_write || ev.l1_hit {
            return; // Markov GHB trains on the miss stream.
        }
        let line = Self::line_index(ev.vaddr);
        let h = self.hash(line);

        // Predict: walk prior occurrences (newest first), fetching their
        // successors until `width` total prefetches are gathered. `depth`
        // bounds the chain walk; `width` bounds traffic per miss, as in the
        // G/AC organisation.
        let mut occurrence = self.index[h];
        let mut walked = 0;
        let mut budget = self.params.width;
        while walked < self.params.depth && budget > 0 && self.in_window(occurrence) {
            let slot = (occurrence % self.params.ghb_entries as u64) as usize;
            if self.lines[slot] != line {
                break; // hash collision: stale chain
            }
            for w in 1..=self.params.width as u64 {
                if budget == 0 {
                    break;
                }
                let succ = occurrence + w;
                if succ < self.pos {
                    let sslot = (succ % self.params.ghb_entries as u64) as usize;
                    self.enqueue(self.lines[sslot]);
                    budget -= 1;
                }
            }
            occurrence = self.links[slot];
            walked += 1;
        }

        // Record the miss.
        let slot = (self.pos % self.params.ghb_entries as u64) as usize;
        self.lines[slot] = line;
        self.links[slot] = self.index[h];
        self.index[h] = self.pos;
        self.pos += 1;
    }

    fn on_prefetch_fill(
        &mut self,
        _now: u64,
        _vaddr: u64,
        _line: &Line,
        _tag: Option<TagId>,
        _meta: u64,
    ) {
    }

    fn tick(&mut self, _now: u64) {}

    fn pop_request(&mut self, _now: u64) -> Option<PrefetchRequest> {
        self.queue.pop_front().map(|vaddr| {
            self.issued += 1;
            PrefetchRequest {
                vaddr,
                tag: None,
                meta: 0,
            }
        })
    }

    fn config(&mut self, _now: u64, _op: &ConfigOp) {}

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Purely reactive: the only pending work is queued requests,
        // which the memory system pops one per cycle.
        (!self.queue.is_empty()).then_some(now + 1)
    }

    fn next_tick_at(&self, _now: u64) -> Option<u64> {
        // `tick` is a no-op: with pops gated by a full prefetch buffer
        // there is nothing to run until the next snooped access.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(vaddr: u64) -> DemandEvent {
        DemandEvent {
            at: 0,
            vaddr,
            pc: 1,
            is_write: false,
            l1_hit: false,
        }
    }

    fn drain(g: &mut GhbPrefetcher) -> Vec<u64> {
        let mut v = vec![];
        while let Some(r) = g.pop_request(0) {
            v.push(r.vaddr);
        }
        v
    }

    #[test]
    fn repeated_sequence_is_predicted() {
        let mut g = GhbPrefetcher::new(GhbParams::regular());
        let seq = [0x1000u64, 0x9000, 0x3000, 0x7000, 0x5000];
        // First pass trains.
        for &a in &seq {
            g.on_demand(0, &miss(a));
        }
        drain(&mut g);
        // Second pass: after the first miss, successors are predicted.
        g.on_demand(0, &miss(seq[0]));
        let preds = drain(&mut g);
        assert!(preds.contains(&0x9000), "successor predicted: {preds:x?}");
        assert!(preds.contains(&0x3000));
    }

    #[test]
    fn novel_misses_predict_nothing() {
        let mut g = GhbPrefetcher::new(GhbParams::regular());
        for i in 0..100u64 {
            g.on_demand(0, &miss(0x10_0000 + i * 4096));
        }
        // Every address distinct: no correlation exists on first touch.
        // (Queue may hold stale-hash noise; must be tiny.)
        assert!(drain(&mut g).len() < 8);
    }

    #[test]
    fn regular_capacity_forgets_long_streams() {
        // Stream longer than the GHB: the first addresses have been
        // overwritten by the time the stream repeats.
        let mut g = GhbPrefetcher::new(GhbParams::regular());
        let n = 4096u64; // 2x GHB capacity
        for i in 0..n {
            g.on_demand(0, &miss(0x100_0000 + i * 64 * 7));
        }
        drain(&mut g);
        g.on_demand(0, &miss(0x100_0000));
        let preds = drain(&mut g);
        assert!(
            preds.is_empty(),
            "evicted history must not predict: {preds:x?}"
        );
    }

    #[test]
    fn large_capacity_remembers_the_same_stream() {
        let mut g = GhbPrefetcher::new(GhbParams::large());
        let n = 4096u64;
        for i in 0..n {
            g.on_demand(0, &miss(0x100_0000 + i * 64 * 7));
        }
        drain(&mut g);
        g.on_demand(0, &miss(0x100_0000));
        let preds = drain(&mut g);
        assert!(
            preds.contains(&(0x100_0000 + 64 * 7)),
            "large GHB must remember: {preds:x?}"
        );
    }

    #[test]
    fn hits_do_not_train() {
        let mut g = GhbPrefetcher::new(GhbParams::regular());
        for i in 0..10u64 {
            g.on_demand(
                0,
                &DemandEvent {
                    at: 0,
                    vaddr: 0x1000 + i * 64,
                    pc: 1,
                    is_write: false,
                    l1_hit: true,
                },
            );
        }
        g.on_demand(0, &miss(0x1000));
        assert!(drain(&mut g).is_empty());
    }
}
