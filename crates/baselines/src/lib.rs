//! Baseline prefetchers the paper compares against (Figure 7).
//!
//! * [`StridePrefetcher`] — a reference-prediction-table stride prefetcher
//!   (Chen & Baer) with degree 8, trained on demand loads by PC.
//! * [`GhbPrefetcher`] — a Markov global-history-buffer prefetcher (Nesbit &
//!   Smith, G/AC organisation) with depth 16 and width 6, in a *regular*
//!   SRAM-realistic configuration (2048/2048) and a *large* configuration
//!   modelling ~1 GiB of in-memory history with free access to it.
//! * [`RptStridePrefetcher`] — the original four-state Chen & Baer
//!   reference-prediction-table automaton, a cross-check for the two-bit
//!   stride engine (the differential suite pins their agreement on pure
//!   stride streams).
//! * [`PcDeltaPrefetcher`] — a My5/Pythia-lineage PC-delta engine that
//!   learns per-(PC, delta) accuracies and issues every delta above a
//!   threshold, variable degree capped at a page.
//!
//! All implement [`etpp_mem::PrefetchEngine`] and attach to the same L1
//! port as the programmable prefetcher, so every scheme contends for the
//! same MSHRs, TLB and DRAM bandwidth.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ghb;
pub mod pc_delta;
pub mod rpt_stride;
pub mod stride;

pub use ghb::{GhbParams, GhbPrefetcher};
pub use pc_delta::{AccuracyTable, PcDeltaParams, PcDeltaPrefetcher, PAGE_SIZE};
pub use rpt_stride::RptStridePrefetcher;
pub use stride::{StrideParams, StridePrefetcher};
