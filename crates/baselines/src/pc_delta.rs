//! PC-delta accuracy-threshold prefetcher (My5/Pythia lineage).
//!
//! Each load PC owns a small set of *delta* slots. When a PC touches
//! address `a` after previously touching `a'`, the delta `a - a'` is
//! trained into the PC's slot set: every slot ages (`seen + 1`) and the
//! matching slot — allocated on first sight — scores (`hit + 1`). A
//! slot's accuracy is therefore `hit / seen`, the fraction of the PC's
//! recent transitions this delta explained. On every load the engine
//! issues a prefetch for *each* delta whose accuracy clears the
//! threshold — variable degree, not a fixed lookahead — with two caps:
//! targets must stay inside the triggering access's 4 KiB page, and at
//! most `max_degree` issues per trigger.
//!
//! Training is driven purely by the demand stream (a delta is accurate
//! if it recurs), never by `tick` counts or fill callbacks, so the
//! engine's decisions are bit-identical between the horizon-skipping
//! fast path and the per-cycle reference — the contract
//! `tests/engine_zoo.rs` pins. The learning table itself is public as
//! [`AccuracyTable`] so `tests/properties.rs` can drive it with
//! arbitrary sequences.

use etpp_mem::{ConfigOp, DemandEvent, Line, PrefetchEngine, PrefetchRequest, TagId, LINE_SIZE};
use std::collections::VecDeque;

/// Virtual page size used for the per-trigger issue window.
pub const PAGE_SIZE: u64 = 4096;

/// PC-delta prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcDeltaParams {
    /// PC table entries (direct-mapped by PC, power of two).
    pub pc_entries: usize,
    /// Delta slots tracked per PC.
    pub delta_slots: usize,
    /// Issue a delta only when `hit / seen` strictly exceeds this.
    pub threshold: f64,
    /// Issue a delta only after it has aged through this many trainings.
    pub min_samples: u32,
    /// Hard cap on issues per triggering access (a page of lines).
    pub max_degree: usize,
    /// Pending-request queue capacity.
    pub queue: usize,
}

impl PcDeltaParams {
    /// Default configuration: 256 PCs × 8 deltas, 50% accuracy floor,
    /// degree capped at one 4 KiB page of lines.
    pub fn paper() -> Self {
        PcDeltaParams {
            pc_entries: 256,
            delta_slots: 8,
            threshold: 0.5,
            min_samples: 4,
            max_degree: (PAGE_SIZE / LINE_SIZE) as usize,
            queue: 64,
        }
    }
}

impl Default for PcDeltaParams {
    fn default() -> Self {
        PcDeltaParams::paper()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DeltaSlot {
    delta: i64,
    hit: u32,
    seen: u32,
}

impl DeltaSlot {
    fn accuracy(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.hit as f64 / self.seen as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct PcEntry {
    pc: u32,
    valid: bool,
    slots: Vec<DeltaSlot>,
}

/// The per-(PC, delta) accuracy learner, separated from the engine so
/// property tests can hammer it directly with arbitrary sequences.
#[derive(Debug)]
pub struct AccuracyTable {
    pc_entries: usize,
    delta_slots: usize,
    table: Vec<PcEntry>,
}

/// Counter ceiling: halve `hit`/`seen` when `seen` reaches this, so
/// accuracies keep tracking recent behaviour instead of ancient history.
const SEEN_CEILING: u32 = 1 << 30;

impl AccuracyTable {
    /// Creates an empty table. `pc_entries` must be a power of two.
    pub fn new(pc_entries: usize, delta_slots: usize) -> Self {
        assert!(pc_entries.is_power_of_two(), "pc_entries must be 2^k");
        assert!(delta_slots > 0, "need at least one delta slot");
        AccuracyTable {
            pc_entries,
            delta_slots,
            table: vec![PcEntry::default(); pc_entries],
        }
    }

    fn entry_mut(&mut self, pc: u32) -> &mut PcEntry {
        let idx = (pc as usize) & (self.pc_entries - 1);
        &mut self.table[idx]
    }

    fn entry(&self, pc: u32) -> Option<&PcEntry> {
        let idx = (pc as usize) & (self.pc_entries - 1);
        let e = &self.table[idx];
        (e.valid && e.pc == pc).then_some(e)
    }

    /// Trains one observed transition `delta` for `pc`. Every tracked
    /// slot ages by one; the matching slot (allocated on first sight,
    /// evicting the lowest-accuracy slot at capacity) also scores.
    /// Zero deltas (same-address re-references) are not trained.
    pub fn observe(&mut self, pc: u32, delta: i64) {
        if delta == 0 {
            return;
        }
        let slots = self.delta_slots;
        let e = self.entry_mut(pc);
        if !e.valid || e.pc != pc {
            *e = PcEntry {
                pc,
                valid: true,
                slots: Vec::with_capacity(slots),
            };
        }
        let mut matched = false;
        for s in &mut e.slots {
            s.seen += 1;
            if s.delta == delta {
                s.hit += 1;
                matched = true;
            }
            if s.seen >= SEEN_CEILING {
                // Round the halved hit up so a live delta never decays
                // to exactly zero accuracy.
                s.hit = s.hit.div_ceil(2);
                s.seen = s.seen.div_ceil(2);
            }
        }
        if !matched {
            let fresh = DeltaSlot {
                delta,
                hit: 1,
                seen: 1,
            };
            if e.slots.len() < slots {
                e.slots.push(fresh);
            } else {
                // Deterministic eviction: lowest accuracy, first slot on
                // ties (stable index order).
                let victim = e
                    .slots
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.accuracy()
                            .partial_cmp(&b.accuracy())
                            .expect("accuracy is never NaN")
                    })
                    .map(|(i, _)| i)
                    .expect("capacity > 0");
                e.slots[victim] = fresh;
            }
        }
    }

    /// The learned accuracy for `(pc, delta)`, if tracked.
    pub fn accuracy(&self, pc: u32, delta: i64) -> Option<f64> {
        self.entry(pc)?
            .slots
            .iter()
            .find(|s| s.delta == delta)
            .map(|s| s.accuracy())
    }

    /// Deltas whose accuracy strictly exceeds `threshold` after at least
    /// `min_samples` trainings, in slot (allocation) order. A threshold
    /// of 1.0 therefore issues nothing, and 0.0 passes every seasoned
    /// slot (accuracies are kept strictly positive).
    pub fn candidates(&self, pc: u32, threshold: f64, min_samples: u32) -> Vec<i64> {
        self.entry(pc)
            .map(|e| {
                e.slots
                    .iter()
                    .filter(|s| s.seen >= min_samples && s.accuracy() > threshold)
                    .map(|s| s.delta)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of delta slots currently tracked for `pc`.
    pub fn tracked(&self, pc: u32) -> usize {
        self.entry(pc).map(|e| e.slots.len()).unwrap_or(0)
    }
}

/// The PC-delta accuracy-threshold prefetcher engine.
#[derive(Debug)]
pub struct PcDeltaPrefetcher {
    params: PcDeltaParams,
    learner: AccuracyTable,
    /// Last address per PC entry, kept beside the learner so `observe`
    /// sees deltas while the engine sees trigger addresses.
    last: Vec<(u32, bool, u64)>,
    queue: VecDeque<u64>,
    /// Last few issued line addresses, to suppress duplicates cheaply.
    recent: VecDeque<u64>,
    /// Prefetch requests issued.
    pub issued: u64,
}

impl PcDeltaPrefetcher {
    /// Creates an empty prefetcher.
    pub fn new(params: PcDeltaParams) -> Self {
        PcDeltaPrefetcher {
            learner: AccuracyTable::new(params.pc_entries, params.delta_slots),
            last: vec![(0, false, 0); params.pc_entries],
            queue: VecDeque::with_capacity(params.queue),
            recent: VecDeque::with_capacity(32),
            issued: 0,
            params,
        }
    }

    fn enqueue(&mut self, vaddr: u64) {
        let line = vaddr & !(LINE_SIZE - 1);
        if self.recent.contains(&line) {
            return;
        }
        if self.recent.len() >= 32 {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
        if self.queue.len() >= self.params.queue {
            self.queue.pop_front();
        }
        self.queue.push_back(vaddr);
    }

    /// Drops all pending (not yet popped) requests without counting them
    /// as issued. The phase-adaptive meta-engine calls this on a switch
    /// so targets trained during the previous phase do not leak out.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }
}

impl PrefetchEngine for PcDeltaPrefetcher {
    fn on_demand(&mut self, _now: u64, ev: &DemandEvent) {
        if ev.is_write {
            return;
        }
        let idx = (ev.pc as usize) & (self.params.pc_entries - 1);
        let (pc, valid, last_addr) = self.last[idx];
        if valid && pc == ev.pc {
            let delta = ev.vaddr as i64 - last_addr as i64;
            self.learner.observe(ev.pc, delta);
        }
        self.last[idx] = (ev.pc, true, ev.vaddr);

        let page = ev.vaddr & !(PAGE_SIZE - 1);
        let deltas = self
            .learner
            .candidates(ev.pc, self.params.threshold, self.params.min_samples);
        let mut degree = 0;
        for delta in deltas {
            if degree >= self.params.max_degree {
                break;
            }
            let target = ev.vaddr.wrapping_add(delta as u64);
            if target & !(PAGE_SIZE - 1) != page {
                continue;
            }
            self.enqueue(target);
            degree += 1;
        }
    }

    fn on_prefetch_fill(
        &mut self,
        _now: u64,
        _vaddr: u64,
        _line: &Line,
        _tag: Option<TagId>,
        _meta: u64,
    ) {
    }

    fn tick(&mut self, _now: u64) {}

    fn pop_request(&mut self, _now: u64) -> Option<PrefetchRequest> {
        self.queue.pop_front().map(|vaddr| {
            self.issued += 1;
            PrefetchRequest {
                vaddr,
                tag: None,
                meta: 0,
            }
        })
    }

    fn config(&mut self, _now: u64, _op: &ConfigOp) {}

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Purely reactive: the only pending work is queued requests,
        // which the memory system pops one per cycle.
        (!self.queue.is_empty()).then_some(now + 1)
    }

    fn next_tick_at(&self, _now: u64) -> Option<u64> {
        // `tick` is a no-op: training and issue both ride demand snoops.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(pc: u32, vaddr: u64) -> DemandEvent {
        DemandEvent {
            at: 0,
            vaddr,
            pc,
            is_write: false,
            l1_hit: false,
        }
    }

    fn drain(p: &mut PcDeltaPrefetcher) -> Vec<u64> {
        let mut v = vec![];
        while let Some(r) = p.pop_request(0) {
            v.push(r.vaddr);
        }
        v
    }

    #[test]
    fn single_delta_stream_issues_that_delta() {
        let mut p = PcDeltaPrefetcher::new(PcDeltaParams::paper());
        for i in 0..16u64 {
            p.on_demand(0, &load(7, 0x10_0000 + i * 192));
        }
        let t = drain(&mut p);
        assert!(!t.is_empty(), "a perfectly accurate delta must issue");
        assert!(t.iter().all(|a| (a - 0x10_0000) % 192 == 0));
    }

    #[test]
    fn alternating_deltas_issue_both() {
        // a, a+192, a+192+320, ... — each individual delta is ~50%
        // accurate, which clears a 0.45 threshold: both must issue.
        let mut p = PcDeltaPrefetcher::new(PcDeltaParams {
            threshold: 0.45,
            ..PcDeltaParams::paper()
        });
        let mut a = 0x20_0000u64;
        let mut issued_deltas = std::collections::HashSet::new();
        for i in 0..32 {
            p.on_demand(0, &load(7, a));
            for t in drain(&mut p) {
                issued_deltas.insert(t.wrapping_sub(a));
            }
            a += if i % 2 == 0 { 192 } else { 320 };
        }
        assert!(issued_deltas.contains(&192), "delta 192 must issue");
        assert!(issued_deltas.contains(&320), "delta 320 must issue");
    }

    #[test]
    fn random_stream_throttles_to_silence() {
        let mut p = PcDeltaPrefetcher::new(PcDeltaParams::paper());
        let mut x = 1u64;
        let mut n = 0;
        for _ in 0..256 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.on_demand(0, &load(7, x % (1 << 30)));
            n += drain(&mut p).len();
        }
        assert_eq!(n, 0, "never-repeating deltas must stay under threshold");
    }

    #[test]
    fn targets_stay_in_the_triggering_page() {
        let mut p = PcDeltaPrefetcher::new(PcDeltaParams::paper());
        for i in 0..64u64 {
            p.on_demand(0, &load(7, 0x40_0000 + i * 256));
        }
        drain(&mut p);
        // A trigger near a page end: the learned +256 delta would cross
        // the page boundary, so nothing may issue for it.
        p.on_demand(0, &load(7, 0x90_0F80));
        assert!(
            drain(&mut p).is_empty(),
            "cross-page target must be dropped"
        );
    }

    #[test]
    fn threshold_one_issues_nothing() {
        let mut p = PcDeltaPrefetcher::new(PcDeltaParams {
            threshold: 1.0,
            ..PcDeltaParams::paper()
        });
        for i in 0..64u64 {
            p.on_demand(0, &load(7, 0x10_0000 + i * 64));
        }
        assert!(drain(&mut p).is_empty(), "accuracy can never exceed 1.0");
    }
}
