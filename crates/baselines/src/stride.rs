//! Reference-prediction-table stride prefetcher (Chen & Baer, Table 1).
//!
//! Per-PC entries track the last address and stride with a two-bit
//! confidence state. Once steady, an access launches prefetches at
//! `addr + stride * 1..=degree`. This captures dense sequential and strided
//! traversals but, as the paper's evaluation shows, nothing data-dependent.

use etpp_mem::{ConfigOp, DemandEvent, Line, PrefetchEngine, PrefetchRequest, TagId, LINE_SIZE};
use std::collections::VecDeque;

/// Stride prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideParams {
    /// Reference prediction table entries (direct-mapped by PC).
    pub entries: usize,
    /// Prefetch degree: how many strides ahead to fetch once steady.
    pub degree: u32,
    /// Pending-request queue capacity.
    pub queue: usize,
}

impl StrideParams {
    /// Table 1: reference prediction table, degree 8.
    pub fn paper() -> Self {
        StrideParams {
            entries: 256,
            degree: 8,
            queue: 64,
        }
    }
}

impl Default for StrideParams {
    fn default() -> Self {
        StrideParams::paper()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RptEntry {
    pc: u32,
    valid: bool,
    last_addr: u64,
    stride: i64,
    /// 0 = initial, 1 = transient, 2..=3 = steady.
    state: u8,
}

/// The stride prefetcher engine.
#[derive(Debug)]
pub struct StridePrefetcher {
    params: StrideParams,
    table: Vec<RptEntry>,
    queue: VecDeque<u64>,
    /// Last few issued line addresses, to suppress duplicates cheaply.
    recent: VecDeque<u64>,
    /// Prefetch requests issued.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    pub fn new(params: StrideParams) -> Self {
        StridePrefetcher {
            table: vec![RptEntry::default(); params.entries],
            queue: VecDeque::with_capacity(params.queue),
            recent: VecDeque::with_capacity(32),
            issued: 0,
            params,
        }
    }

    fn enqueue(&mut self, vaddr: u64) {
        let line = vaddr & !(LINE_SIZE - 1);
        if self.recent.contains(&line) {
            return;
        }
        if self.recent.len() >= 32 {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
        if self.queue.len() >= self.params.queue {
            self.queue.pop_front();
        }
        self.queue.push_back(vaddr);
    }

    /// Drops all pending (not yet popped) requests without counting them
    /// as issued. The phase-adaptive meta-engine calls this on a switch
    /// so targets trained during the previous phase do not leak out.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }
}

impl PrefetchEngine for StridePrefetcher {
    fn on_demand(&mut self, _now: u64, ev: &DemandEvent) {
        if ev.is_write {
            return;
        }
        let idx = (ev.pc as usize) & (self.params.entries - 1);
        let e = &mut self.table[idx];
        if !e.valid || e.pc != ev.pc {
            *e = RptEntry {
                pc: ev.pc,
                valid: true,
                last_addr: ev.vaddr,
                stride: 0,
                state: 0,
            };
            return;
        }
        let new_stride = ev.vaddr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.state = (e.state + 1).min(3);
        } else {
            e.state = e.state.saturating_sub(1);
            e.stride = new_stride;
        }
        e.last_addr = ev.vaddr;
        if e.state >= 2 {
            let stride = e.stride;
            let base = ev.vaddr;
            for d in 1..=self.params.degree as i64 {
                let target = base.wrapping_add((stride * d) as u64);
                self.enqueue(target);
            }
        }
    }

    fn on_prefetch_fill(
        &mut self,
        _now: u64,
        _vaddr: u64,
        _line: &Line,
        _tag: Option<TagId>,
        _meta: u64,
    ) {
    }

    fn tick(&mut self, _now: u64) {}

    fn pop_request(&mut self, _now: u64) -> Option<PrefetchRequest> {
        self.queue.pop_front().map(|vaddr| {
            self.issued += 1;
            PrefetchRequest {
                vaddr,
                tag: None,
                meta: 0,
            }
        })
    }

    fn config(&mut self, _now: u64, _op: &ConfigOp) {}

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Purely reactive: the only pending work is queued requests,
        // which the memory system pops one per cycle.
        (!self.queue.is_empty()).then_some(now + 1)
    }

    fn next_tick_at(&self, _now: u64) -> Option<u64> {
        // `tick` is a no-op: with pops gated by a full prefetch buffer
        // there is nothing to run until the next snooped access.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(pc: u32, vaddr: u64) -> DemandEvent {
        DemandEvent {
            at: 0,
            vaddr,
            pc,
            is_write: false,
            l1_hit: false,
        }
    }

    #[test]
    fn trains_on_constant_stride() {
        let mut s = StridePrefetcher::new(StrideParams::paper());
        for i in 0..8u64 {
            s.on_demand(0, &load(0x40, 0x1000 + i * 256));
        }
        let mut targets = vec![];
        while let Some(r) = s.pop_request(0) {
            targets.push(r.vaddr);
        }
        assert!(!targets.is_empty(), "steady stream must prefetch");
        // Prefetches run ahead of the last access with the right stride.
        assert!(targets.contains(&(0x1000 + 7 * 256 + 256)));
        assert!(targets.iter().all(|t| (t - 0x1000) % 256 == 0));
    }

    #[test]
    fn random_addresses_do_not_train() {
        let mut s = StridePrefetcher::new(StrideParams::paper());
        let mut x = 1u64;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.on_demand(0, &load(0x40, x % (1 << 30)));
        }
        // Transient strides may sneak out a few, but not a steady stream.
        let mut n = 0;
        while s.pop_request(0).is_some() {
            n += 1;
        }
        assert!(n < 16, "random stream should not sustain prefetching: {n}");
    }

    #[test]
    fn distinct_pcs_track_distinct_strides() {
        let mut s = StridePrefetcher::new(StrideParams::paper());
        for i in 0..8u64 {
            s.on_demand(0, &load(0x10, 0x10000 + i * 64));
            s.on_demand(0, &load(0x20, 0x80000 + i * 4096));
        }
        let mut t = vec![];
        while let Some(r) = s.pop_request(0) {
            t.push(r.vaddr);
        }
        assert!(t.iter().any(|a| (0x10000..0x20000).contains(a)));
        assert!(t.iter().any(|a| (0x80000..0x100000).contains(a)));
    }

    #[test]
    fn stores_are_ignored() {
        let mut s = StridePrefetcher::new(StrideParams::paper());
        for i in 0..8u64 {
            s.on_demand(
                0,
                &DemandEvent {
                    at: 0,
                    vaddr: 0x1000 + i * 64,
                    pc: 9,
                    is_write: true,
                    l1_hit: false,
                },
            );
        }
        assert!(s.pop_request(0).is_none());
    }
}
