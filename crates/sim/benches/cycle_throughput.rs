//! Cycle-level core throughput benches: the horizon-aware driver
//! (`Core::next_event_at` + `MemorySystem::advance_to`) against the
//! per-cycle unit-tick reference, for a baseline and a programmable
//! engine. The headline of PR 3 — the reference simulations that anchor
//! the paper's speedup claims used to tick every stall cycle.
//!
//! ```text
//! cargo bench -p etpp-sim --bench cycle_throughput
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etpp_sim::{run, PrefetchMode, SystemConfig};
use etpp_workloads::{BuiltWorkload, Scale, Workload};

fn bench_mode(c: &mut Criterion, wl: &BuiltWorkload, mode: PrefetchMode, label: &str) {
    let mut g = c.benchmark_group(label);
    g.sample_size(10);
    for (name, cfg) in [
        ("horizon", SystemConfig::paper()),
        ("per_cycle_ref", SystemConfig::paper_per_cycle()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run(&cfg, mode, wl).expect("mode expressible");
                assert!(r.validated, "{label}/{name} must validate");
                black_box(r.cycles)
            });
        });
    }
    g.finish();
}

fn bench_cycle(c: &mut Criterion) {
    // HJ-8's dependent hash/list walks produce the highest stall density
    // (>99% of visited cycles were pure stall before fast-forwarding);
    // IntSort is the dense, MSHR-saturating counterpoint.
    let hj8 = etpp_workloads::hashjoin::Hj8.build(Scale::Tiny);
    bench_mode(c, &hj8, PrefetchMode::None, "cycle_hj8_none");
    bench_mode(c, &hj8, PrefetchMode::Manual, "cycle_hj8_manual");
    let intsort = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
    bench_mode(c, &intsort, PrefetchMode::None, "cycle_intsort_none");
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
