//! Cycle-level core throughput benches: the horizon-aware driver
//! (`Core::next_event_at` + `MemorySystem::advance_to`, dense spans
//! fused per driver visit) against the per-cycle unit-tick reference,
//! for a baseline and a programmable engine — plus the structural
//! saturation cases whose wake-driven horizons replaced per-cycle
//! revisit pins (LQ-full parks, prefetch-buffer pop backlog).
//!
//! ```text
//! cargo bench -p etpp-sim --bench cycle_throughput
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etpp_sim::{run, PrefetchMode, SystemConfig};
use etpp_workloads::{BuiltWorkload, Scale, Workload};

fn bench_mode_with(
    c: &mut Criterion,
    wl: &BuiltWorkload,
    mode: PrefetchMode,
    label: &str,
    tweak: impl Fn(&mut SystemConfig),
) {
    let mut g = c.benchmark_group(label);
    g.sample_size(10);
    let mut fast = SystemConfig::paper();
    tweak(&mut fast);
    let mut reference = SystemConfig::paper_per_cycle();
    tweak(&mut reference);
    for (name, cfg) in [("horizon", fast), ("per_cycle_ref", reference)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run(&cfg, mode, wl).expect("mode expressible");
                assert!(r.validated, "{label}/{name} must validate");
                black_box(r.cycles)
            });
        });
    }
    g.finish();
}

fn bench_mode(c: &mut Criterion, wl: &BuiltWorkload, mode: PrefetchMode, label: &str) {
    bench_mode_with(c, wl, mode, label, |_| {});
}

fn bench_cycle(c: &mut Criterion) {
    // HJ-8's dependent hash/list walks produce the highest stall density
    // (>99% of visited cycles were pure stall before fast-forwarding);
    // IntSort is the dense, MSHR-saturating counterpoint.
    let hj8 = etpp_workloads::hashjoin::Hj8.build(Scale::Tiny);
    bench_mode(c, &hj8, PrefetchMode::None, "cycle_hj8_none");
    bench_mode(c, &hj8, PrefetchMode::Manual, "cycle_hj8_manual");
    let intsort = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
    bench_mode(c, &intsort, PrefetchMode::None, "cycle_intsort_none");
    // Structural saturation: a 2-entry LQ parks the memory queue on
    // LQ-free wakes; a 1-entry prefetch buffer + 3 MSHRs keeps the
    // manual kernels' pop queue backlogged (wake-on-slot-free) and the
    // demand path bouncing off the MSHR file (synthesised retries).
    bench_mode_with(
        c,
        &hj8,
        PrefetchMode::Manual,
        "cycle_hj8_manual_lq2",
        |cfg| {
            cfg.core.lq_entries = 2;
        },
    );
    bench_mode_with(
        c,
        &intsort,
        PrefetchMode::Manual,
        "cycle_intsort_manual_pfbuf1",
        |cfg| {
            cfg.mem.pf_buffer_entries = 1;
            cfg.mem.l1.mshrs = 3;
        },
    );
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
