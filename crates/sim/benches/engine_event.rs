//! Microbenches for the programmable engine's event path: dispatch
//! throughput (demand event → kernel → emitted request) and the cost of
//! the event-horizon query that the batched schedulers lean on.
//!
//! ```text
//! cargo bench -p etpp-sim --bench engine_event
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etpp_core::{PrefetchProgramBuilder, PrefetcherParams, ProgrammablePrefetcher};
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, DemandEvent, FilterFlags, PrefetchEngine, RangeId};

const ARRAY_A: u64 = 0x1000;
const ARRAY_B: u64 = 0x8000;

/// Figure 4-style engine: a demand load in A prefetches a look-ahead
/// element whose fill chains into B.
fn chain_engine() -> ProgrammablePrefetcher {
    let mut prog = PrefetchProgramBuilder::new();
    let on_a_load = prog.add_kernel(
        KernelBuilder::new("on_A_load")
            .ld_vaddr(0)
            .addi(0, 0, 128)
            .prefetch(0)
            .halt()
            .build(),
    );
    let on_a_pf = prog.add_kernel(
        KernelBuilder::new("on_A_prefetch")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .shli(0, 0, 3)
            .ld_global(2, 1)
            .add(0, 0, 2)
            .prefetch(0)
            .halt()
            .build(),
    );
    let mut pf = ProgrammablePrefetcher::new(PrefetcherParams::paper(), prog.build());
    pf.config(
        0,
        &ConfigOp::SetGlobal {
            idx: 1,
            value: ARRAY_B,
        },
    );
    pf.config(
        0,
        &ConfigOp::SetRange {
            id: RangeId(0),
            lo: ARRAY_A,
            hi: ARRAY_A + 0x1000,
            on_load: Some(on_a_load.0),
            on_prefetch: Some(on_a_pf.0),
            flags: FilterFlags::default(),
        },
    );
    pf
}

fn demand(at: u64, vaddr: u64) -> DemandEvent {
    DemandEvent {
        at,
        vaddr,
        pc: 0x40,
        is_write: false,
        l1_hit: false,
    }
}

/// Full event round-trips: observe a demand load, advance by the event
/// horizon until the emitted request pops. Measures dispatch + release
/// scheduling + horizon stepping — the replay fast path's inner loop.
fn bench_event_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_event");
    g.bench_function("demand_to_request", |b| {
        let mut pf = chain_engine();
        let mut now = 0u64;
        b.iter(|| {
            pf.on_demand(now, &demand(now, ARRAY_A + ((now % 0x1000) & !7)));
            let popped = loop {
                pf.tick(now);
                if let Some(r) = pf.pop_request(now) {
                    break r;
                }
                now = pf
                    .next_event_at(now)
                    .expect("pending emission keeps the horizon finite");
            };
            now += 1;
            black_box(popped.vaddr)
        });
    });
    g.bench_function("burst_12_events", |b| {
        // One observation per PPU, dispatched in a single batched step.
        let mut pf = chain_engine();
        let mut now = 0u64;
        b.iter(|| {
            for i in 0..12u64 {
                pf.on_demand(now, &demand(now, ARRAY_A + ((i * 64) % 0x1000)));
            }
            pf.tick(now);
            let mut drained = 0u64;
            loop {
                while pf.pop_request(now).is_some() {
                    drained += 1;
                }
                if drained >= 12 {
                    break;
                }
                now = pf.next_event_at(now).expect("emissions pending");
                pf.tick(now);
            }
            now += 1;
            black_box(drained)
        });
    });
    g.finish();
}

/// The horizon query runs on every visited cycle of both consumers; it
/// must stay trivially cheap (a heap peek plus a PPU scan).
fn bench_next_event_at(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_horizon");
    g.bench_function("next_event_at_busy", |b| {
        let mut pf = chain_engine();
        for i in 0..12u64 {
            pf.on_demand(0, &demand(0, ARRAY_A + i * 64));
        }
        pf.tick(0);
        b.iter(|| black_box(pf.next_event_at(black_box(1))));
    });
    g.bench_function("next_event_at_quiescent", |b| {
        let pf = chain_engine();
        b.iter(|| black_box(pf.next_event_at(black_box(1))));
    });
    g.finish();
}

criterion_group!(benches, bench_event_dispatch, bench_next_event_at);
criterion_main!(benches);
