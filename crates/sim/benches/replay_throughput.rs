//! Trace-replay throughput benches: the event-horizon fast path against
//! the per-cycle reference loop, for a baseline and a programmable
//! engine. The `manual/*` pair is the headline of PR 2 — programmable
//! replay used to be tick-bound while baselines fast-forwarded.
//!
//! ```text
//! cargo bench -p etpp-sim --bench replay_throughput
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etpp_sim::{load_or_capture, make_engine, PrefetchMode, SystemConfig};
use etpp_trace::{replay, CapturedTrace, ReplayParams};
use etpp_workloads::{BuiltWorkload, Scale, Workload};

fn setup() -> (SystemConfig, BuiltWorkload, CapturedTrace) {
    let cfg = SystemConfig::paper();
    let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
    let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
    (cfg, wl, trace)
}

fn bench_mode(
    c: &mut Criterion,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    trace: &CapturedTrace,
    mode: PrefetchMode,
    label: &str,
) {
    let mut g = c.benchmark_group(label);
    g.sample_size(10);
    for (name, per_cycle_reference) in [("event_horizon", false), ("per_cycle_ref", true)] {
        g.bench_function(name, |b| {
            let params = ReplayParams {
                window: 8,
                per_cycle_reference,
                ..ReplayParams::default()
            };
            b.iter(|| {
                let mut engine = make_engine(cfg, mode, wl).expect("engine mode");
                let r = replay(
                    &params,
                    cfg.mem,
                    wl.image.clone(),
                    &trace.records,
                    engine.as_dyn(),
                );
                black_box(r.cycles)
            });
        });
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let (cfg, wl, trace) = setup();
    bench_mode(c, &cfg, &wl, &trace, PrefetchMode::None, "replay_none");
    bench_mode(c, &cfg, &wl, &trace, PrefetchMode::Manual, "replay_manual");
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
