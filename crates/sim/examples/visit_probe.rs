//! Dev probe: per-source visit attribution for one (workload, mode).
//!
//! ```text
//! cargo run --release -p etpp-sim --example visit_probe -- HJ-8 manual small
//! ```

use etpp_sim::{run, PrefetchMode, SystemConfig};
use etpp_workloads::{workload_by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("HJ-8");
    let mode = match args.get(1).map(String::as_str).unwrap_or("manual") {
        "none" => PrefetchMode::None,
        "stride" => PrefetchMode::Stride,
        "ghb" => PrefetchMode::GhbRegular,
        "converted" => PrefetchMode::Converted,
        "blocked" => PrefetchMode::Blocked,
        _ => PrefetchMode::Manual,
    };
    let scale = match args.get(2).map(String::as_str).unwrap_or("small") {
        "tiny" => Scale::Tiny,
        "paper" => Scale::Paper,
        _ => Scale::Small,
    };
    let wl = workload_by_name(name).expect("workload").build(scale);
    let mut cfg = SystemConfig::paper();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--lq" {
            cfg.core.lq_entries = it.next().expect("--lq N").parse().expect("count");
        } else if a == "--pfbuf" {
            cfg.mem.pf_buffer_entries = it.next().expect("--pfbuf N").parse().expect("count");
        } else if a == "--mshrs" {
            cfg.mem.l1.mshrs = it.next().expect("--mshrs N").parse().expect("count");
        }
    }
    let r = run(&cfg, mode, &wl).expect("runs");
    println!(
        "{name}/{mode:?}: cycles={} host_iters={} ff={:.2} validated={}",
        r.cycles,
        r.host_iters,
        r.ff(),
        r.validated
    );
    for (key, count) in r.visits.iter() {
        println!(
            "  {key:>18}: {count:>10} ({:.1}%)",
            count as f64 / r.host_iters.max(1) as f64 * 100.0
        );
    }
    println!(
        "  core: retries={} loads={} forwards={} insts={} active_cycles={}",
        r.core.load_retries,
        r.core.loads_issued,
        r.core.store_forwards,
        r.core.insts_retired,
        r.core.active_cycles
    );
}
