//! Re-measures the absolute-cycle agreement numbers pinned in
//! `tests/replay_fidelity.rs` (plus window variants around them),
//! printing replayed cycles and signed relative error vs the cycle core
//! per front-end configuration:
//!
//! ```text
//! cargo run --release -p etpp-sim --example fidelity_probe
//! ```
//!
//! Run this before re-pinning the fidelity constants after a deliberate
//! front-end model change; the `v2w8` column is what `replay_run` uses.

use etpp_sim::{replay as rp, run, run_captured, PrefetchMode, SystemConfig};
use etpp_trace::ReplayParams;
use etpp_workloads::{workload_by_name, Scale};

fn main() {
    let cfg = SystemConfig::paper();
    for name in ["IntSort", "HJ-8"] {
        let wl = workload_by_name(name).unwrap().build(Scale::Small);
        let (base, trace) = run_captured(&cfg, PrefetchMode::None, &wl, "small").unwrap();
        for mode in [PrefetchMode::None, PrefetchMode::Manual] {
            let cycle = if mode == PrefetchMode::None {
                base.cycles
            } else {
                run(&cfg, mode, &wl).unwrap().cycles
            };
            print!("{name}/{mode:?}: cycle={cycle}");
            for (label, params) in [
                (
                    "v1w8",
                    ReplayParams {
                        window: 8,
                        dependence_aware: false,
                        ..Default::default()
                    },
                ),
                (
                    "v2w8",
                    ReplayParams {
                        window: 8,
                        ..Default::default()
                    },
                ),
                (
                    "v2w12",
                    ReplayParams {
                        window: 12,
                        ..Default::default()
                    },
                ),
                (
                    "v2w16",
                    ReplayParams {
                        window: 16,
                        ..Default::default()
                    },
                ),
                (
                    "v2w16g1",
                    ReplayParams {
                        window: 16,
                        issue_gap: 1,
                        gap_cap: 1,
                        ..Default::default()
                    },
                ),
                (
                    "v2w16g2",
                    ReplayParams {
                        window: 16,
                        gap_cap: 2,
                        ..Default::default()
                    },
                ),
            ] {
                let r = rp::replay_run_with(&cfg, mode, &wl, &trace.records, &params).unwrap();
                print!(
                    " {label}={} ({:+.3})",
                    r.cycles,
                    r.cycles as f64 / cycle as f64 - 1.0
                );
            }
            println!();
        }
    }
}
