//! The parallel trace-replay experiment runner.
//!
//! Capture once, replay everywhere: each workload's demand-access stream
//! is recorded from one cycle-level baseline run (or loaded from a disk
//! cache keyed by workload content hash) and then replayed — in parallel
//! across a configurable number of worker threads — against every
//! prefetcher configuration in the experiment grid. Replay skips the
//! out-of-order core entirely, which makes sweeping prefetcher
//! configurations an order of magnitude faster than full cycle simulation
//! while preserving relative speedup orderings (see [`etpp_trace::replay`]
//! for the fidelity contract).

use crate::config::{PrefetchMode, SystemConfig};
use crate::experiments::{map_indexed, SpeedupCell};
use crate::system::{make_engine, run_captured, Skip};
use etpp_mem::{CancelToken, MemStats};
use etpp_trace::{CapturedTrace, ReplayParams, TraceReader, TraceRecord, TraceWriter};
use etpp_workloads::{checksum_region, BuiltWorkload};
use std::collections::HashMap;
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Result of replaying one (workload, mode) cell.
#[derive(Debug)]
pub struct ReplayRun {
    /// Benchmark name.
    pub workload: &'static str,
    /// Prefetching scheme replayed against the trace.
    pub mode: PrefetchMode,
    /// Replayed cycles (directly comparable with the cycle core's on
    /// dependence-annotated streams; see `etpp_trace::replay`).
    pub cycles: u64,
    /// Host loop iterations (visited cycles); `cycles / host_iters` is
    /// the event-horizon fast-forward factor.
    pub host_iters: u64,
    /// Demand accesses replayed.
    pub accesses: u64,
    /// Loads serialised by a recorded dependence edge (v2 streams).
    pub dep_stalls: u64,
    /// Memory-side statistics.
    pub mem: MemStats,
    /// Whether the post-replay image checksum matched the reference.
    pub validated: bool,
}

/// Stable cache key for a workload's captured trace: hashes the
/// micro-op trace content (not just the name) plus the on-disk format
/// version, so regenerating a workload with different parameters — or
/// asking for a different trace format — invalidates the cached
/// capture instead of silently serving stale bytes.
pub fn workload_trace_key(wl: &BuiltWorkload, scale_label: &str, trace_format: u16) -> u64 {
    use etpp_trace::format::{fnv1a, FNV_OFFSET};
    let mut h = FNV_OFFSET;
    h = fnv1a(wl.name.as_bytes(), h);
    h = fnv1a(scale_label.as_bytes(), h);
    h = fnv1a(&(trace_format as u64).to_le_bytes(), h);
    h = fnv1a(&(wl.trace.len() as u64).to_le_bytes(), h);
    for op in &wl.trace.ops {
        h = fnv1a(&op.pc.to_le_bytes(), h);
        h = fnv1a(&[op.class as u8, op.aux], h);
        h = fnv1a(&op.addr.to_le_bytes(), h);
        h = fnv1a(&op.value.to_le_bytes(), h);
    }
    h
}

/// Path of the cached capture for `wl` inside `dir` at the given
/// on-disk format version (v1 and v2 captures coexist side by side).
pub fn trace_path(dir: &Path, wl: &BuiltWorkload, scale_label: &str, trace_format: u16) -> PathBuf {
    dir.join(format!(
        "{}-{}-v{}-{:016x}.etpt",
        wl.name.replace('/', "_"),
        scale_label,
        trace_format,
        workload_trace_key(wl, scale_label, trace_format)
    ))
}

/// How a capture was obtained (surfaced in reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureSource {
    /// Loaded from the on-disk cache.
    Cached,
    /// Captured fresh from a cycle-level baseline run.
    Captured,
}

/// Loads the cached capture for `wl`, or captures it from a cycle-level
/// no-prefetch run (and stores it in `dir`, if given), at the default
/// [`etpp_trace::FORMAT_VERSION`].
///
/// # Panics
/// Panics if the baseline cycle-level run fails validation — a trace from
/// a wrong run must never enter the cache. Workers that must quarantine
/// rather than die use [`try_load_or_capture_as`].
pub fn load_or_capture(
    dir: Option<&Path>,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    scale_label: &str,
) -> (CapturedTrace, CaptureSource) {
    load_or_capture_as(dir, cfg, wl, scale_label, etpp_trace::FORMAT_VERSION)
}

/// [`load_or_capture`] at an explicit on-disk format version (the
/// `--trace-format` CLI knob). Version 1 persists without dependence
/// edges, so traces loaded back from a v1 cache replay with the legacy
/// fixed-window front end.
///
/// # Panics
/// Panics on a capture failure (see [`try_load_or_capture_as`]).
pub fn load_or_capture_as(
    dir: Option<&Path>,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    scale_label: &str,
    trace_format: u16,
) -> (CapturedTrace, CaptureSource) {
    try_load_or_capture_as(dir, cfg, wl, scale_label, trace_format)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The in-process single-flight map: one lock per on-disk trace path,
/// so concurrent workers asking for the same capture serialise — the
/// first captures and persists, the rest re-probe the cache and hit.
/// (Cross-process dedup rides on the atomic tmp+rename in [`persist`]:
/// a racing process may redo work but can never tear the file.)
fn capture_lock(path: &Path) -> Arc<Mutex<()>> {
    static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
    let map = LOCKS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap_or_else(|p| p.into_inner());
    map.entry(path.to_path_buf()).or_default().clone()
}

/// [`load_or_capture_as`] with error propagation instead of panics: a
/// baseline capture that cannot run, or whose validation fails, comes
/// back as `Err` so an isolated worker can quarantine the workload
/// through the faults machinery instead of dying. Concurrent calls for
/// the same on-disk path are single-flighted (see [`capture_lock`]).
///
/// # Errors
/// A human-readable message naming the workload and the capture
/// failure (skip reason or validation mismatch).
pub fn try_load_or_capture_as(
    dir: Option<&Path>,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    scale_label: &str,
    trace_format: u16,
) -> Result<(CapturedTrace, CaptureSource), String> {
    let Some(dir) = dir else {
        return capture_fresh(None, cfg, wl, scale_label, trace_format);
    };
    let path = trace_path(dir, wl, scale_label, trace_format);
    let lock = capture_lock(&path);
    let _single_flight = lock.lock().unwrap_or_else(|p| p.into_inner());
    if let Ok(f) = fs::File::open(&path) {
        match TraceReader::new(BufReader::new(f)).and_then(|r| r.read_to_end()) {
            Ok(t) => return Ok((t, CaptureSource::Cached)),
            Err(e) => {
                // Corruption-tolerant: a bad on-disk trace names
                // itself, counts as a decode error, and falls
                // through to a fresh capture — never a panic.
                crate::faults::note_trace_decode_error();
                eprintln!("[trace] discarding bad cache {}: {e}", path.display());
            }
        }
    }
    capture_fresh(Some(dir), cfg, wl, scale_label, trace_format)
}

/// The capture half of [`try_load_or_capture_as`]: a cycle-level
/// no-prefetch run, the v1 field strip, and (with a cache dir) the
/// atomic persist. Callers holding a [`capture_lock`] guard stay
/// single-flight through the persist.
fn capture_fresh(
    dir: Option<&Path>,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    scale_label: &str,
    trace_format: u16,
) -> Result<(CapturedTrace, CaptureSource), String> {
    let (result, mut trace) = run_captured(cfg, PrefetchMode::None, wl, scale_label)
        .map_err(|skip| format!("{}: baseline capture cannot run ({skip})", wl.name))?;
    if !result.validated {
        return Err(format!(
            "{}: baseline capture run failed validation",
            wl.name
        ));
    }
    if trace_format < 2 {
        // What goes into a v1 cache must be what comes back out of it:
        // strip the v1-unrepresentable fields up front so fresh-capture
        // and cache-hit runs of a v1 sweep behave identically.
        trace.meta.capture_cycles = 0;
        for r in &mut trace.records {
            if let TraceRecord::Access { dep, .. } = r {
                *dep = 0;
            }
        }
    }
    if let Some(dir) = dir {
        if let Err(e) = persist(dir, wl, scale_label, &trace, trace_format) {
            eprintln!("[trace] could not cache {}: {e}", wl.name);
        }
    }
    Ok((trace, CaptureSource::Captured))
}

/// A captured trace bundled with the identity the sweep-farm result
/// cache keys on: the *content* hash of the record stream under its
/// on-disk encoding (not the workload name — regenerating a workload
/// with different data invalidates every dependent sweep cell), plus
/// the format version that encoding used.
#[derive(Debug)]
pub struct KeyedCapture {
    /// The captured (or cache-loaded) trace.
    pub trace: CapturedTrace,
    /// How the capture was obtained.
    pub source: CaptureSource,
    /// `etpp_trace::content_hash_versioned(records, trace_format)`,
    /// computed once at load so sweep cells don't re-hash millions of
    /// records per cache probe.
    pub content_hash: u64,
    /// The on-disk format version the hash was computed under.
    pub trace_format: u16,
}

/// [`load_or_capture_as`] plus the content-hash identity sweep result
/// caches key cells on (see [`crate::sweeps`]).
///
/// # Panics
/// Panics on a capture failure (see [`try_load_or_capture_keyed`]).
pub fn load_or_capture_keyed(
    dir: Option<&Path>,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    scale_label: &str,
    trace_format: u16,
) -> KeyedCapture {
    try_load_or_capture_keyed(dir, cfg, wl, scale_label, trace_format)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`load_or_capture_keyed`] with error propagation: the sweep driver's
/// capture phase uses this so a broken baseline quarantines the
/// workload (a [`crate::faults::FailureRecord`] in `failures.json`)
/// instead of panicking the worker pool.
///
/// # Errors
/// See [`try_load_or_capture_as`].
pub fn try_load_or_capture_keyed(
    dir: Option<&Path>,
    cfg: &SystemConfig,
    wl: &BuiltWorkload,
    scale_label: &str,
    trace_format: u16,
) -> Result<KeyedCapture, String> {
    let (trace, source) = try_load_or_capture_as(dir, cfg, wl, scale_label, trace_format)?;
    let content_hash = etpp_trace::content_hash_versioned(&trace.records, trace_format);
    Ok(KeyedCapture {
        trace,
        source,
        content_hash,
        trace_format,
    })
}

fn persist(
    dir: &Path,
    wl: &BuiltWorkload,
    scale_label: &str,
    trace: &CapturedTrace,
    trace_format: u16,
) -> std::io::Result<()> {
    // Unique tmp per (process, call): two writers racing on the same
    // capture — shard processes, or threads that missed the in-process
    // single-flight — each write their own tmp and the `rename` makes
    // whichever lands last fully visible; a reader can never observe a
    // torn file.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let path = trace_path(dir, wl, scale_label, trace_format);
    let tmp = path.with_extension(format!(
        "etpt.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> std::io::Result<()> {
        let mut w = TraceWriter::with_version(
            BufWriter::new(fs::File::create(&tmp)?),
            &trace.meta,
            trace_format,
        )?;
        for r in &trace.records {
            w.record(r)?;
        }
        w.finish().map(|_| ())
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, &path)
}

/// The replay front-end parameters the runner uses for every stream.
///
/// An 8-deep issue window tracks the effective memory-level parallelism
/// of the 40-entry-ROB core through its address-independent runs;
/// recorded dependence edges (v2 streams) add the pointer-chase
/// serialisation on top — measured at Small scale this combination
/// dominates both the bare window and wider dependence-aware windows
/// for absolute-cycle agreement (see `tests/replay_fidelity.rs`). On a
/// v1 stream (no edges) `dependence_aware` is a no-op, so this is
/// bit-for-bit the pre-v2 behaviour.
pub fn replay_params() -> ReplayParams {
    ReplayParams {
        window: 8,
        dependence_aware: true,
        ..ReplayParams::default()
    }
}

/// Replays `records` under `mode`'s engine and validates the result,
/// with the front end chosen by [`replay_params`].
///
/// # Errors
/// [`Skip`] for modes that cannot attach to a replayed trace (Software)
/// or have no program for this workload.
pub fn replay_run(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    records: &[TraceRecord],
) -> Result<ReplayRun, Skip> {
    replay_run_with(cfg, mode, wl, records, &replay_params())
}

/// [`replay_run`] under a sweep cell's watchdog token: the replay loop
/// (and the memory system under it) polls `cancel` at host-visit
/// granularity, so an armed-but-quiet token leaves results
/// bit-identical while a fired one aborts with a typed
/// [`etpp_mem::Cancelled`] payload for the isolation layer to
/// classify. `None` is exactly [`replay_run`].
///
/// # Errors
/// [`Skip`], as for [`replay_run`].
pub fn replay_run_watched(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    records: &[TraceRecord],
    cancel: Option<&CancelToken>,
) -> Result<ReplayRun, Skip> {
    replay_exec(cfg, mode, wl, records, &replay_params(), cancel)
}

/// [`replay_run`] under explicit front-end parameters (the fidelity
/// suite pins v1-vs-v2 behaviour by forcing each model).
pub fn replay_run_with(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    records: &[TraceRecord],
    params: &ReplayParams,
) -> Result<ReplayRun, Skip> {
    replay_exec(cfg, mode, wl, records, params, None)
}

fn replay_exec(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    records: &[TraceRecord],
    params: &ReplayParams,
    cancel: Option<&CancelToken>,
) -> Result<ReplayRun, Skip> {
    let mut engine = make_engine(cfg, mode, wl)?;
    let res = etpp_trace::replay_cancellable(
        params,
        cfg.mem,
        wl.image.clone(),
        records,
        engine.as_dyn(),
        cancel,
    );
    let validated = checksum_region(&res.image, wl.check_region) == wl.expected;
    Ok(ReplayRun {
        workload: wl.name,
        mode,
        cycles: res.cycles,
        host_iters: res.host_iters,
        accesses: res.accesses,
        dep_stalls: res.dep_stalls,
        mem: res.mem,
        validated,
    })
}

/// Result of a [`replay_grid`] sweep: the speedup cells plus the
/// per-workload no-prefetch baseline cycles behind every denominator —
/// the number the absolute-cycle agreement report compares against the
/// capture run's recorded cycle count.
#[derive(Debug)]
pub struct ReplayGrid {
    /// Figure 7-style speedup cells in workload-major order.
    pub cells: Vec<SpeedupCell>,
    /// `baseline_cycles[i]` = no-prefetch replay cycles of
    /// `workloads[i]`'s stream.
    pub baseline_cycles: Vec<u64>,
}

/// Replays the (workload × mode) grid across `jobs` worker threads,
/// returning Figure 7-style speedup cells (replay-mode baseline = replay
/// with no prefetcher, so speedups compare like with like). The same
/// [`map_indexed`] job model the cycle-path grids shard on; results
/// come back in workload-major order by construction.
///
/// `captures[i]` must hold the captured trace for `workloads[i]`.
pub fn replay_grid(
    cfg: &SystemConfig,
    workloads: &[BuiltWorkload],
    captures: &[CapturedTrace],
    modes: &[PrefetchMode],
    jobs: usize,
) -> ReplayGrid {
    assert_eq!(workloads.len(), captures.len());

    // Baselines first (one replay per workload, in parallel).
    let baseline_cycles: Vec<u64> = map_indexed(jobs, workloads.len(), |i| {
        let r = replay_run(cfg, PrefetchMode::None, &workloads[i], &captures[i].records)
            .expect("baseline replay always runs");
        assert!(
            r.validated,
            "{}: baseline replay corrupted image",
            r.workload
        );
        r.cycles
    });

    let cells = map_indexed(jobs, workloads.len() * modes.len(), |k| {
        let i = k / modes.len();
        let mode = modes[k % modes.len()];
        let w = &workloads[i];
        match replay_run(cfg, mode, w, &captures[i].records) {
            Ok(r) => SpeedupCell {
                workload: w.name,
                mode,
                speedup: Some(baseline_cycles[i] as f64 / r.cycles.max(1) as f64),
                result: None,
            },
            Err(_) => SpeedupCell {
                workload: w.name,
                mode,
                speedup: None,
                result: None,
            },
        }
    });
    ReplayGrid {
        cells,
        baseline_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_workloads::{Scale, Workload};

    #[test]
    fn capture_then_replay_validates_and_prefetch_helps() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let (trace, src) = load_or_capture(None, &cfg, &wl, "tiny");
        assert_eq!(src, CaptureSource::Captured);
        assert!(trace.access_count() > 0);

        let base = replay_run(&cfg, PrefetchMode::None, &wl, &trace.records).unwrap();
        assert!(base.validated, "replay must reproduce the reference output");
        let manual = replay_run(&cfg, PrefetchMode::Manual, &wl, &trace.records).unwrap();
        assert!(manual.validated);
        assert!(
            manual.cycles < base.cycles,
            "manual prefetching must speed replay up: {} vs {}",
            manual.cycles,
            base.cycles
        );
    }

    #[test]
    fn software_mode_is_skipped_in_replay() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
        assert!(replay_run(&cfg, PrefetchMode::Software, &wl, &trace.records).is_err());
    }

    #[test]
    fn disk_cache_round_trips_and_hits() {
        let wl = etpp_workloads::randacc::RandAcc.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let dir = std::env::temp_dir().join(format!(
            "etpp-trace-test-{}-{:016x}",
            std::process::id(),
            workload_trace_key(&wl, "tiny", etpp_trace::FORMAT_VERSION)
        ));
        let (first, src1) = load_or_capture(Some(&dir), &cfg, &wl, "tiny");
        assert_eq!(src1, CaptureSource::Captured);
        assert!(
            first.meta.capture_cycles > 0,
            "v2 captures must record the capture run's cycle count"
        );
        let (second, src2) = load_or_capture(Some(&dir), &cfg, &wl, "tiny");
        assert_eq!(src2, CaptureSource::Cached);
        assert_eq!(first.records, second.records);
        assert_eq!(first.meta, second.meta);
        assert_eq!(
            etpp_trace::content_hash(&first.records),
            etpp_trace::content_hash(&second.records)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_cache_is_keyed_separately_and_carries_no_edges() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let dir = std::env::temp_dir().join(format!(
            "etpp-trace-v1-test-{}-{:016x}",
            std::process::id(),
            workload_trace_key(&wl, "tiny", 1)
        ));
        assert_ne!(
            trace_path(&dir, &wl, "tiny", 1),
            trace_path(&dir, &wl, "tiny", 2),
            "v1 and v2 captures must not collide in the cache"
        );
        let (v1, _) = load_or_capture_as(Some(&dir), &cfg, &wl, "tiny", 1);
        let (v1_cached, src) = load_or_capture_as(Some(&dir), &cfg, &wl, "tiny", 1);
        assert_eq!(src, CaptureSource::Cached);
        assert_eq!(v1.records, v1_cached.records);
        assert_eq!(v1.meta.capture_cycles, 0);
        assert!(
            v1.records
                .iter()
                .all(|r| !matches!(r, TraceRecord::Access { dep, .. } if *dep > 0)),
            "a v1 capture must carry no dependence edges"
        );
        let (v2, _) = load_or_capture(None, &cfg, &wl, "tiny");
        assert!(
            v2.records
                .iter()
                .any(|r| matches!(r, TraceRecord::Access { dep, .. } if *dep > 0)),
            "IntSort's scatter phase must record dependence edges at v2"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_captures_are_single_flight_and_never_tear() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let dir = std::env::temp_dir().join(format!(
            "etpp-trace-singleflight-{}-{:016x}",
            std::process::id(),
            workload_trace_key(&wl, "tiny", etpp_trace::FORMAT_VERSION)
        ));
        let _ = fs::remove_dir_all(&dir);
        let sources: Vec<CaptureSource> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (dir, cfg, wl) = (&dir, &cfg, &wl);
                    s.spawn(move || load_or_capture(Some(dir), cfg, wl, "tiny").1)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let captured = sources
            .iter()
            .filter(|s| **s == CaptureSource::Captured)
            .count();
        assert_eq!(
            captured, 1,
            "exactly one thread captures; the rest hit the cache: {sources:?}"
        );
        // Nothing torn, nothing leaked: one final trace, zero tmp files.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1, "no tmp leftovers: {names:?}");
        assert!(names[0].ends_with(".etpt"), "{names:?}");
        let (reread, src) = load_or_capture(Some(&dir), &cfg, &wl, "tiny");
        assert_eq!(src, CaptureSource::Cached);
        assert!(reread.access_count() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capture_failure_propagates_as_error_not_panic() {
        let mut wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        // A wrong reference checksum makes the baseline capture fail
        // validation — the classic "trace from a wrong run" hazard.
        wl.expected ^= 0xdead_beef;
        let err = try_load_or_capture_as(None, &SystemConfig::paper(), &wl, "tiny", 2)
            .expect_err("corrupted expectation must fail the capture");
        assert!(err.contains("failed validation"), "{err}");
        assert!(err.contains("IntSort"), "{err}");
        let keyed = try_load_or_capture_keyed(None, &SystemConfig::paper(), &wl, "tiny", 2);
        assert!(keyed.is_err());
    }

    #[test]
    fn watched_replay_is_bit_identical_and_aborts_typed_when_fired() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
        let plain = replay_run(&cfg, PrefetchMode::Manual, &wl, &trace.records).unwrap();
        let token = CancelToken::with_budget(std::time::Duration::from_secs(3600));
        let watched = replay_run_watched(
            &cfg,
            PrefetchMode::Manual,
            &wl,
            &trace.records,
            Some(&token),
        )
        .unwrap();
        assert_eq!(
            (plain.cycles, plain.host_iters, plain.dep_stalls),
            (watched.cycles, watched.host_iters, watched.dep_stalls),
            "an armed-but-quiet watchdog must not perturb replay"
        );
        let fired = CancelToken::new();
        fired.cancel();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            replay_run_watched(
                &cfg,
                PrefetchMode::Manual,
                &wl,
                &trace.records,
                Some(&fired),
            )
        }))
        .unwrap_err();
        assert!(
            err.downcast_ref::<etpp_mem::Cancelled>().is_some(),
            "a fired token aborts replay with a typed payload"
        );
    }

    #[test]
    fn grid_shards_across_workers() {
        let cfg = SystemConfig::paper();
        let workloads: Vec<BuiltWorkload> = vec![
            etpp_workloads::intsort::IntSort.build(Scale::Tiny),
            etpp_workloads::randacc::RandAcc.build(Scale::Tiny),
        ];
        let captures: Vec<CapturedTrace> = workloads
            .iter()
            .map(|w| load_or_capture(None, &cfg, w, "tiny").0)
            .collect();
        let grid = replay_grid(
            &cfg,
            &workloads,
            &captures,
            &[PrefetchMode::Stride, PrefetchMode::Manual],
            4,
        );
        assert_eq!(grid.baseline_cycles.len(), 2);
        assert!(grid.baseline_cycles.iter().all(|&c| c > 0));
        let cells = grid.cells;
        assert_eq!(cells.len(), 4);
        let manual_intsort = cells
            .iter()
            .find(|c| c.workload == "IntSort" && c.mode == PrefetchMode::Manual)
            .and_then(|c| c.speedup)
            .expect("cell present");
        assert!(
            manual_intsort > 1.0,
            "manual should beat baseline in replay: {manual_intsort:.2}"
        );
    }
}
