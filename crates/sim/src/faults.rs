//! Fail-soft machinery for the sweep farm: panic isolation with
//! bounded retry, deterministic fault injection, quarantine records,
//! and the crash-safe progress journal behind `repro --sweep --resume`.
//!
//! The design principle (borrowed from runtime-reconfigurable systems:
//! degrade per cell, never per fleet) is that **no single bad input —
//! a panicking cell, a torn cache write, a corrupt trace — may abort a
//! grid**. Each job runs inside [`run_isolated`]: a panic is caught,
//! retried up to [`RetryPolicy::max_attempts`] times with deterministic
//! backoff, and finally *quarantined* as a [`JobFailure`] while the
//! rest of the grid completes. Quarantines surface three ways: a
//! `FAILED` row in the merged tables, a [`FailureRecord`] in the
//! per-run `failures.json`, and the `sweep.quarantined` counter.
//!
//! Faults themselves are injectable on purpose: a [`FaultPlan`] is a
//! pure function of job index and attempt number (no wall clock, no
//! RNG state) so `tests/fault_injection.rs` can assert bit-exact
//! convergence between a faulted-and-recovered run and a clean one.
//!
//! The [`Journal`] is the checkpoint–resume half: an append-only,
//! fsync-per-entry line file where every line carries its own FNV-1a
//! integrity hash (`payload|fnv16hex`), so a crash mid-write leaves at
//! worst one torn tail line that resume detects and truncates.

use crate::watchdog::{Cancelled, LivelockAbort, BUDGET_ESCALATION};
use etpp_mem::cancel::{CancelReason, CancelToken};
use etpp_trace::format::{fnv1a, FNV_OFFSET};
use std::any::Any;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Seek, SeekFrom, Write as _};
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Retry policy + panic isolation
// ---------------------------------------------------------------------------

/// How [`run_isolated`] treats a panicking job.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts before quarantining (≥ 1; clamped up).
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `k` sleeps `k × backoff`
    /// (deterministic — no jitter, so reruns behave identically).
    pub backoff_ms: u64,
    /// `true` restores abort-on-first-failure: panics propagate
    /// uncaught (the CI-gate mode behind `repro --strict`).
    pub strict: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 10,
            strict: false,
        }
    }
}

/// Classified cause of a quarantined job, derived from the final panic
/// payload. The class picks the recovery path (e.g. a `Timeout` gets
/// exactly one escalated-budget retry) and the telemetry counter it
/// lands in (`sweep.quarantined` / `sweep.timeout` / `sweep.cancelled`
/// / `driver.livelock_aborts`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureClass {
    /// An ordinary panic (the PR-8 failure mode; also the default when
    /// parsing records written before classes existed).
    #[default]
    Panic,
    /// The cell's wall-clock budget expired
    /// ([`Cancelled`] with [`CancelReason::Deadline`]).
    Timeout,
    /// The cell was cancelled on request
    /// ([`Cancelled`] with [`CancelReason::Requested`]).
    Cancelled,
    /// The driver's livelock detector fired ([`LivelockAbort`]).
    Livelock,
}

impl FailureClass {
    /// Stable lower-case key, used in `failures.json`, shard files and
    /// the journal.
    pub fn key(self) -> &'static str {
        match self {
            FailureClass::Panic => "panic",
            FailureClass::Timeout => "timeout",
            FailureClass::Cancelled => "cancelled",
            FailureClass::Livelock => "livelock",
        }
    }

    /// Inverse of [`FailureClass::key`]; unknown keys (and the absent
    /// field of pre-class records) parse as [`FailureClass::Panic`].
    pub fn from_key(key: &str) -> FailureClass {
        match key {
            "timeout" => FailureClass::Timeout,
            "cancelled" => FailureClass::Cancelled,
            "livelock" => FailureClass::Livelock,
            _ => FailureClass::Panic,
        }
    }
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// A job that exhausted its retry budget: the quarantine row of the
/// worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index the caller passed to [`run_isolated`] (a flat job index
    /// for sweep cells).
    pub index: usize,
    /// Attempts consumed (== the policy's `max_attempts`, or 2 for
    /// timeout/livelock/cancellation failures).
    pub attempts: u32,
    /// Classified cause of the final failed attempt.
    pub class: FailureClass,
    /// The final panic payload, stringified.
    pub error: String,
}

/// A panic payload that must NOT be isolated: [`run_isolated`] rethrows
/// it instead of retrying. Used for process-level events (the
/// fault-injection `kill=` directive simulating a crash/SIGTERM) that
/// per-cell recovery must not swallow.
#[derive(Debug)]
pub struct FatalFault(
    /// Human-readable reason, surfaced by whoever finally catches it.
    pub String,
);

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = payload.downcast_ref::<Cancelled>() {
        c.to_string()
    } else if let Some(l) = payload.downcast_ref::<LivelockAbort>() {
        l.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classifies a caught panic payload: the watchdog's typed payloads map
/// to their failure class; everything else is a plain panic.
pub fn classify_panic(payload: &(dyn Any + Send)) -> FailureClass {
    if let Some(c) = payload.downcast_ref::<Cancelled>() {
        match c.reason {
            CancelReason::Deadline => FailureClass::Timeout,
            CancelReason::Requested => FailureClass::Cancelled,
        }
    } else if payload.is::<LivelockAbort>() {
        FailureClass::Livelock
    } else {
        FailureClass::Panic
    }
}

/// Runs `f` with panic isolation under `policy`: catches panics,
/// retries with deterministic backoff (bumping `retries` once per
/// retry), and quarantines into a [`JobFailure`] after the budget is
/// spent. `f` receives the zero-based attempt number so injected
/// faults can be transient (fail attempts `< k`) or permanent.
///
/// A [`FatalFault`] payload is rethrown immediately — it models the
/// process dying, which retry must not mask. In strict mode `f` runs
/// bare and any panic propagates.
///
/// # Errors
/// The [`JobFailure`] carrying the last panic message once all
/// attempts are exhausted.
pub fn run_isolated<R>(
    policy: &RetryPolicy,
    index: usize,
    retries: &AtomicU64,
    f: impl Fn(u32) -> R,
) -> Result<R, JobFailure> {
    run_isolated_budgeted(policy, index, retries, None, |attempt, _| f(attempt))
}

/// [`run_isolated`] with an optional per-attempt wall-clock budget. A
/// `Some(budget)` arms each attempt with a fresh [`CancelToken`] whose
/// deadline escalates by [`BUDGET_ESCALATION`]× per attempt, handed to
/// `f` so it can thread the token into the simulation. A zero budget
/// means "explicitly disarmed" (`f` sees no token).
///
/// Failure classes pick the retry schedule: a plain panic keeps the
/// policy's full `max_attempts`, while a timeout, livelock, or
/// cancellation gets exactly one retry — at the escalated budget for
/// timeouts — before quarantine (a hung cell rarely heals, and
/// re-running it is the most expensive retry there is).
///
/// # Errors
/// The [`JobFailure`] (carrying the classified last failure) once the
/// schedule is exhausted.
pub fn run_isolated_budgeted<R>(
    policy: &RetryPolicy,
    index: usize,
    retries: &AtomicU64,
    budget: Option<Duration>,
    f: impl Fn(u32, Option<&CancelToken>) -> R,
) -> Result<R, JobFailure> {
    let token_for = |attempt: u32| {
        budget
            .filter(|b| !b.is_zero())
            .map(|b| CancelToken::with_budget(b * BUDGET_ESCALATION.pow(attempt)))
    };
    if policy.strict {
        let token = token_for(0);
        return Ok(f(0, token.as_ref()));
    }
    let max = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        if attempt > 0 {
            retries.fetch_add(1, Ordering::Relaxed);
            if policy.backoff_ms > 0 {
                std::thread::sleep(Duration::from_millis(
                    policy.backoff_ms * u64::from(attempt),
                ));
            }
        }
        let token = token_for(attempt);
        match catch_unwind(AssertUnwindSafe(|| f(attempt, token.as_ref()))) {
            Ok(r) => return Ok(r),
            Err(payload) => {
                if payload.is::<FatalFault>() {
                    resume_unwind(payload);
                }
                let class = classify_panic(payload.as_ref());
                attempt += 1;
                let schedule = if class == FailureClass::Panic {
                    max
                } else {
                    max.min(2)
                };
                if attempt >= schedule {
                    return Err(JobFailure {
                        index,
                        attempts: attempt,
                        class,
                        error: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault plans
// ---------------------------------------------------------------------------

/// A deterministic set of faults to inject into a sweep run — a pure
/// function of job index / attempt number, never of wall clock or RNG,
/// so a faulted run is exactly reproducible.
///
/// Textual syntax (`repro --fault-inject`), `;`-separated directives:
///
/// * `panic=J@K` — cell with flat job index `J` panics on its first
///   `K` attempts (recovers on attempt `K` if the retry budget allows,
///   else is quarantined);
/// * `bpanic=W@K` — the *baseline* of workload index `W` panics the
///   same way;
/// * `tear=J@B` — the result-cache write of job `J` is torn
///   (truncated) at `B` bytes, leaving a corrupt entry for the next
///   reader to evict;
/// * `trace=W@OFF` — one byte of workload `W`'s trace file is flipped
///   (XOR `0x55`) at offset `OFF mod len` before the sweep loads it;
/// * `hang=J@P` — cell `J` spins until its watchdog token cancels it
///   (polling every `P` ms), on *every* attempt — a hung config does
///   not heal on retry, so the cell times out, retries once at the
///   escalated budget, times out again, and is quarantined;
/// * `slow=J@D` — cell `J` sleeps a deterministic extra `D` ms before
///   executing (every attempt); it still finishes inside its budget,
///   so nothing is quarantined and the rendered tables are unchanged;
/// * `kill=C` — the process "dies" (an uncatchable [`FatalFault`])
///   after `C` cells have completed, for crash/resume testing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    panic_cells: BTreeMap<usize, u32>,
    baseline_panics: BTreeMap<usize, u32>,
    tear_writes: BTreeMap<usize, u64>,
    trace_flips: Vec<(usize, u64)>,
    hangs: BTreeMap<usize, u64>,
    slows: BTreeMap<usize, u64>,
    kill_after: Option<u64>,
}

impl FaultPlan {
    /// No faults at all (same as `FaultPlan::default()`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Panics (plain payload — retryable) if the plan says cell `job`
    /// fails on this `attempt`.
    pub fn maybe_panic(&self, job: usize, attempt: u32) {
        if let Some(&k) = self.panic_cells.get(&job) {
            if attempt < k {
                panic!("fault-injection: cell {job} panicked (attempt {attempt} of {k} injected)");
            }
        }
    }

    /// Panics if the plan says workload `wi`'s baseline fails on this
    /// `attempt`.
    pub fn maybe_panic_baseline(&self, wi: usize, attempt: u32) {
        if let Some(&k) = self.baseline_panics.get(&wi) {
            if attempt < k {
                panic!(
                    "fault-injection: baseline {wi} panicked (attempt {attempt} of {k} injected)"
                );
            }
        }
    }

    /// Byte length to tear job `job`'s cache write at, if any.
    pub fn tear_at(&self, job: usize) -> Option<u64> {
        self.tear_writes.get(&job).copied()
    }

    /// The `(workload index, byte offset)` trace flips to apply.
    pub fn trace_flips(&self) -> &[(usize, u64)] {
        &self.trace_flips
    }

    /// Spins until `token` fires if the plan hangs cell `job` — the
    /// deterministic stand-in for a cell that never finishes. Every
    /// attempt hangs (a livelocked config does not heal on retry), so
    /// the watchdog path runs end to end: timeout, escalated retry,
    /// quarantine. Panics with a plain payload if no token is armed —
    /// an unwatched hang would stall the worker forever, which is
    /// exactly the regression this directive exists to catch.
    pub fn maybe_hang(&self, job: usize, token: Option<&CancelToken>) {
        if let Some(&poll_ms) = self.hangs.get(&job) {
            let Some(token) = token else {
                panic!("fault-injection: cell {job} hung with no watchdog armed");
            };
            loop {
                token.check(0);
                std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
            }
        }
    }

    /// Sleeps the plan's deterministic delay for cell `job`, if any —
    /// a slow-but-finishing cell that must *not* be quarantined.
    pub fn maybe_slow(&self, job: usize) {
        if let Some(&delay_ms) = self.slows.get(&job) {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
    }

    /// Simulates a crash — raises a [`FatalFault`] — once `completed`
    /// cells have finished. Call with a running completion count.
    pub fn maybe_kill(&self, completed: u64) {
        if self.kill_after == Some(completed) {
            panic_any(FatalFault(format!(
                "fault-injection: kill after {completed} completed cells"
            )));
        }
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for item in s.split(';').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, val) = item
                .split_once('=')
                .ok_or_else(|| format!("fault directive without '=': {item:?}"))?;
            let pair = |v: &str| -> Result<(u64, u64), String> {
                let (a, b) = v
                    .split_once('@')
                    .ok_or_else(|| format!("{key}= takes A@B, got {v:?}"))?;
                Ok((
                    a.parse().map_err(|_| format!("bad number in {item:?}"))?,
                    b.parse().map_err(|_| format!("bad number in {item:?}"))?,
                ))
            };
            match key {
                "panic" => {
                    let (j, k) = pair(val)?;
                    plan.panic_cells.insert(j as usize, k as u32);
                }
                "bpanic" => {
                    let (w, k) = pair(val)?;
                    plan.baseline_panics.insert(w as usize, k as u32);
                }
                "tear" => {
                    let (j, b) = pair(val)?;
                    plan.tear_writes.insert(j as usize, b);
                }
                "trace" => {
                    let (w, off) = pair(val)?;
                    plan.trace_flips.push((w as usize, off));
                }
                "hang" => {
                    let (j, poll_ms) = pair(val)?;
                    plan.hangs.insert(j as usize, poll_ms);
                }
                "slow" => {
                    let (j, delay_ms) = pair(val)?;
                    plan.slows.insert(j as usize, delay_ms);
                }
                "kill" => {
                    plan.kill_after =
                        Some(val.parse().map_err(|_| format!("bad number in {item:?}"))?);
                }
                other => return Err(format!("unknown fault directive {other:?} in {item:?}")),
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut items = Vec::new();
        for (j, k) in &self.panic_cells {
            items.push(format!("panic={j}@{k}"));
        }
        for (w, k) in &self.baseline_panics {
            items.push(format!("bpanic={w}@{k}"));
        }
        for (j, b) in &self.tear_writes {
            items.push(format!("tear={j}@{b}"));
        }
        for (w, off) in &self.trace_flips {
            items.push(format!("trace={w}@{off}"));
        }
        for (j, poll_ms) in &self.hangs {
            items.push(format!("hang={j}@{poll_ms}"));
        }
        for (j, delay_ms) in &self.slows {
            items.push(format!("slow={j}@{delay_ms}"));
        }
        if let Some(c) = self.kill_after {
            items.push(format!("kill={c}"));
        }
        write!(f, "{}", items.join(";"))
    }
}

/// Applies a plan's `trace=` flips to on-disk trace files
/// (`trace_paths[wi]` being workload `wi`'s file). XORs one byte with
/// `0x55` at `offset mod file length`; missing paths are skipped (the
/// workload was never captured to disk). Returns the workload indices
/// actually corrupted.
///
/// # Errors
/// I/O failure reading or rewriting a trace file.
pub fn apply_trace_flips(plan: &FaultPlan, trace_paths: &[PathBuf]) -> io::Result<Vec<usize>> {
    let mut touched = Vec::new();
    for &(wi, off) in plan.trace_flips() {
        let Some(path) = trace_paths.get(wi) else {
            continue;
        };
        if !path.exists() {
            continue;
        }
        let mut bytes = fs::read(path)?;
        if bytes.is_empty() {
            continue;
        }
        let i = (off as usize) % bytes.len();
        bytes[i] ^= 0x55;
        fs::write(path, bytes)?;
        if !touched.contains(&wi) {
            touched.push(wi);
        }
    }
    Ok(touched)
}

// ---------------------------------------------------------------------------
// Quarantine records (failures.json)
// ---------------------------------------------------------------------------

/// One quarantined job, as written to the per-run `failures.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Flat job index; `None` for a workload-baseline failure.
    pub index: Option<usize>,
    /// Benchmark name.
    pub workload: String,
    /// Mode key, or `"baseline"` for a baseline failure.
    pub mode: String,
    /// Canonical settings string (`"-"` for baselines).
    pub settings: String,
    /// The cell's [`crate::sweeps::cell_config_hash`].
    pub config_hash: u64,
    /// Classified cause (panic / timeout / cancelled / livelock).
    pub class: FailureClass,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// Final panic message.
    pub error: String,
}

/// Renders failure records as a JSON array, one record per line.
pub fn failures_json(records: &[FailureRecord]) -> String {
    let mut j = String::from("[\n");
    for (i, f) in records.iter().enumerate() {
        j.push_str(&format!(
            "  {{\"index\": {}, \"workload\": \"{}\", \"mode\": \"{}\", \"settings\": \"{}\", \
             \"config_hash\": \"{:016x}\", \"class\": \"{}\", \"attempts\": {}, \
             \"error\": \"{}\"}}{}\n",
            f.index.map_or("null".to_string(), |i| i.to_string()),
            f.workload,
            f.mode,
            f.settings,
            f.config_hash,
            f.class.key(),
            f.attempts,
            etpp_telemetry::json_escape(&f.error),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    j.push_str("]\n");
    j
}

/// Writes `failures.json` atomically (tmp + rename). An empty record
/// list still writes `[]` so CI artifact uploads are unconditional.
///
/// # Errors
/// I/O failure creating the directory or writing the file.
pub fn write_failures(path: &Path, records: &[FailureRecord]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    fs::write(&tmp, failures_json(records))?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Progress journal (checkpoint–resume)
// ---------------------------------------------------------------------------

fn line_hash(payload: &str) -> u64 {
    fnv1a(payload.as_bytes(), FNV_OFFSET)
}

/// Validates one journal line (`payload|fnv16hex\n`), returning the
/// payload. A line missing its newline (torn write) or failing its
/// hash is invalid.
fn parse_journal_line(line: &str) -> Option<&str> {
    let body = line.strip_suffix('\n')?;
    let (payload, hash) = body.rsplit_once('|')?;
    (u64::from_str_radix(hash, 16).ok()? == line_hash(payload)).then_some(payload)
}

/// The append-only, fsync'd progress journal a sweep shard writes so
/// `--resume` can skip completed cells after a crash.
///
/// Line format: `payload|fnv1a(payload) as 016x hex`, newline
/// terminated, fsync'd per append. Line 0 is a header describing the
/// sweep identity (spec, scale, shard, trace hashes); [`Journal::resume`]
/// discards the whole file if the header does not match — a journal
/// from a different sweep must never donate progress. A torn tail
/// (crash mid-write) is detected by the missing newline / bad hash and
/// truncated away; everything before it is trusted.
pub struct Journal {
    file: fs::File,
}

impl Journal {
    /// Starts a fresh journal at `path` (truncating any previous one)
    /// with `header` as line 0.
    ///
    /// # Errors
    /// I/O failure creating the directory or file.
    pub fn create(path: &Path, header: &str) -> io::Result<Journal> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let file = fs::File::create(path)?;
        let mut j = Journal { file };
        j.append(header)?;
        Ok(j)
    }

    /// Opens `path` for resumption: validates the header and every
    /// entry line, truncates any torn tail, and returns the journal
    /// (positioned for appends) plus the surviving entry payloads. A
    /// missing file, or one whose header differs from `header`, starts
    /// fresh with zero entries.
    ///
    /// # Errors
    /// I/O failure opening or truncating the file.
    pub fn resume(path: &Path, header: &str) -> io::Result<(Journal, Vec<String>)> {
        let existing = fs::read_to_string(path).unwrap_or_default();
        let mut valid_len = 0usize;
        let mut entries = Vec::new();
        let mut header_ok = false;
        for line in existing.split_inclusive('\n') {
            let Some(payload) = parse_journal_line(line) else {
                break;
            };
            if !header_ok {
                if payload != header {
                    break;
                }
                header_ok = true;
            } else {
                entries.push(payload.to_string());
            }
            valid_len += line.len();
        }
        if !header_ok {
            return Ok((Journal::create(path, header)?, Vec::new()));
        }
        let mut file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { file }, entries))
    }

    /// Appends one entry (must not contain a newline) and fsyncs.
    ///
    /// # Errors
    /// I/O failure writing or syncing.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        debug_assert!(!payload.contains('\n'), "journal entries are single lines");
        self.file
            .write_all(format!("{payload}|{:016x}\n", line_hash(payload)).as_bytes())?;
        self.file.sync_data()
    }
}

// ---------------------------------------------------------------------------
// Trace decode-error accounting
// ---------------------------------------------------------------------------

static TRACE_DECODE_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Records one corrupt/undecodable trace encounter (wired into the
/// shard registry as `trace.decode_errors`).
pub fn note_trace_decode_error() {
    TRACE_DECODE_ERRORS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide count of corrupt/undecodable trace encounters.
pub fn trace_decode_errors() -> u64 {
    TRACE_DECODE_ERRORS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_round_trips_through_text() {
        let text = "panic=3@2;bpanic=0@1;tear=7@10;trace=1@99;hang=4@1;slow=6@25;kill=5";
        let plan: FaultPlan = text.parse().unwrap();
        assert_eq!(plan.to_string(), text);
        assert_eq!(plan.tear_at(7), Some(10));
        assert_eq!(plan.tear_at(6), None);
        assert_eq!(plan.trace_flips(), &[(1, 99)]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::none());
        assert!("panic=3".parse::<FaultPlan>().is_err());
        assert!("warp=1@2".parse::<FaultPlan>().is_err());
        assert!("kill=x".parse::<FaultPlan>().is_err());
        assert!("hang=3".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn hang_spins_until_its_token_fires_and_slow_merely_delays() {
        let plan: FaultPlan = "hang=2@1;slow=3@5".parse().unwrap();
        // A hang with no armed watchdog is a plain (retryable) panic.
        let bare = catch_unwind(AssertUnwindSafe(|| plan.maybe_hang(2, None))).unwrap_err();
        assert_eq!(classify_panic(bare.as_ref()), FailureClass::Panic);
        // With a deadline token the spin exits as a typed timeout.
        let token = CancelToken::with_budget(Duration::from_millis(20));
        let err = catch_unwind(AssertUnwindSafe(|| plan.maybe_hang(2, Some(&token)))).unwrap_err();
        assert_eq!(classify_panic(err.as_ref()), FailureClass::Timeout);
        // Other cells, and slow cells, pass straight through.
        plan.maybe_hang(0, None);
        plan.maybe_slow(3);
        plan.maybe_slow(0);
    }

    #[test]
    fn budgeted_isolation_classifies_timeouts_and_retries_once_escalated() {
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        let budgets = std::sync::Mutex::new(Vec::new());
        let r: Result<(), _> = run_isolated_budgeted(
            &policy,
            11,
            &retries,
            Some(Duration::from_millis(10)),
            |attempt, token| {
                let token = token.expect("budget arms a token");
                budgets.lock().unwrap().push(attempt);
                // Simulate an overrun: wait out the deadline, then poll.
                std::thread::sleep(Duration::from_millis(25 * u64::from(attempt) + 15));
                token.check(123);
                panic!("deadline should have fired first");
            },
        );
        let fail = r.unwrap_err();
        assert_eq!(fail.class, FailureClass::Timeout);
        assert_eq!(
            fail.attempts, 2,
            "a timeout gets exactly one escalated retry, not the full panic budget"
        );
        assert_eq!(*budgets.lock().unwrap(), vec![0, 1]);
        assert!(fail.error.contains("budget exhausted"), "{}", fail.error);
        assert_eq!(retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn budgeted_isolation_keeps_full_schedule_for_plain_panics() {
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        let r: Result<(), _> = run_isolated_budgeted(
            &policy,
            4,
            &retries,
            Some(Duration::from_secs(3600)),
            |_, token| {
                assert!(!token.unwrap().is_cancelled());
                panic!("permanent");
            },
        );
        let fail = r.unwrap_err();
        assert_eq!(fail.class, FailureClass::Panic);
        assert_eq!(fail.attempts, 3);
        // Zero budget = explicitly disarmed: no token reaches f.
        let ok = run_isolated_budgeted(&policy, 4, &retries, Some(Duration::ZERO), |_, token| {
            assert!(token.is_none());
            7u32
        });
        assert_eq!(ok, Ok(7));
    }

    #[test]
    fn injected_panics_are_transient_or_permanent_by_attempt() {
        let plan: FaultPlan = "panic=4@2".parse().unwrap();
        assert!(catch_unwind(AssertUnwindSafe(|| plan.maybe_panic(4, 0))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| plan.maybe_panic(4, 1))).is_err());
        plan.maybe_panic(4, 2); // recovers
        plan.maybe_panic(3, 0); // other cells untouched
    }

    #[test]
    fn run_isolated_retries_then_recovers() {
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        let r = run_isolated(&policy, 9, &retries, |attempt| {
            assert!(attempt < 3);
            if attempt < 2 {
                panic!("transient");
            }
            attempt
        });
        assert_eq!(r, Ok(2));
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_isolated_quarantines_after_budget() {
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        let r: Result<(), _> = run_isolated(&policy, 7, &retries, |_| panic!("permanent"));
        let fail = r.unwrap_err();
        assert_eq!(fail.index, 7);
        assert_eq!(fail.attempts, 3);
        assert!(fail.error.contains("permanent"), "{}", fail.error);
    }

    #[test]
    fn run_isolated_rethrows_fatal_faults() {
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = run_isolated(&policy, 0, &retries, |_| -> () {
                panic_any(FatalFault("simulated crash".into()))
            });
        }));
        let payload = caught.unwrap_err();
        assert!(payload.is::<FatalFault>(), "FatalFault must not be retried");
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn journal_resumes_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("etpp-journal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("j.jsonl");
        {
            let mut j = Journal::create(&path, "HDR").unwrap();
            j.append("one").unwrap();
            j.append("two").unwrap();
        }
        // Simulate a crash mid-append: a tail without newline/hash.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"thr");
        fs::write(&path, &bytes).unwrap();

        let (mut j, entries) = Journal::resume(&path, "HDR").unwrap();
        assert_eq!(entries, vec!["one".to_string(), "two".to_string()]);
        j.append("three").unwrap();
        drop(j);
        let (_, entries) = Journal::resume(&path, "HDR").unwrap();
        assert_eq!(entries, vec!["one", "two", "three"]);

        // A different header discards everything.
        let (_, entries) = Journal::resume(&path, "OTHER").unwrap();
        assert!(entries.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_json_renders_null_index_and_escapes() {
        let recs = vec![
            FailureRecord {
                index: None,
                workload: "IntSort".into(),
                mode: "baseline".into(),
                settings: "-".into(),
                config_hash: 0xdead,
                class: FailureClass::Panic,
                attempts: 3,
                error: "panic \"quoted\"".into(),
            },
            FailureRecord {
                index: Some(5),
                workload: "HJ-8".into(),
                mode: "manual".into(),
                settings: "obs_queue=10".into(),
                config_hash: 1,
                class: FailureClass::Timeout,
                attempts: 2,
                error: "boom".into(),
            },
        ];
        let j = failures_json(&recs);
        assert!(j.contains("\"index\": null"), "{j}");
        assert!(j.contains("\"index\": 5"), "{j}");
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("000000000000dead"), "{j}");
        assert!(j.contains("\"class\": \"panic\""), "{j}");
        assert!(j.contains("\"class\": \"timeout\""), "{j}");
    }

    #[test]
    fn failure_class_keys_round_trip_and_default_old_records_to_panic() {
        for class in [
            FailureClass::Panic,
            FailureClass::Timeout,
            FailureClass::Cancelled,
            FailureClass::Livelock,
        ] {
            assert_eq!(FailureClass::from_key(class.key()), class);
        }
        assert_eq!(FailureClass::from_key(""), FailureClass::Panic);
        assert_eq!(FailureClass::from_key("weird"), FailureClass::Panic);
    }
}
