//! Full-system simulation: core + caches + prefetch engine + DRAM.
//!
//! This crate wires the out-of-order core ([`etpp_cpu`]), the memory
//! hierarchy ([`etpp_mem`]), and any prefetch engine — the programmable
//! prefetcher ([`etpp_core`]), the stride/GHB baselines
//! ([`etpp_baselines`]), or none — into a single runnable [`System`], and
//! provides the experiment drivers that regenerate every figure and table
//! of the paper's evaluation (see [`experiments`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod adaptive;
pub mod config;
pub mod experiments;
pub mod faults;
pub mod replay;
pub mod report;
pub mod sweeps;
pub mod system;
pub mod telemetry;
pub mod watchdog;

pub use adaptive::{AdaptiveChoice, AdaptiveEngine, AdaptiveParams, AdaptiveSummary};
pub use config::{PrefetchMode, SystemConfig};
pub use etpp_cpu::HorizonSource;
pub use faults::{FailureRecord, FaultPlan, JobFailure, RetryPolicy};
pub use replay::{
    load_or_capture, load_or_capture_keyed, replay_grid, replay_run, replay_run_watched,
    try_load_or_capture_keyed, KeyedCapture, ReplayRun,
};
pub use sweeps::{
    composed_grid, merge_shards, parse_shard, render_merged, run_sweep, MergedSweep, ShardRun,
    SweepOptions, SweepSpec,
};
pub use system::{
    make_engine, run, run_captured, run_telemetry, run_watched, Engine, RunResult, Skip,
    VisitCounts,
};
pub use telemetry::{TelemetryReport, TelemetrySpec};
pub use watchdog::{CancelToken, Cancelled, LivelockAbort, LivelockDetector, Watchdog};
