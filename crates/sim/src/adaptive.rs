//! Phase-adaptive meta-engine: runtime prefetcher reconfiguration.
//!
//! Prat et al.'s POWER7 work showed that no single fixed prefetcher
//! configuration wins across application phases, and that a runtime can
//! pick the right one per phase from hardware counters. This engine
//! brings that idea to the zoo: it wraps the stride baseline and the
//! PC-delta accuracy-threshold engine, trains *both* on every demand
//! snoop, and at interval boundaries decides which one gets to issue.
//!
//! ## Counter-to-decision mapping
//!
//! The meta-engine maintains its own interval window of the same
//! signals the phase sampler exports (accesses, stride-predictability,
//! L1 miss mix), computed *from the demand-event stream* — never from
//! `tick` call counts (the horizon-aware fast path skips ticks, and
//! decisions keyed on them would diverge from the per-cycle reference)
//! and never from the telemetry layer (telemetry must stay pure
//! observation; an engine reading it would make telemetry-on runs
//! diverge, breaking the transparency contract the equivalence suite
//! pins). Demand events arrive at bit-identical cycles on both paths,
//! so the decisions are bit-identical too.
//!
//! Per window (`interval` cycles, at least `min_accesses` loads):
//!
//! * `accesses` — demand loads snooped;
//! * `stride_hits` — loads whose address a per-PC last-address+stride
//!   micro-predictor (the "would a stride engine have been right?"
//!   probe) predicted exactly;
//! * `misses` — loads that missed L1 (reported, not used to decide).
//!
//! Decision, evaluated at the first demand load at/after each interval
//! boundary: `stride_hits * 2 >= accesses` (majority stride-predictable)
//! selects the stride engine, anything else selects PC-delta. A switch
//! clears the incoming engine's pending queue — its targets were
//! trained against the previous phase — bumps `reconfigurations`, and
//! records the `(cycle, choice)` pair for the report table.

use etpp_baselines::{PcDeltaParams, PcDeltaPrefetcher, StrideParams, StridePrefetcher};
use etpp_mem::{ConfigOp, DemandEvent, Line, PrefetchEngine, PrefetchRequest, TagId};

/// Which sub-engine the meta-engine currently lets issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptiveChoice {
    /// The two-bit RPT stride baseline.
    Stride,
    /// The PC-delta accuracy-threshold engine.
    PcDelta,
}

impl AdaptiveChoice {
    /// Stable display name for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            AdaptiveChoice::Stride => "stride",
            AdaptiveChoice::PcDelta => "pc_delta",
        }
    }
}

/// Meta-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveParams {
    /// Decision-interval length in cycles (mirrors the phase sampler's
    /// default cadence).
    pub interval: u64,
    /// Minimum demand loads a window must contain before a decision is
    /// taken; thinner windows keep accumulating into the next boundary.
    pub min_accesses: u64,
    /// Micro-predictor entries (direct-mapped by PC, power of two).
    pub pred_entries: usize,
}

impl AdaptiveParams {
    /// Default cadence: decide every 20k cycles over ≥64 loads.
    pub fn paper() -> Self {
        AdaptiveParams {
            interval: 20_000,
            min_accesses: 64,
            pred_entries: 64,
        }
    }
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams::paper()
    }
}

/// Post-run summary of the meta-engine's decisions, surfaced on
/// [`crate::RunResult`] for the adaptive report table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveSummary {
    /// Number of engine switches (not counting the initial selection).
    pub reconfigurations: u32,
    /// The engine left active when the run finished.
    pub final_choice: AdaptiveChoice,
    /// Every switch as `(cycle, new choice)`, in time order.
    pub switches: Vec<(u64, AdaptiveChoice)>,
    /// Total decision windows evaluated.
    pub windows: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PredEntry {
    pc: u32,
    valid: bool,
    last_addr: u64,
    stride: i64,
}

/// The phase-adaptive meta-engine.
#[derive(Debug)]
pub struct AdaptiveEngine {
    params: AdaptiveParams,
    stride: StridePrefetcher,
    pc_delta: PcDeltaPrefetcher,
    active: AdaptiveChoice,
    pred: Vec<PredEntry>,
    next_decision_at: u64,
    // Current-window counters.
    accesses: u64,
    stride_hits: u64,
    misses: u64,
    // Lifetime decision log.
    reconfigurations: u32,
    switches: Vec<(u64, AdaptiveChoice)>,
    windows: u64,
}

impl AdaptiveEngine {
    /// Creates the meta-engine with both sub-engines at their paper
    /// configurations, starting on stride.
    pub fn new(params: AdaptiveParams) -> Self {
        assert!(params.pred_entries.is_power_of_two());
        AdaptiveEngine {
            stride: StridePrefetcher::new(StrideParams::paper()),
            pc_delta: PcDeltaPrefetcher::new(PcDeltaParams::paper()),
            active: AdaptiveChoice::Stride,
            pred: vec![PredEntry::default(); params.pred_entries],
            next_decision_at: params.interval,
            accesses: 0,
            stride_hits: 0,
            misses: 0,
            reconfigurations: 0,
            switches: Vec::new(),
            windows: 0,
            params,
        }
    }

    /// The currently issuing sub-engine.
    pub fn active(&self) -> AdaptiveChoice {
        self.active
    }

    /// Decision log for the report table.
    pub fn summary(&self) -> AdaptiveSummary {
        AdaptiveSummary {
            reconfigurations: self.reconfigurations,
            final_choice: self.active,
            switches: self.switches.clone(),
            windows: self.windows,
        }
    }

    fn active_dyn(&mut self) -> &mut dyn PrefetchEngine {
        match self.active {
            AdaptiveChoice::Stride => &mut self.stride,
            AdaptiveChoice::PcDelta => &mut self.pc_delta,
        }
    }

    fn observe_window(&mut self, ev: &DemandEvent) {
        self.accesses += 1;
        if !ev.l1_hit {
            self.misses += 1;
        }
        let idx = (ev.pc as usize) & (self.params.pred_entries - 1);
        let e = &mut self.pred[idx];
        if e.valid && e.pc == ev.pc {
            let predicted = e.last_addr.wrapping_add(e.stride as u64);
            if e.stride != 0 && ev.vaddr == predicted {
                self.stride_hits += 1;
            }
            e.stride = ev.vaddr as i64 - e.last_addr as i64;
            e.last_addr = ev.vaddr;
        } else {
            *e = PredEntry {
                pc: ev.pc,
                valid: true,
                last_addr: ev.vaddr,
                stride: 0,
            };
        }
    }

    fn maybe_decide(&mut self, now: u64) {
        if now < self.next_decision_at || self.accesses < self.params.min_accesses {
            return;
        }
        self.windows += 1;
        let choice = if self.stride_hits * 2 >= self.accesses {
            AdaptiveChoice::Stride
        } else {
            AdaptiveChoice::PcDelta
        };
        if choice != self.active {
            self.active = choice;
            // The incoming engine trained through the old phase; its
            // queued targets are stale. Drop them, keep its tables.
            match choice {
                AdaptiveChoice::Stride => self.stride.clear_pending(),
                AdaptiveChoice::PcDelta => self.pc_delta.clear_pending(),
            }
            self.reconfigurations += 1;
            self.switches.push((now, choice));
        }
        self.accesses = 0;
        self.stride_hits = 0;
        self.misses = 0;
        self.next_decision_at = now + self.params.interval;
    }
}

impl PrefetchEngine for AdaptiveEngine {
    fn on_demand(&mut self, now: u64, ev: &DemandEvent) {
        // Both sub-engines train on everything so a newly activated
        // engine is already warm for the phase that selected it.
        self.stride.on_demand(now, ev);
        self.pc_delta.on_demand(now, ev);
        if ev.is_write {
            return;
        }
        self.observe_window(ev);
        self.maybe_decide(now);
    }

    fn on_prefetch_fill(
        &mut self,
        now: u64,
        vaddr: u64,
        line: &Line,
        tag: Option<TagId>,
        meta: u64,
    ) {
        self.stride.on_prefetch_fill(now, vaddr, line, tag, meta);
        self.pc_delta.on_prefetch_fill(now, vaddr, line, tag, meta);
    }

    fn tick(&mut self, _now: u64) {
        // Deliberately empty: decisions must ride demand events only.
        // The fast path does not deliver per-cycle ticks, so anything
        // keyed on tick counts would break fast-vs-reference identity.
    }

    fn pop_request(&mut self, now: u64) -> Option<PrefetchRequest> {
        self.active_dyn().pop_request(now)
    }

    fn config(&mut self, now: u64, op: &ConfigOp) {
        self.stride.config(now, op);
        self.pc_delta.config(now, op);
    }

    fn next_event_at(&self, now: u64) -> Option<u64> {
        // Only the active engine can emit; decisions piggyback on
        // demand snoops, which arrive regardless of this horizon.
        match self.active {
            AdaptiveChoice::Stride => self.stride.next_event_at(now),
            AdaptiveChoice::PcDelta => self.pc_delta.next_event_at(now),
        }
    }

    fn next_tick_at(&self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(at: u64, pc: u32, vaddr: u64) -> DemandEvent {
        DemandEvent {
            at,
            vaddr,
            pc,
            is_write: false,
            l1_hit: false,
        }
    }

    fn drain(e: &mut AdaptiveEngine) -> Vec<u64> {
        let mut v = vec![];
        while let Some(r) = e.pop_request(0) {
            v.push(r.vaddr);
        }
        v
    }

    #[test]
    fn streaming_window_stays_on_stride() {
        let mut e = AdaptiveEngine::new(AdaptiveParams {
            interval: 1000,
            min_accesses: 16,
            pred_entries: 64,
        });
        let mut now = 0;
        for i in 0..256u64 {
            e.on_demand(now, &load(now, 0x40, 0x1000 + i * 64));
            now += 10;
        }
        let s = e.summary();
        assert_eq!(s.final_choice, AdaptiveChoice::Stride);
        assert_eq!(s.reconfigurations, 0);
        assert!(s.windows > 0, "boundaries must have been evaluated");
        assert!(!drain(&mut e).is_empty(), "stride engine must issue");
    }

    #[test]
    fn irregular_window_switches_to_pc_delta_once() {
        let mut e = AdaptiveEngine::new(AdaptiveParams {
            interval: 1000,
            min_accesses: 16,
            pred_entries: 64,
        });
        let mut now = 0;
        // Phase 1: pure stride.
        for i in 0..128u64 {
            e.on_demand(now, &load(now, 0x40, 0x1000 + i * 64));
            now += 10;
        }
        // Phase 2: alternating deltas a stride predictor never pins.
        let mut a = 0x80_0000u64;
        for i in 0..256u64 {
            e.on_demand(now, &load(now, 0x80, a));
            a += if i % 2 == 0 { 192 } else { 320 };
            now += 10;
        }
        let s = e.summary();
        assert_eq!(s.final_choice, AdaptiveChoice::PcDelta);
        assert_eq!(
            s.reconfigurations, 1,
            "exactly one switch at the phase boundary: {:?}",
            s.switches
        );
    }

    #[test]
    fn thin_windows_defer_decisions() {
        let mut e = AdaptiveEngine::new(AdaptiveParams {
            interval: 100,
            min_accesses: 50,
            pred_entries: 64,
        });
        // 10 accesses spread over many intervals: never enough to decide.
        for i in 0..10u64 {
            e.on_demand(i * 1000, &load(i * 1000, 1, i * 0x999));
        }
        assert_eq!(e.summary().windows, 0);
    }
}
