//! The sweep farm: composed ablation grids, replay-first, with a
//! content-hash result cache and shardable job partitions.
//!
//! A [`SweepSpec`] expresses any cross product of [`SystemConfig`]
//! mutations ([`Axis`] values × engine [`PrefetchMode`]s × workloads) as
//! one **flat, index-addressable job list**. Every cell runs
//! **replay-first** over the workload's captured demand stream — the
//! fast path — and only *disagreeing* streams escalate to the
//! cycle-level core, gated by the per-workload `cycle_agreement` the v2
//! trace format records at capture (`TraceMeta::capture_cycles`):
//!
//! * stream agreement `|replay/capture − 1| ≤ gate` → every cell of
//!   that workload replays (the common case; the cycle core does no
//!   work);
//! * the gate fails, or the baseline replay itself breaks → the
//!   workload's cells run on the cycle core, compared against the
//!   capture run's own cycle count so speedups stay like-for-like;
//! * an individual cell whose replay is impossible (e.g. Software mode)
//!   or corrupts the image escalates alone — the only *per-cell*
//!   disagreement signal replay can produce without a reference run.
//!
//! Every cell is memoized in a **content-hash result cache** on disk,
//! keyed by `(trace content hash, canonical config hash, schema
//! version)` — see [`cell_config_hash`] — so warm re-runs are
//! near-free and a workload regeneration or config change invalidates
//! exactly the affected cells.
//!
//! The job list is **partitionable across processes**: shard `k` of `n`
//! runs jobs `i ≡ k (mod n)` ([`crate::experiments::shard_indices`])
//! and writes a shard JSON ([`ShardRun::to_json`]); [`merge_shards`]
//! reassembles any complete set of shards into tables
//! ([`render_merged`]) that are byte-identical for every (jobs,
//! shard-count) split — the same determinism contract
//! [`crate::experiments::map_indexed`] pins for threads, extended to
//! processes.

use crate::config::{PrefetchMode, SystemConfig};
use crate::experiments::{map_indexed, shard_indices};
use crate::faults::{
    run_isolated, run_isolated_budgeted, FailureClass, FailureRecord, FaultPlan, Journal,
    RetryPolicy,
};
use crate::replay::{replay_params, replay_run_watched, KeyedCapture};
use crate::system::{run, run_watched};
use crate::watchdog::Watchdog;
use etpp_mem::cancel::CancelToken;
use etpp_telemetry::{json_escape, Registry};
use etpp_trace::format::{fnv1a, FNV_OFFSET};
use etpp_workloads::BuiltWorkload;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version of the result-cache record and shard-file layout. Part of
/// every cache key and file name: bumping it orphans (never corrupts)
/// old entries. v2 added the self-integrity trailer on cache records,
/// the `failed` cell path, and the shard-file `failures` section.
pub const SWEEP_SCHEMA_VERSION: u32 = 2;

/// Default escalation gate on the stream-level absolute-cycle
/// agreement: a baseline replay within ±15% of the capture run's cycle
/// count is trusted for the whole grid (Small-scale v2 agreement is
/// 0.86–0.99, see `tests/replay_fidelity.rs`; Tiny-scale streams may
/// escalate, which is exactly the gate doing its job).
pub const DEFAULT_AGREEMENT_GATE: f64 = 0.15;

/// Auto cell budget: this multiple of the slowest *measured* baseline
/// wall time bounds every cell of the shard. Generous on purpose — the
/// watchdog exists to catch hangs and livelocks, not slow-but-honest
/// cells; the escalated retry quadruples it again before quarantine.
pub const DEFAULT_BUDGET_MULTIPLE: u32 = 32;

/// Floor on the auto cell budget, covering shards whose baselines all
/// resumed from the journal or hit the result cache (measured wall
/// time ~0) and machines with noisy schedulers.
pub const MIN_CELL_BUDGET: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------------
// Spec: axes, cross products, flat job indexing
// ---------------------------------------------------------------------------

/// One mutation axis of a sweep: a named parameter and the values it
/// takes. `apply` is a plain fn pointer so axes stay `Clone` and the
/// mutation is a pure function of `(axis, value)`.
#[derive(Clone)]
pub struct Axis {
    /// Parameter name (settings strings, tables, cache-key material
    /// only via the mutated config itself).
    pub name: &'static str,
    /// The values this axis sweeps.
    pub values: Vec<u64>,
    /// Applies one value to a configuration.
    pub apply: fn(&mut SystemConfig, u64),
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("values", &self.values)
            .finish()
    }
}

/// Axis constructors for the prefetcher parameters the paper ablates.
pub mod axes {
    use super::Axis;
    use crate::config::SystemConfig;

    fn set_obs_queue(cfg: &mut SystemConfig, v: u64) {
        cfg.pf.observation_queue = v as usize;
    }
    fn set_req_queue(cfg: &mut SystemConfig, v: u64) {
        cfg.pf.request_queue = v as usize;
    }
    fn set_lookahead_scale(cfg: &mut SystemConfig, v: u64) {
        cfg.pf.lookahead_scale = v;
    }
    fn set_pf_buffer(cfg: &mut SystemConfig, v: u64) {
        cfg.mem.pf_buffer_entries = v as usize;
    }
    fn set_num_ppus(cfg: &mut SystemConfig, v: u64) {
        cfg.pf.num_ppus = v as usize;
    }
    fn set_ppu_hz(cfg: &mut SystemConfig, v: u64) {
        cfg.pf.ppu_hz = v;
    }

    /// Observation-queue depth (paper: 40 entries).
    pub fn obs_queue(values: &[u64]) -> Axis {
        Axis {
            name: "obs_queue",
            values: values.to_vec(),
            apply: set_obs_queue,
        }
    }

    /// Prefetch-request-queue depth (paper: 200 entries).
    pub fn req_queue(values: &[u64]) -> Axis {
        Axis {
            name: "req_queue",
            values: values.to_vec(),
            apply: set_req_queue,
        }
    }

    /// EWMA look-ahead safety multiplier; 0 = the raw ratio (honoured
    /// by `EwmaBank` since the sweep farm landed — no caller-side
    /// clamping).
    pub fn lookahead_scale(values: &[u64]) -> Axis {
        Axis {
            name: "lookahead_scale",
            values: values.to_vec(),
            apply: set_lookahead_scale,
        }
    }

    /// Prefetch-buffer capacity (0 disables prefetching entirely).
    pub fn pf_buffer(values: &[u64]) -> Axis {
        Axis {
            name: "pf_buffer",
            values: values.to_vec(),
            apply: set_pf_buffer,
        }
    }

    /// PPU count (paper: 12; Figure 9a sweeps it).
    pub fn num_ppus(values: &[u64]) -> Axis {
        Axis {
            name: "num_ppus",
            values: values.to_vec(),
            apply: set_num_ppus,
        }
    }

    /// PPU clock in Hz (paper: 1 GHz; Figure 9b trades count for clock).
    pub fn ppu_hz(values: &[u64]) -> Axis {
        Axis {
            name: "ppu_hz",
            values: values.to_vec(),
            apply: set_ppu_hz,
        }
    }
}

/// A composed sweep: the cross product of every axis value with every
/// engine mode, per workload.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (shard-file identity; merges refuse to mix sweeps).
    pub name: &'static str,
    /// Base configuration the axes mutate.
    pub base: SystemConfig,
    /// Engine modes (the paper's Figure 7 axis).
    pub modes: Vec<PrefetchMode>,
    /// Mutation axes; the first axis varies slowest in job order.
    pub axes: Vec<Axis>,
}

impl SweepSpec {
    /// Cells per workload: `modes × Π |axis values|`.
    pub fn cells_per_workload(&self) -> usize {
        self.modes.len() * self.axes.iter().map(|a| a.values.len()).product::<usize>()
    }

    /// Total flat job count across `n_workloads` workloads.
    pub fn total_jobs(&self, n_workloads: usize) -> usize {
        self.cells_per_workload() * n_workloads
    }

    /// Decodes a flat job index into (workload index, mode index, one
    /// value index per axis). Workload-major, then mode, then axes in
    /// declaration order (last axis fastest) — the addressing contract
    /// shard partitions rely on.
    pub fn decode(&self, job: usize) -> (usize, usize, Vec<usize>) {
        let cpw = self.cells_per_workload();
        let (wi, mut cell) = (job / cpw, job % cpw);
        let mut value_idx = vec![0usize; self.axes.len()];
        for (ai, axis) in self.axes.iter().enumerate().rev() {
            value_idx[ai] = cell % axis.values.len();
            cell /= axis.values.len();
        }
        (wi, cell, value_idx)
    }

    /// The fully-mutated configuration for one cell.
    pub fn config_for(&self, value_idx: &[usize]) -> SystemConfig {
        let mut cfg = self.base;
        for (axis, &vi) in self.axes.iter().zip(value_idx) {
            (axis.apply)(&mut cfg, axis.values[vi]);
        }
        cfg
    }

    /// The cell's axis settings as `(name, value)` pairs.
    pub fn settings_for(&self, value_idx: &[usize]) -> Vec<(&'static str, u64)> {
        self.axes
            .iter()
            .zip(value_idx)
            .map(|(a, &vi)| (a.name, a.values[vi]))
            .collect()
    }
}

/// Renders settings pairs as the canonical table/shard-file string
/// (`"obs_queue=10 pf_buffer=8"`; `"-"` for an axis-free sweep).
pub fn settings_string(settings: &[(&'static str, u64)]) -> String {
    if settings.is_empty() {
        return "-".to_string();
    }
    settings
        .iter()
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The ROADMAP's composed grid, grown now that cells are cheap:
/// observation-queue depth × request-queue depth × EWMA look-ahead
/// scale (0 = raw ratio) × prefetch-buffer capacity × PPU count × PPU
/// clock × engine mode — 3072 configurations per workload, all
/// replay-first. The engine axis includes the zoo's fixed-function
/// additions (RPT stride, PC-delta) beside the original four.
pub fn composed_grid() -> SweepSpec {
    SweepSpec {
        name: "composed",
        base: SystemConfig::paper(),
        modes: vec![
            PrefetchMode::Stride,
            PrefetchMode::RptStride,
            PrefetchMode::PcDelta,
            PrefetchMode::GhbRegular,
            PrefetchMode::Converted,
            PrefetchMode::Manual,
        ],
        axes: vec![
            axes::obs_queue(&[10, 20, 40, 80]),
            axes::req_queue(&[100, 200]),
            axes::lookahead_scale(&[0, 2, 4, 8]),
            axes::pf_buffer(&[8, 16, 32, 64]),
            axes::num_ppus(&[6, 12]),
            axes::ppu_hz(&[500_000_000, 1_000_000_000]),
        ],
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// Canonical configuration hash for one cell: FNV-1a over the `Debug`
/// rendering of the *fully-mutated* [`SystemConfig`] (every field, so
/// any config drift invalidates), the mode key, the escalation
/// decision the cell executed under, the replay front-end parameters,
/// and [`SWEEP_SCHEMA_VERSION`]. Two sweeps that arrive at the same
/// configuration by different axis paths share cache entries.
pub fn cell_config_hash(cfg: &SystemConfig, mode: PrefetchMode, escalate: bool) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(b"etpp-sweep-cell", h);
    h = fnv1a(format!("{cfg:?}").as_bytes(), h);
    h = fnv1a(mode.key().as_bytes(), h);
    h = fnv1a(&[escalate as u8], h);
    h = fnv1a(format!("{:?}", replay_params()).as_bytes(), h);
    h = fnv1a(&u64::from(SWEEP_SCHEMA_VERSION).to_le_bytes(), h);
    h
}

/// On-disk path of a cell's cached result inside `dir`.
pub fn cell_cache_path(dir: &Path, trace_hash: u64, config_hash: u64) -> PathBuf {
    dir.join(format!(
        "{trace_hash:016x}-{config_hash:016x}-s{SWEEP_SCHEMA_VERSION}.json"
    ))
}

/// Which execution path produced a cell's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPath {
    /// Trace replay (the fast path).
    Replay,
    /// Escalated to the cycle-level core.
    Cycle,
    /// Not runnable on either path (e.g. no program for the mode).
    Skip,
    /// Quarantined: exhausted its retry budget (panicking cell, broken
    /// baseline) — rendered as an explicit `FAILED` row, never cached.
    Failed,
}

impl CellPath {
    fn as_str(self) -> &'static str {
        match self {
            CellPath::Replay => "replay",
            CellPath::Cycle => "cycle",
            CellPath::Skip => "skip",
            CellPath::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Option<CellPath> {
        match s {
            "replay" => Some(CellPath::Replay),
            "cycle" => Some(CellPath::Cycle),
            "skip" => Some(CellPath::Skip),
            "failed" => Some(CellPath::Failed),
            _ => None,
        }
    }
}

/// The cached payload of one executed cell (identity lives in the file
/// name; speedups are derived at assembly from the workload baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellData {
    path: CellPath,
    cycles: u64,
    host_iters: u64,
    dep_stalls: u64,
    validated: bool,
}

/// Magic field every cache record carries; a record without it (schema
/// drift, stray file) is corrupt by definition.
const CELL_MAGIC: &str = "etpp-sweep-cell";

fn cell_data_json(d: &CellData) -> String {
    format!(
        "{{\"magic\": \"{CELL_MAGIC}\", \"schema\": {SWEEP_SCHEMA_VERSION}, \"path\": \"{}\", \
         \"cycles\": {}, \"host_iters\": {}, \"dep_stalls\": {}, \"validated\": {}}}\n",
        d.path.as_str(),
        d.cycles,
        d.host_iters,
        d.dep_stalls,
        d.validated
    )
}

fn parse_cell_data(json: &str) -> Option<CellData> {
    if field_str(json, "magic")? != CELL_MAGIC {
        return None;
    }
    if field_num(json, "schema")? as u32 != SWEEP_SCHEMA_VERSION {
        return None;
    }
    Some(CellData {
        path: CellPath::from_str(&field_str(json, "path")?)?,
        cycles: field_num(json, "cycles")? as u64,
        host_iters: field_num(json, "host_iters")? as u64,
        dep_stalls: field_num(json, "dep_stalls")? as u64,
        validated: field_bool(json, "validated")?,
    })
}

/// The full on-disk cache record: the JSON body plus a self-integrity
/// trailer (`fnv <hash16> len <bytes>`) over the body, so a torn or
/// bit-flipped record is detectable without trusting any of its bytes.
fn cell_record(d: &CellData) -> String {
    let body = cell_data_json(d);
    format!(
        "{body}fnv {:016x} len {}\n",
        fnv1a(body.as_bytes(), FNV_OFFSET),
        body.len()
    )
}

/// Validates a cache record's trailer (magic, length, content hash) and
/// parses the body. `None` means corrupt/truncated/drifted — the caller
/// evicts the entry and treats the lookup as a miss.
fn parse_cell_record(raw: &str) -> Option<CellData> {
    let trailer_at = raw.rfind("fnv ")?;
    let (body, trailer) = raw.split_at(trailer_at);
    // The trailer must byte-match what the writer would emit for this
    // body — any truncation, extension, or flip (of trailer *or* body)
    // misses.
    let expect = format!(
        "fnv {:016x} len {}\n",
        fnv1a(body.as_bytes(), FNV_OFFSET),
        body.len()
    );
    if trailer != expect {
        return None;
    }
    parse_cell_data(body)
}

fn write_cell_data(path: &Path, d: &CellData, tear: Option<u64>) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    // Write-then-rename so concurrent shards on a shared cache dir can
    // only ever observe complete records.
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    let mut bytes = cell_record(d).into_bytes();
    if let Some(k) = tear {
        // Fault injection: a torn write — the rename still happens, so
        // the next reader sees a syntactically broken record.
        bytes.truncate((k as usize).min(bytes.len()));
    }
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Running a sweep shard
// ---------------------------------------------------------------------------

/// How a sweep runs: cache location, worker threads, shard partition,
/// escalation gate.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Result-cache directory (`None` disables memoization).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads for this process's share of the job list.
    pub jobs: usize,
    /// `(k, n)`: run jobs `i ≡ k (mod n)` only. `(0, 1)` = everything.
    pub shard: (usize, usize),
    /// Stream-agreement escalation gate (see [`DEFAULT_AGREEMENT_GATE`]).
    pub gate: f64,
    /// Scale label recorded in the shard header (merges refuse to mix
    /// scales).
    pub scale_label: String,
    /// Panic-isolation policy (`strict: true` = abort-on-first-failure).
    pub retry: RetryPolicy,
    /// Deterministic faults to inject (`None` = run clean).
    pub faults: Option<FaultPlan>,
    /// Progress-journal path for checkpoint–resume (`None` disables).
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Per-cell wall-clock budget for the watchdog (`repro
    /// --cell-budget`). `None` derives one deterministically from the
    /// shard's own measured baselines ([`DEFAULT_BUDGET_MULTIPLE`] ×
    /// the slowest, floored at [`MIN_CELL_BUDGET`]); `Duration::ZERO`
    /// explicitly disarms the watchdog. A cell that overruns is
    /// cancelled, retried once at an escalated budget, then
    /// quarantined as a `timeout`.
    pub cell_budget: Option<Duration>,
    /// Snapshot of [`crate::faults::trace_decode_errors`] taken before
    /// this run's capture/fault phase, so the shard registry reports
    /// only *this run's* decode errors (the static is process-wide and
    /// would otherwise leak counts across sweeps sharing a process).
    /// `None` snapshots at [`run_sweep`] entry.
    pub decode_errors_from: Option<u64>,
}

impl SweepOptions {
    /// Cache-less, unsharded, fault-free options at the default gate.
    pub fn new(jobs: usize, scale_label: &str) -> Self {
        SweepOptions {
            cache_dir: None,
            jobs,
            shard: (0, 1),
            gate: DEFAULT_AGREEMENT_GATE,
            scale_label: scale_label.to_string(),
            retry: RetryPolicy::default(),
            faults: None,
            journal: None,
            resume: false,
            cell_budget: None,
            decode_errors_from: None,
        }
    }
}

/// Per-workload baseline: the replay-first no-prefetch run the
/// agreement gate judges, and the denominator every cell speedup uses.
#[derive(Debug, Clone)]
pub struct WorkloadBaseline {
    /// Benchmark name.
    pub workload: &'static str,
    /// Baseline (no-prefetch, base-config) cycles on the path the gate
    /// chose — replay cycles normally, cycle-core cycles if the
    /// baseline replay itself broke.
    pub replay_cycles: u64,
    /// The capture run's cycle-core cycle count (v2 streams; 0 on v1).
    pub capture_cycles: u64,
    /// `replay_cycles / capture_cycles` (`None` without a v2 reference).
    pub agreement: Option<f64>,
    /// Whether this workload's cells escalate to the cycle core.
    pub escalate: bool,
    /// The speedup denominator: replay cycles when the stream is
    /// trusted, the capture run's cycle count when escalated.
    pub reference_cycles: u64,
}

/// One assembled sweep cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Flat job index (globally unique across shards).
    pub index: usize,
    /// Benchmark name.
    pub workload: &'static str,
    /// Engine mode.
    pub mode: PrefetchMode,
    /// Axis settings applied on top of the base config.
    pub settings: Vec<(&'static str, u64)>,
    /// Which path produced the numbers.
    pub path: CellPath,
    /// Simulated cycles (0 when skipped).
    pub cycles: u64,
    /// Host driver iterations.
    pub host_iters: u64,
    /// Dependence-edge stalls (replay path only).
    pub dep_stalls: u64,
    /// Post-run image checksum matched.
    pub validated: bool,
    /// Speedup over the workload baseline (None when skipped).
    pub speedup: Option<f64>,
    /// Served from the result cache.
    pub cached: bool,
}

/// The output of one sweep shard: its cells, the baselines behind
/// them, and the cache-effectiveness counters.
#[derive(Debug)]
pub struct ShardRun {
    /// Sweep name (from the spec).
    pub sweep: &'static str,
    /// Scale label (from the options).
    pub scale: String,
    /// Trace format the captures were keyed under.
    pub trace_format: u16,
    /// `(k, n)` shard identity.
    pub shard: (usize, usize),
    /// Total jobs in the *full* sweep (all shards).
    pub total_jobs: usize,
    /// Baselines for every workload this shard touched.
    pub baselines: Vec<WorkloadBaseline>,
    /// This shard's cells, ascending by flat index.
    pub cells: Vec<CellResult>,
    /// Quarantined jobs (baselines first, then cells by index) — what
    /// `failures.json` serialises.
    pub failures: Vec<FailureRecord>,
    /// `sweep.*` counters (cache effectiveness, retries, quarantines,
    /// journal hits) plus the `trace.decode_errors` snapshot.
    pub registry: Registry,
}

impl ShardRun {
    /// Cache hits this run.
    pub fn cache_hits(&self) -> u64 {
        self.registry.counter("sweep.cache.hit")
    }

    /// Cache misses (cells executed fresh) this run.
    pub fn cache_misses(&self) -> u64 {
        self.registry.counter("sweep.cache.miss")
    }

    /// Fresh cells that ran the cycle core this run.
    pub fn escalations(&self) -> u64 {
        self.registry.counter("sweep.cache.escalated")
    }

    /// Corrupt cache entries evicted (then treated as misses) this run.
    pub fn corrupt_evicted(&self) -> u64 {
        self.registry.counter("sweep.cache.corrupt_evicted")
    }

    /// Panic retries consumed this run.
    pub fn retries(&self) -> u64 {
        self.registry.counter("sweep.retry")
    }

    /// Jobs quarantined after exhausting their retry budget.
    pub fn quarantined(&self) -> u64 {
        self.registry.counter("sweep.quarantined")
    }

    /// Jobs skipped because the resume journal already had them.
    pub fn journal_hits(&self) -> u64 {
        self.registry.counter("sweep.journal.hit")
    }

    /// Cells quarantined because their wall-clock budget expired.
    pub fn timeouts(&self) -> u64 {
        self.registry.counter("sweep.timeout")
    }

    /// Cells quarantined by an on-request cancellation.
    pub fn cancelled(&self) -> u64 {
        self.registry.counter("sweep.cancelled")
    }

    /// Livelock aborts the driver raised during this run (delta, not
    /// the process-wide absolute).
    pub fn livelock_aborts(&self) -> u64 {
        self.registry.counter("driver.livelock_aborts")
    }

    /// One-line effectiveness summary (repro stderr): cache behaviour
    /// always, fault/resume counters only when non-zero.
    pub fn cache_summary(&self) -> String {
        let (h, m, e) = (self.cache_hits(), self.cache_misses(), self.escalations());
        let mut s = format!(
            "cache: {h} hit / {m} miss / {e} escalated ({:.1}% hit)",
            100.0 * h as f64 / (h + m).max(1) as f64
        );
        let (c, r, q, j) = (
            self.corrupt_evicted(),
            self.retries(),
            self.quarantined(),
            self.journal_hits(),
        );
        if c > 0 {
            let _ = write!(s, ", {c} corrupt evicted");
        }
        if r > 0 {
            let _ = write!(s, ", {r} retried");
        }
        if q > 0 {
            let _ = write!(s, ", {q} quarantined");
        }
        let (t, x, l) = (self.timeouts(), self.cancelled(), self.livelock_aborts());
        if t > 0 {
            let _ = write!(s, ", {t} timed out");
        }
        if x > 0 {
            let _ = write!(s, ", {x} cancelled");
        }
        if l > 0 {
            let _ = write!(s, ", {l} livelock aborts");
        }
        if j > 0 {
            let _ = write!(s, ", {j} resumed from journal");
        }
        s
    }
}

/// Looks a cell up in the cache (when enabled), else executes it and
/// stores the result. Returns the data plus whether it was a hit.
///
/// A present-but-invalid entry (torn write, bit flip, schema drift) is
/// **atomically evicted** — `remove_file` then treated as a plain miss —
/// and counted as `sweep.cache.corrupt_evicted`; corruption can cost a
/// re-execution but never poison a result.
#[allow(clippy::too_many_arguments)]
fn cached_exec(
    cache_dir: Option<&Path>,
    trace_hash: u64,
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    records: &[etpp_trace::TraceRecord],
    escalate: bool,
    tear: Option<u64>,
    cancel: Option<&CancelToken>,
    counters: &SweepCounters,
) -> (CellData, bool) {
    let path =
        cache_dir.map(|d| cell_cache_path(d, trace_hash, cell_config_hash(cfg, mode, escalate)));
    if let Some(p) = &path {
        match fs::read_to_string(p) {
            Ok(raw) => match parse_cell_record(&raw) {
                Some(d) => {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return (d, true);
                }
                None => {
                    counters.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                    let _ = fs::remove_file(p);
                    eprintln!("[sweep] evicted corrupt cache entry {}", p.display());
                }
            },
            // Invalid UTF-8 is corruption too; anything else (ENOENT,
            // EACCES...) is just a miss.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                counters.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(p);
                eprintln!("[sweep] evicted corrupt cache entry {}", p.display());
            }
            Err(_) => {}
        }
    }
    counters.misses.fetch_add(1, Ordering::Relaxed);
    let d = exec_cell(cfg, mode, wl, records, escalate, cancel);
    if d.path == CellPath::Cycle {
        counters.escalated.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(p) = &path {
        if let Err(e) = write_cell_data(p, &d, tear) {
            eprintln!("[sweep] could not cache {}: {e}", p.display());
        }
    }
    (d, false)
}

/// Replay-first cell execution with per-cell escalation: replay unless
/// the stream-level gate already escalated; fall back to the cycle
/// core when replay is impossible for the mode or corrupts the image.
/// `cancel` (the attempt's watchdog token) is threaded into whichever
/// loop actually runs; both paths check it at visit granularity only,
/// so armed results stay bit-identical to unarmed ones.
fn exec_cell(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    records: &[etpp_trace::TraceRecord],
    escalate: bool,
    cancel: Option<&CancelToken>,
) -> CellData {
    if !escalate {
        if let Ok(r) = replay_run_watched(cfg, mode, wl, records, cancel) {
            if r.validated {
                return CellData {
                    path: CellPath::Replay,
                    cycles: r.cycles,
                    host_iters: r.host_iters,
                    dep_stalls: r.dep_stalls,
                    validated: true,
                };
            }
        }
    }
    let cycle = match cancel {
        Some(token) => run_watched(cfg, mode, wl, &Watchdog::new(token.clone())),
        None => run(cfg, mode, wl),
    };
    match cycle {
        Ok(r) => CellData {
            path: CellPath::Cycle,
            cycles: r.cycles,
            host_iters: r.host_iters,
            dep_stalls: 0,
            validated: r.validated,
        },
        Err(_) => CellData {
            path: CellPath::Skip,
            cycles: 0,
            host_iters: 0,
            dep_stalls: 0,
            validated: true,
        },
    }
}

#[derive(Default)]
struct SweepCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    escalated: AtomicU64,
    corrupt_evicted: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    journal_hits: AtomicU64,
    timeouts: AtomicU64,
    cancelled: AtomicU64,
}

// ---------------------------------------------------------------------------
// Progress-journal entries (checkpoint–resume)
// ---------------------------------------------------------------------------

/// The journal's line-0 header: the full sweep identity (spec, scale,
/// shard, gate bits, trace content hashes). Resume discards a journal
/// whose header differs — progress from a different sweep, scale, or
/// trace corpus must never be donated. Deliberately excludes the fault
/// plan: a run killed *by* an injected fault resumes under a clean
/// plan against the same journal.
fn journal_header(
    spec: &SweepSpec,
    opts: &SweepOptions,
    trace_format: u16,
    total: usize,
    captures: &[KeyedCapture],
) -> String {
    let hashes: Vec<String> = captures
        .iter()
        .map(|c| format!("{:016x}", c.content_hash))
        .collect();
    format!(
        "{{\"kind\": \"header\", \"schema\": {SWEEP_SCHEMA_VERSION}, \"sweep\": \"{}\", \
         \"scale\": \"{}\", \"trace_format\": {trace_format}, \"shard\": {}, \"of\": {}, \
         \"total_jobs\": {total}, \"gate_bits\": \"{:016x}\", \"traces\": \"{}\"}}",
        spec.name,
        opts.scale_label,
        opts.shard.0,
        opts.shard.1,
        opts.gate.to_bits(),
        hashes.join(",")
    )
}

/// Appends `, "class": "...", "attempts": N, "error": "..."` when the
/// entry records a quarantine, so resume reconstructs the failure too.
fn failure_suffix(failure: Option<&FailureRecord>) -> String {
    failure.map_or(String::new(), |f| {
        format!(
            ", \"class\": \"{}\", \"attempts\": {}, \"error\": \"{}\"",
            f.class.key(),
            f.attempts,
            json_escape(&f.error)
        )
    })
}

fn journal_baseline_entry(b: &WorkloadBaseline, failure: Option<&FailureRecord>) -> String {
    format!(
        "{{\"kind\": \"baseline\", \"workload\": \"{}\", \"replay_cycles\": {}, \
         \"capture_cycles\": {}, \"agreement_bits\": \"{}\", \"escalate\": {}, \
         \"reference_cycles\": {}{}}}",
        b.workload,
        b.replay_cycles,
        b.capture_cycles,
        b.agreement
            .map_or("none".to_string(), |a| format!("{:016x}", a.to_bits())),
        b.escalate,
        b.reference_cycles,
        failure_suffix(failure)
    )
}

fn journal_cell_entry(c: &CellResult, failure: Option<&FailureRecord>) -> String {
    format!(
        "{{\"kind\": \"cell\", \"index\": {}, \"path\": \"{}\", \"cycles\": {}, \
         \"host_iters\": {}, \"dep_stalls\": {}, \"validated\": {}{}}}",
        c.index,
        c.path.as_str(),
        c.cycles,
        c.host_iters,
        c.dep_stalls,
        c.validated,
        failure_suffix(failure)
    )
}

/// A baseline reconstructed from the journal (agreement is bit-exact —
/// `f64::to_bits` hex — so resumed merges stay byte-identical).
struct JournalBaseline {
    replay_cycles: u64,
    capture_cycles: u64,
    agreement: Option<f64>,
    escalate: bool,
    reference_cycles: u64,
    class: FailureClass,
    attempts: Option<u32>,
    error: Option<String>,
}

fn parse_journal_baseline(line: &str) -> Option<(String, JournalBaseline)> {
    let bits = field_str(line, "agreement_bits")?;
    Some((
        field_str(line, "workload")?,
        JournalBaseline {
            replay_cycles: field_num(line, "replay_cycles")? as u64,
            capture_cycles: field_num(line, "capture_cycles")? as u64,
            agreement: if bits == "none" {
                None
            } else {
                Some(f64::from_bits(u64::from_str_radix(&bits, 16).ok()?))
            },
            escalate: field_bool(line, "escalate")?,
            reference_cycles: field_num(line, "reference_cycles")? as u64,
            class: FailureClass::from_key(&field_str(line, "class").unwrap_or_default()),
            attempts: field_num(line, "attempts").map(|v| v as u32),
            error: field_str(line, "error"),
        },
    ))
}

/// A completed cell reconstructed from the journal.
struct JournalCell {
    path: CellPath,
    cycles: u64,
    host_iters: u64,
    dep_stalls: u64,
    validated: bool,
    class: FailureClass,
    attempts: Option<u32>,
    error: Option<String>,
}

fn parse_journal_cell(line: &str) -> Option<(usize, JournalCell)> {
    Some((
        field_num(line, "index")? as usize,
        JournalCell {
            path: CellPath::from_str(&field_str(line, "path")?)?,
            cycles: field_num(line, "cycles")? as u64,
            host_iters: field_num(line, "host_iters")? as u64,
            dep_stalls: field_num(line, "dep_stalls")? as u64,
            validated: field_bool(line, "validated")?,
            class: FailureClass::from_key(&field_str(line, "class").unwrap_or_default()),
            attempts: field_num(line, "attempts").map(|v| v as u32),
            error: field_str(line, "error"),
        },
    ))
}

/// Runs one shard of `spec` over `workloads` (with `captures[i]` the
/// keyed trace of `workloads[i]`) and returns its cells, baselines and
/// cache counters. Deterministic: the cells of a given flat index are
/// identical for every (jobs, shard) split, which is what makes
/// [`merge_shards`]' output byte-identical.
///
/// Fail-soft: every baseline and cell runs panic-isolated under
/// `opts.retry` — a job that exhausts its budget is quarantined into
/// [`ShardRun::failures`] (and a `FAILED` cell row) while the rest of
/// the grid completes; a failed *baseline* escalates its workload's
/// cells to the cycle core with the capture run as denominator rather
/// than aborting the shard. With `opts.journal` set, completed jobs are
/// checkpointed (fsync'd per entry) and `opts.resume` replays them
/// from the journal instead of re-executing.
pub fn run_sweep(
    spec: &SweepSpec,
    workloads: &[BuiltWorkload],
    captures: &[KeyedCapture],
    opts: &SweepOptions,
) -> ShardRun {
    assert_eq!(workloads.len(), captures.len());
    let trace_format = captures
        .first()
        .map_or(etpp_trace::FORMAT_VERSION, |c| c.trace_format);
    assert!(
        captures.iter().all(|c| c.trace_format == trace_format),
        "one sweep must not mix trace formats"
    );
    let (k, n) = opts.shard;
    let total = spec.total_jobs(workloads.len());
    let my_jobs = shard_indices(total, k, n);
    let counters = SweepCounters::default();
    let cache_dir = opts.cache_dir.as_deref();
    let plan = opts.faults.as_ref();
    let completed = AtomicU64::new(0);
    // The decode-error and livelock statics are process-wide; snapshot
    // so the registry reports this run's delta, not another sweep's
    // leakage (callers that capture traces themselves pass an earlier
    // snapshot via `decode_errors_from` to claim that phase's errors).
    let decode_errors_from = opts
        .decode_errors_from
        .unwrap_or_else(crate::faults::trace_decode_errors);
    let livelock_from = crate::watchdog::livelock_aborts();

    // Checkpoint–resume: open (or start) the progress journal and
    // index whatever completed entries survive its integrity checks.
    let mut resumed_cells: HashMap<usize, JournalCell> = HashMap::new();
    let mut resumed_baselines: HashMap<String, JournalBaseline> = HashMap::new();
    let journal: Option<Mutex<Journal>> = opts.journal.as_ref().and_then(|path| {
        let header = journal_header(spec, opts, trace_format, total, captures);
        let opened = if opts.resume {
            Journal::resume(path, &header).map(|(j, entries)| {
                for e in &entries {
                    match field_str(e, "kind").as_deref() {
                        Some("cell") => {
                            if let Some((idx, jc)) = parse_journal_cell(e) {
                                resumed_cells.insert(idx, jc);
                            }
                        }
                        Some("baseline") => {
                            if let Some((wl, jb)) = parse_journal_baseline(e) {
                                resumed_baselines.insert(wl, jb);
                            }
                        }
                        _ => {}
                    }
                }
                j
            })
        } else {
            Journal::create(path, &header)
        };
        match opened {
            Ok(j) => Some(Mutex::new(j)),
            Err(e) => {
                eprintln!("[sweep] journal disabled ({}: {e})", path.display());
                None
            }
        }
    });
    let append = |payload: String| {
        if let Some(j) = &journal {
            if let Ok(mut g) = j.lock() {
                if let Err(e) = g.append(&payload) {
                    eprintln!("[sweep] journal append failed: {e}");
                }
            }
        }
    };

    // Baselines first, for every workload this shard touches: the
    // no-prefetch replay whose agreement against the capture run's
    // cycle count decides escalation, and whose cycles denominate
    // every speedup. Baselines are cells too — same cache, same keys —
    // so across shards only the first process pays for each.
    let used: Vec<usize> = {
        let cpw = spec.cells_per_workload().max(1);
        let mut seen = vec![false; workloads.len()];
        for &j in &my_jobs {
            seen[j / cpw] = true;
        }
        (0..workloads.len()).filter(|&i| seen[i]).collect()
    };
    // Baselines run unbudgeted — they are the yardstick the cell
    // budget is derived from — but their wall time is measured so the
    // auto budget is a deterministic multiple of *this shard's* real
    // cost, not a guessed constant.
    let baseline_wall_us = AtomicU64::new(0);
    let baselines_used: Vec<(WorkloadBaseline, Option<FailureRecord>)> =
        map_indexed(opts.jobs, used.len(), |ui| {
            let wi = used[ui];
            let (wl, cap) = (&workloads[wi], &captures[wi]);
            let capture_cycles = cap.trace.meta.capture_cycles;
            if let Some(jb) = resumed_baselines.get(wl.name) {
                counters.journal_hits.fetch_add(1, Ordering::Relaxed);
                let failure = jb.error.clone().map(|error| FailureRecord {
                    index: None,
                    workload: wl.name.to_string(),
                    mode: "baseline".to_string(),
                    settings: "-".to_string(),
                    config_hash: cell_config_hash(&spec.base, PrefetchMode::None, false),
                    class: jb.class,
                    attempts: jb.attempts.unwrap_or(0),
                    error,
                });
                return (
                    WorkloadBaseline {
                        workload: wl.name,
                        replay_cycles: jb.replay_cycles,
                        capture_cycles: jb.capture_cycles,
                        agreement: jb.agreement,
                        escalate: jb.escalate,
                        reference_cycles: jb.reference_cycles,
                    },
                    failure,
                );
            }
            let wall_start = Instant::now();
            let computed = run_isolated(&opts.retry, wi, &counters.retries, |attempt| {
                if let Some(p) = plan {
                    p.maybe_panic_baseline(wi, attempt);
                }
                let (base, _) = cached_exec(
                    cache_dir,
                    cap.content_hash,
                    &spec.base,
                    PrefetchMode::None,
                    wl,
                    &cap.trace.records,
                    false,
                    None,
                    None,
                    &counters,
                );
                let agreement = (base.path == CellPath::Replay && capture_cycles > 0)
                    .then(|| base.cycles as f64 / capture_cycles as f64);
                let escalate = match (base.path, agreement) {
                    // v2 stream replayed fine: trust it iff it agrees.
                    (CellPath::Replay, Some(a)) => (a - 1.0).abs() > opts.gate,
                    // v1 stream (no reference): trust replay — there is
                    // nothing to disagree with, and escalating everything
                    // would defeat the farm. Orderings remain valid;
                    // absolutes are not.
                    (CellPath::Replay, None) => false,
                    // The baseline replay itself failed: the stream is
                    // broken for this config, run everything on the cycle
                    // core.
                    _ => true,
                };
                let reference_cycles = if !escalate {
                    base.cycles
                } else if capture_cycles > 0 {
                    capture_cycles
                } else {
                    // Escalated with no recorded reference (v1 stream whose
                    // replay broke): measure the cycle baseline, cached like
                    // any other escalated cell.
                    cached_exec(
                        cache_dir,
                        cap.content_hash,
                        &spec.base,
                        PrefetchMode::None,
                        wl,
                        &cap.trace.records,
                        true,
                        None,
                        None,
                        &counters,
                    )
                    .0
                    .cycles
                };
                WorkloadBaseline {
                    workload: wl.name,
                    replay_cycles: base.cycles,
                    capture_cycles,
                    agreement,
                    escalate,
                    reference_cycles,
                }
            });
            baseline_wall_us.fetch_max(
                u64::try_from(wall_start.elapsed().as_micros()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            match computed {
                Ok(b) => {
                    append(journal_baseline_entry(&b, None));
                    (b, None)
                }
                Err(fail) => {
                    // Structured degradation instead of aborting the
                    // shard: the workload's cells escalate to the cycle
                    // core with the capture run as denominator.
                    counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    let b = WorkloadBaseline {
                        workload: wl.name,
                        replay_cycles: 0,
                        capture_cycles,
                        agreement: None,
                        escalate: true,
                        reference_cycles: capture_cycles,
                    };
                    let rec = FailureRecord {
                        index: None,
                        workload: wl.name.to_string(),
                        mode: "baseline".to_string(),
                        settings: "-".to_string(),
                        config_hash: cell_config_hash(&spec.base, PrefetchMode::None, false),
                        class: fail.class,
                        attempts: fail.attempts,
                        error: fail.error,
                    };
                    eprintln!(
                        "[sweep] baseline for {} quarantined after {} attempts ({}); \
                         its cells escalate to the cycle core",
                        wl.name, rec.attempts, rec.error
                    );
                    append(journal_baseline_entry(&b, Some(&rec)));
                    (b, Some(rec))
                }
            }
        });
    let mut baselines: Vec<Option<&WorkloadBaseline>> = vec![None; workloads.len()];
    for (ui, &wi) in used.iter().enumerate() {
        baselines[wi] = Some(&baselines_used[ui].0);
    }

    // Per-cell wall-clock budget: explicit beats auto, zero disarms.
    // The auto budget is a deterministic multiple of the slowest
    // measured baseline (floored for cache-warm/resumed shards whose
    // baselines cost ~nothing to "run").
    let cell_budget: Option<Duration> = match opts.cell_budget {
        Some(d) if d.is_zero() => None,
        Some(d) => Some(d),
        None => {
            let slowest = Duration::from_micros(baseline_wall_us.load(Ordering::Relaxed));
            Some((slowest * DEFAULT_BUDGET_MULTIPLE).max(MIN_CELL_BUDGET))
        }
    };

    let cell_outcomes: Vec<(CellResult, Option<FailureRecord>)> =
        map_indexed(opts.jobs, my_jobs.len(), |j| {
            let job = my_jobs[j];
            let (wi, mi, value_idx) = spec.decode(job);
            let mode = spec.modes[mi];
            let cfg = spec.config_for(&value_idx);
            let settings = spec.settings_for(&value_idx);
            let (wl, cap) = (&workloads[wi], &captures[wi]);
            let failed_cell =
                |attempts: u32, class: FailureClass, error: String, escalate: bool| {
                    (
                        CellResult {
                            index: job,
                            workload: wl.name,
                            mode,
                            settings: settings.clone(),
                            path: CellPath::Failed,
                            cycles: 0,
                            host_iters: 0,
                            dep_stalls: 0,
                            validated: false,
                            speedup: None,
                            cached: false,
                        },
                        Some(FailureRecord {
                            index: Some(job),
                            workload: wl.name.to_string(),
                            mode: mode.key().to_string(),
                            settings: settings_string(&settings),
                            config_hash: cell_config_hash(&cfg, mode, escalate),
                            class,
                            attempts,
                            error,
                        }),
                    )
                };
            let Some(bl) = baselines[wi] else {
                // Structured replacement for the old "baseline computed
                // for every used workload" panic: an internally missing
                // baseline quarantines this one cell, not the shard.
                counters.quarantined.fetch_add(1, Ordering::Relaxed);
                return failed_cell(
                    0,
                    FailureClass::Panic,
                    format!("internal: no baseline for workload {}", wl.name),
                    false,
                );
            };
            if let Some(jc) = resumed_cells.get(&job) {
                counters.journal_hits.fetch_add(1, Ordering::Relaxed);
                let speedup = (!matches!(jc.path, CellPath::Skip | CellPath::Failed)
                    && bl.reference_cycles > 0)
                    .then(|| bl.reference_cycles as f64 / jc.cycles.max(1) as f64);
                let failure = jc.error.clone().map(|error| FailureRecord {
                    index: Some(job),
                    workload: wl.name.to_string(),
                    mode: mode.key().to_string(),
                    settings: settings_string(&settings),
                    config_hash: cell_config_hash(&cfg, mode, bl.escalate),
                    class: jc.class,
                    attempts: jc.attempts.unwrap_or(0),
                    error,
                });
                return (
                    CellResult {
                        index: job,
                        workload: wl.name,
                        mode,
                        settings,
                        path: jc.path,
                        cycles: jc.cycles,
                        host_iters: jc.host_iters,
                        dep_stalls: jc.dep_stalls,
                        validated: jc.validated,
                        speedup,
                        cached: false,
                    },
                    failure,
                );
            }
            let outcome = run_isolated_budgeted(
                &opts.retry,
                job,
                &counters.retries,
                cell_budget,
                |attempt, token| {
                    if let Some(p) = plan {
                        p.maybe_slow(job);
                        p.maybe_hang(job, token);
                        p.maybe_panic(job, attempt);
                    }
                    cached_exec(
                        cache_dir,
                        cap.content_hash,
                        &cfg,
                        mode,
                        wl,
                        &cap.trace.records,
                        bl.escalate,
                        plan.and_then(|p| p.tear_at(job)),
                        token,
                        &counters,
                    )
                },
            );
            let result = match outcome {
                Ok((d, hit)) => {
                    let cr = CellResult {
                        index: job,
                        workload: wl.name,
                        mode,
                        settings,
                        path: d.path,
                        cycles: d.cycles,
                        host_iters: d.host_iters,
                        dep_stalls: d.dep_stalls,
                        validated: d.validated,
                        speedup: (d.path != CellPath::Skip && bl.reference_cycles > 0)
                            .then(|| bl.reference_cycles as f64 / d.cycles.max(1) as f64),
                        cached: hit,
                    };
                    append(journal_cell_entry(&cr, None));
                    (cr, None)
                }
                Err(fail) => {
                    counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    match fail.class {
                        FailureClass::Timeout => {
                            counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        FailureClass::Cancelled => {
                            counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        // Livelocks land in `driver.livelock_aborts`
                        // (snapshot delta); plain panics in
                        // `sweep.quarantined` alone.
                        FailureClass::Livelock | FailureClass::Panic => {}
                    }
                    let (cr, rec) = failed_cell(fail.attempts, fail.class, fail.error, bl.escalate);
                    append(journal_cell_entry(&cr, rec.as_ref()));
                    (cr, rec)
                }
            };
            if let Some(p) = plan {
                p.maybe_kill(completed.fetch_add(1, Ordering::Relaxed) + 1);
            }
            result
        });
    let (cells, cell_failures): (Vec<CellResult>, Vec<Option<FailureRecord>>) =
        cell_outcomes.into_iter().unzip();
    let mut failures: Vec<FailureRecord> = baselines_used
        .iter()
        .filter_map(|(_, f)| f.clone())
        .chain(cell_failures.into_iter().flatten())
        .collect();
    failures.sort_by(|a, b| {
        (a.index, &a.workload, &a.mode, &a.settings).cmp(&(
            b.index,
            &b.workload,
            &b.mode,
            &b.settings,
        ))
    });

    let mut registry = Registry::new();
    registry.set_counter("sweep.cache.hit", counters.hits.load(Ordering::Relaxed));
    registry.set_counter("sweep.cache.miss", counters.misses.load(Ordering::Relaxed));
    registry.set_counter(
        "sweep.cache.escalated",
        counters.escalated.load(Ordering::Relaxed),
    );
    registry.set_counter(
        "sweep.cache.corrupt_evicted",
        counters.corrupt_evicted.load(Ordering::Relaxed),
    );
    registry.set_counter("sweep.retry", counters.retries.load(Ordering::Relaxed));
    registry.set_counter(
        "sweep.quarantined",
        counters.quarantined.load(Ordering::Relaxed),
    );
    registry.set_counter(
        "sweep.journal.hit",
        counters.journal_hits.load(Ordering::Relaxed),
    );
    registry.set_counter("sweep.timeout", counters.timeouts.load(Ordering::Relaxed));
    registry.set_counter(
        "sweep.cancelled",
        counters.cancelled.load(Ordering::Relaxed),
    );
    // Snapshot deltas, not process-wide absolutes: the statics outlive
    // this run and would otherwise report another sweep's errors.
    registry.set_counter(
        "trace.decode_errors",
        crate::faults::trace_decode_errors().saturating_sub(decode_errors_from),
    );
    registry.set_counter(
        "driver.livelock_aborts",
        crate::watchdog::livelock_aborts().saturating_sub(livelock_from),
    );
    ShardRun {
        sweep: spec.name,
        scale: opts.scale_label.clone(),
        trace_format,
        shard: (k, n),
        total_jobs: total,
        baselines: baselines_used.into_iter().map(|(b, _)| b).collect(),
        cells,
        failures,
        registry,
    }
}

// ---------------------------------------------------------------------------
// Shard files: serialisation, parsing, merging, rendering
// ---------------------------------------------------------------------------

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.4}"))
}

impl ShardRun {
    /// Serialises the shard for cross-process merging. One cell per
    /// line (the parser is line-oriented, like the speedcheck report).
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"schema\": {SWEEP_SCHEMA_VERSION},");
        let _ = writeln!(j, "  \"sweep\": \"{}\",", self.sweep);
        let _ = writeln!(j, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(j, "  \"trace_format\": {},", self.trace_format);
        let _ = writeln!(j, "  \"shard\": {},", self.shard.0);
        let _ = writeln!(j, "  \"of\": {},", self.shard.1);
        let _ = writeln!(j, "  \"total_jobs\": {},", self.total_jobs);
        j.push_str("  \"baselines\": [\n");
        for (i, b) in self.baselines.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"workload\": \"{}\", \"replay_cycles\": {}, \"capture_cycles\": {}, \
                 \"agreement\": {}, \"escalate\": {}, \"reference_cycles\": {}}}",
                b.workload,
                b.replay_cycles,
                b.capture_cycles,
                fmt_opt(b.agreement),
                b.escalate,
                b.reference_cycles
            );
            j.push_str(if i + 1 < self.baselines.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"index\": {}, \"workload\": \"{}\", \"mode\": \"{}\", \
                 \"settings\": \"{}\", \"path\": \"{}\", \"cycles\": {}, \
                 \"host_iters\": {}, \"dep_stalls\": {}, \"validated\": {}, \
                 \"speedup\": {}, \"cache\": \"{}\"}}",
                c.index,
                c.workload,
                c.mode.key(),
                settings_string(&c.settings),
                c.path.as_str(),
                c.cycles,
                c.host_iters,
                c.dep_stalls,
                c.validated,
                fmt_opt(c.speedup),
                if c.cached { "hit" } else { "miss" }
            );
            j.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ],\n  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"index\": {}, \"workload\": \"{}\", \"mode\": \"{}\", \
                 \"settings\": \"{}\", \"config_hash\": \"{:016x}\", \"class\": \"{}\", \
                 \"attempts\": {}, \"error\": \"{}\"}}",
                f.index.map_or("null".to_string(), |i| i.to_string()),
                f.workload,
                f.mode,
                f.settings,
                f.config_hash,
                f.class.key(),
                f.attempts,
                json_escape(&f.error)
            );
            j.push_str(if i + 1 < self.failures.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ]\n}\n");
        j
    }
}

/// Extracts `"key": <number>` from one line of sweep JSON.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` from one line of sweep JSON.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"key": true|false` from one line of sweep JSON.
fn field_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// A parsed shard-file baseline row.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedBaseline {
    /// Benchmark name.
    pub workload: String,
    /// Baseline cycles on the chosen path.
    pub replay_cycles: u64,
    /// Capture run's cycle count (0 = v1).
    pub capture_cycles: u64,
    /// Stream agreement (None without a reference).
    pub agreement: Option<f64>,
    /// Whether the workload escalated.
    pub escalate: bool,
}

/// A parsed shard-file cell row.
#[derive(Debug, Clone)]
pub struct ParsedCell {
    /// Flat job index.
    pub index: usize,
    /// Benchmark name.
    pub workload: String,
    /// Mode key (see [`PrefetchMode::key`]).
    pub mode: String,
    /// Canonical settings string.
    pub settings: String,
    /// Execution path (`replay`/`cycle`/`skip`).
    pub path: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Speedup over the workload baseline.
    pub speedup: Option<f64>,
    /// Validation outcome.
    pub validated: bool,
}

/// A parsed shard-file quarantine row.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFailure {
    /// Flat job index (`None` = a workload-baseline failure).
    pub index: Option<usize>,
    /// Benchmark name.
    pub workload: String,
    /// Mode key, or `"baseline"`.
    pub mode: String,
    /// Canonical settings string.
    pub settings: String,
    /// Classified cause (records written before classes existed parse
    /// as [`FailureClass::Panic`]).
    pub class: FailureClass,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// Final panic message.
    pub error: String,
}

/// A parsed shard file.
#[derive(Debug)]
pub struct ShardFile {
    /// Sweep name.
    pub sweep: String,
    /// Scale label.
    pub scale: String,
    /// Trace format.
    pub trace_format: u16,
    /// Shard index.
    pub shard: usize,
    /// Shard count.
    pub of: usize,
    /// Full-sweep job count.
    pub total_jobs: usize,
    /// Baselines this shard recorded.
    pub baselines: Vec<ParsedBaseline>,
    /// Cells this shard ran.
    pub cells: Vec<ParsedCell>,
    /// Jobs this shard quarantined.
    pub failures: Vec<ParsedFailure>,
}

/// Parses one shard file written by [`ShardRun::to_json`].
///
/// # Errors
/// A human-readable message naming the missing or malformed field.
pub fn parse_shard(json: &str) -> Result<ShardFile, String> {
    let mut sweep = None;
    let mut scale = None;
    let mut trace_format = None;
    let mut shard = None;
    let mut of = None;
    let mut total_jobs = None;
    let mut schema = None;
    let mut baselines = Vec::new();
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut section = "";
    for line in json.lines() {
        let t = line.trim_start();
        if t.starts_with("\"baselines\": [") {
            section = "baselines";
        } else if t.starts_with("\"cells\": [") {
            section = "cells";
        } else if t.starts_with("\"failures\": [") {
            section = "failures";
        } else if section == "baselines" && t.starts_with('{') {
            baselines.push(ParsedBaseline {
                workload: field_str(line, "workload").ok_or("baseline missing workload")?,
                replay_cycles: field_num(line, "replay_cycles")
                    .ok_or("baseline missing replay_cycles")? as u64,
                capture_cycles: field_num(line, "capture_cycles")
                    .ok_or("baseline missing capture_cycles")?
                    as u64,
                agreement: field_num(line, "agreement"),
                escalate: field_bool(line, "escalate").ok_or("baseline missing escalate")?,
            });
        } else if section == "cells" && t.starts_with('{') {
            cells.push(ParsedCell {
                index: field_num(line, "index").ok_or("cell missing index")? as usize,
                workload: field_str(line, "workload").ok_or("cell missing workload")?,
                mode: field_str(line, "mode").ok_or("cell missing mode")?,
                settings: field_str(line, "settings").ok_or("cell missing settings")?,
                path: field_str(line, "path").ok_or("cell missing path")?,
                cycles: field_num(line, "cycles").ok_or("cell missing cycles")? as u64,
                speedup: field_num(line, "speedup"),
                validated: field_bool(line, "validated").ok_or("cell missing validated")?,
            });
        } else if section == "failures" && t.starts_with('{') {
            failures.push(ParsedFailure {
                index: field_num(line, "index").map(|v| v as usize),
                workload: field_str(line, "workload").ok_or("failure missing workload")?,
                mode: field_str(line, "mode").ok_or("failure missing mode")?,
                settings: field_str(line, "settings").ok_or("failure missing settings")?,
                class: FailureClass::from_key(&field_str(line, "class").unwrap_or_default()),
                attempts: field_num(line, "attempts").ok_or("failure missing attempts")? as u32,
                error: field_str(line, "error").unwrap_or_default(),
            });
        } else {
            if let Some(v) = field_str(line, "sweep") {
                sweep = Some(v);
            }
            if let Some(v) = field_str(line, "scale") {
                scale = Some(v);
            }
            if let Some(v) = field_num(line, "trace_format") {
                trace_format = Some(v as u16);
            }
            if let Some(v) = field_num(line, "schema") {
                schema = Some(v as u32);
            }
            if let Some(v) = field_num(line, "shard") {
                shard = Some(v as usize);
            }
            if let Some(v) = field_num(line, "of") {
                of = Some(v as usize);
            }
            if let Some(v) = field_num(line, "total_jobs") {
                total_jobs = Some(v as usize);
            }
        }
    }
    if schema != Some(SWEEP_SCHEMA_VERSION) {
        return Err(format!(
            "shard schema {schema:?} != supported {SWEEP_SCHEMA_VERSION}"
        ));
    }
    Ok(ShardFile {
        sweep: sweep.ok_or("missing sweep name")?,
        scale: scale.ok_or("missing scale")?,
        trace_format: trace_format.ok_or("missing trace_format")?,
        shard: shard.ok_or("missing shard index")?,
        of: of.ok_or("missing shard count")?,
        total_jobs: total_jobs.ok_or("missing total_jobs")?,
        baselines,
        cells,
        failures,
    })
}

/// A complete, coverage-checked sweep reassembled from shard files.
#[derive(Debug)]
pub struct MergedSweep {
    /// Sweep name.
    pub sweep: String,
    /// Scale label.
    pub scale: String,
    /// Trace format.
    pub trace_format: u16,
    /// Number of shards merged.
    pub shards: usize,
    /// Baselines, deduped, sorted by workload name.
    pub baselines: Vec<ParsedBaseline>,
    /// All cells, ascending by flat index, exactly `0..total_jobs`.
    pub cells: Vec<ParsedCell>,
    /// Quarantined jobs across all shards, deduped, baseline failures
    /// first then ascending by flat index.
    pub failures: Vec<ParsedFailure>,
}

fn approx_eq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => format!("{x:.4}") == format!("{y:.4}"),
        _ => false,
    }
}

/// Merges a set of shard files into one coverage-checked sweep.
///
/// # Errors
/// * inconsistent headers (different sweep/scale/format/total/shard
///   count), duplicate shard ids;
/// * **coverage gaps**: any flat index in `0..total_jobs` not present
///   exactly once (the error lists the missing indices — this is the
///   check the nightly merge job fails on);
/// * baselines recorded differently by two shards (stale-cache mixing).
pub fn merge_shards(files: &[ShardFile]) -> Result<MergedSweep, String> {
    let first = files.first().ok_or("no shard files to merge")?;
    let mut seen_shards = Vec::new();
    for f in files {
        if (
            f.sweep.as_str(),
            f.scale.as_str(),
            f.trace_format,
            f.total_jobs,
            f.of,
        ) != (
            first.sweep.as_str(),
            first.scale.as_str(),
            first.trace_format,
            first.total_jobs,
            first.of,
        ) {
            return Err(format!(
                "shard {}/{} ({} @ {}) does not match shard {}/{} ({} @ {})",
                f.shard, f.of, f.sweep, f.scale, first.shard, first.of, first.sweep, first.scale
            ));
        }
        if f.shard >= f.of {
            return Err(format!("shard index {} out of range for {}", f.shard, f.of));
        }
        if seen_shards.contains(&f.shard) {
            return Err(format!("shard {} appears twice", f.shard));
        }
        seen_shards.push(f.shard);
    }

    // Coverage: every flat index exactly once.
    let total = first.total_jobs;
    let mut cells: Vec<&ParsedCell> = files.iter().flat_map(|f| &f.cells).collect();
    cells.sort_by_key(|c| c.index);
    let mut missing = Vec::new();
    let mut dup = Vec::new();
    let mut it = cells.iter().peekable();
    for want in 0..total {
        match it.peek() {
            Some(c) if c.index == want => {
                it.next();
                while matches!(it.peek(), Some(c) if c.index == want) {
                    dup.push(want);
                    it.next();
                }
            }
            _ => missing.push(want),
        }
    }
    let extra: Vec<usize> = it.map(|c| c.index).collect();
    if !missing.is_empty() || !dup.is_empty() || !extra.is_empty() {
        return Err(format!(
            "shard coverage broken: {} missing {:?}, {} duplicated {:?}, {} out of range {:?} \
             (of {total} jobs across {} shard files)",
            missing.len(),
            &missing[..missing.len().min(20)],
            dup.len(),
            &dup[..dup.len().min(20)],
            extra.len(),
            &extra[..extra.len().min(20)],
            files.len(),
        ));
    }

    // Baselines: shards sharing a workload must agree exactly — a
    // mismatch means shards ran against different caches or configs.
    let mut by_wl: BTreeMap<&str, &ParsedBaseline> = BTreeMap::new();
    for b in files.iter().flat_map(|f| &f.baselines) {
        if let Some(prev) = by_wl.get(b.workload.as_str()) {
            let same = prev.replay_cycles == b.replay_cycles
                && prev.capture_cycles == b.capture_cycles
                && prev.escalate == b.escalate
                && approx_eq(prev.agreement, b.agreement);
            if !same {
                return Err(format!(
                    "inconsistent baselines for {} across shards: {prev:?} vs {b:?}",
                    b.workload
                ));
            }
        } else {
            by_wl.insert(&b.workload, b);
        }
    }

    // Quarantines: concatenate, order deterministically (baseline
    // failures first — None sorts before Some — then by index), and
    // dedup exact repeats (a resumed shard reports the same quarantine
    // as its first run).
    let mut failures: Vec<ParsedFailure> = files.iter().flat_map(|f| f.failures.clone()).collect();
    failures.sort_by(|a, b| {
        (a.index, &a.workload, &a.mode, &a.settings).cmp(&(
            b.index,
            &b.workload,
            &b.mode,
            &b.settings,
        ))
    });
    failures.dedup();

    Ok(MergedSweep {
        sweep: first.sweep.clone(),
        scale: first.scale.clone(),
        trace_format: first.trace_format,
        shards: files.len(),
        baselines: by_wl.into_values().cloned().collect(),
        cells: cells.into_iter().cloned().collect(),
        failures,
    })
}

fn mode_label_for_key(key: &str) -> String {
    PrefetchMode::from_key(key).map_or_else(|| key.to_string(), |m| m.label().to_string())
}

/// Renders the merged sweep as Markdown tables. Deliberately contains
/// **only deterministic simulation data** — no cache status, no wall
/// times — so the output is byte-identical for any (jobs, shard-count)
/// split of the same sweep (pinned by `tests/sweep_farm.rs`).
pub fn render_merged(m: &MergedSweep) -> String {
    let mut out = format!(
        "# Sweep: {} — scale {}, trace v{}, {} jobs\n\n",
        m.sweep,
        m.scale,
        m.trace_format,
        m.cells.len()
    );

    out += "## Stream agreement (replay baseline vs capture run)\n\n";
    out += "| Benchmark | Capture cycles | Replay cycles | Agreement | Escalated |\n";
    out += "|---|---|---|---|---|\n";
    for b in &m.baselines {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            b.workload,
            if b.capture_cycles > 0 {
                b.capture_cycles.to_string()
            } else {
                "n/a (v1)".to_string()
            },
            b.replay_cycles,
            b.agreement.map_or("n/a".to_string(), |a| format!("{a:.4}")),
            if b.escalate { "yes" } else { "no" }
        );
    }
    out += "\n## Cells\n\n";
    out += "| # | Benchmark | Mode | Settings | Path | Cycles | Speedup | OK |\n";
    out += "|---|---|---|---|---|---|---|---|\n";
    for c in &m.cells {
        let failed = c.path == "failed";
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            c.index,
            c.workload,
            mode_label_for_key(&c.mode),
            c.settings,
            c.path,
            if failed {
                "-".to_string()
            } else {
                c.cycles.to_string()
            },
            c.speedup.map_or("-".to_string(), |s| format!("{s:.4}")),
            if failed {
                "FAILED"
            } else if c.validated {
                "yes"
            } else {
                "NO"
            }
        );
    }

    if !m.failures.is_empty() {
        out += "\n## Quarantined cells\n\n";
        out += "| # | Benchmark | Mode | Settings | Class | Attempts | Error |\n";
        out += "|---|---|---|---|---|---|---|\n";
        for f in &m.failures {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                f.index.map_or("-".to_string(), |i| i.to_string()),
                f.workload,
                mode_label_for_key(&f.mode),
                f.settings,
                f.class,
                f.attempts,
                f.error.replace('|', "/")
            );
        }
    }

    out += "\n## Summary (per workload × mode)\n\n";
    out += "| Benchmark | Mode | Cells | Geomean | Best | Best settings |\n";
    out += "|---|---|---|---|---|---|\n";
    // First-appearance order over index-sorted cells: deterministic.
    let mut groups: Vec<(String, String)> = Vec::new();
    for c in &m.cells {
        let g = (c.workload.clone(), c.mode.clone());
        if !groups.contains(&g) {
            groups.push(g);
        }
    }
    for (wl, mode) in &groups {
        let members: Vec<&ParsedCell> = m
            .cells
            .iter()
            .filter(|c| &c.workload == wl && &c.mode == mode)
            .collect();
        let speedups: Vec<f64> = members.iter().filter_map(|c| c.speedup).collect();
        let geomean = if speedups.is_empty() {
            0.0
        } else {
            (speedups.iter().map(|v| v.ln()).sum::<f64>() / speedups.len() as f64).exp()
        };
        let best =
            members
                .iter()
                .filter(|c| c.speedup.is_some())
                .fold(None::<&&ParsedCell>, |acc, c| match acc {
                    Some(b) if b.speedup >= c.speedup => Some(b),
                    _ => Some(c),
                });
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.4} | {} | {} |",
            wl,
            mode_label_for_key(mode),
            members.len(),
            geomean,
            best.and_then(|c| c.speedup)
                .map_or("-".to_string(), |s| format!("{s:.4}")),
            best.map_or("-".to_string(), |c| c.settings.clone()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_spec() -> SweepSpec {
        SweepSpec {
            name: "probe",
            base: SystemConfig::paper(),
            modes: vec![PrefetchMode::Stride, PrefetchMode::Manual],
            axes: vec![axes::obs_queue(&[10, 40]), axes::pf_buffer(&[8, 16, 32])],
        }
    }

    #[test]
    fn decode_addresses_every_cell_once() {
        let spec = probe_spec();
        assert_eq!(spec.cells_per_workload(), 2 * 2 * 3);
        let total = spec.total_jobs(2);
        let mut seen = std::collections::HashSet::new();
        for job in 0..total {
            let (wi, mi, vi) = spec.decode(job);
            assert!(wi < 2 && mi < 2 && vi[0] < 2 && vi[1] < 3);
            assert!(seen.insert((wi, mi, vi.clone())), "duplicate {job}");
            let cfg = spec.config_for(&vi);
            assert_eq!(cfg.pf.observation_queue as u64, spec.axes[0].values[vi[0]]);
            assert_eq!(cfg.mem.pf_buffer_entries as u64, spec.axes[1].values[vi[1]]);
        }
        assert_eq!(seen.len(), total);
        // Last axis fastest: consecutive jobs differ in pf_buffer first.
        let (_, _, v0) = spec.decode(0);
        let (_, _, v1) = spec.decode(1);
        assert_eq!(v0[0], v1[0]);
        assert_ne!(v0[1], v1[1]);
    }

    #[test]
    fn config_hash_separates_cells() {
        let spec = probe_spec();
        let a = cell_config_hash(&spec.config_for(&[0, 0]), PrefetchMode::Manual, false);
        let b = cell_config_hash(&spec.config_for(&[1, 0]), PrefetchMode::Manual, false);
        let c = cell_config_hash(&spec.config_for(&[0, 0]), PrefetchMode::Stride, false);
        let d = cell_config_hash(&spec.config_for(&[0, 0]), PrefetchMode::Manual, true);
        assert_ne!(a, b, "axis value must change the key");
        assert_ne!(a, c, "mode must change the key");
        assert_ne!(a, d, "escalation path must change the key");
        // Same config via different construction shares the entry.
        let again = cell_config_hash(&spec.config_for(&[0, 0]), PrefetchMode::Manual, false);
        assert_eq!(a, again);
    }

    #[test]
    fn cell_data_round_trips_through_cache_record() {
        let d = CellData {
            path: CellPath::Replay,
            cycles: 123_456,
            host_iters: 789,
            dep_stalls: 42,
            validated: true,
        };
        assert_eq!(parse_cell_data(&cell_data_json(&d)), Some(d));
        // A schema bump orphans the record.
        let stale = cell_data_json(&d).replace(
            &format!("\"schema\": {SWEEP_SCHEMA_VERSION}"),
            "\"schema\": 0",
        );
        assert_eq!(parse_cell_data(&stale), None);
    }

    #[test]
    fn cell_record_trailer_rejects_corruption() {
        let d = CellData {
            path: CellPath::Failed,
            cycles: 0,
            host_iters: 0,
            dep_stalls: 0,
            validated: false,
        };
        let record = cell_record(&d);
        assert_eq!(parse_cell_record(&record), Some(d));
        // Torn write: any truncation invalidates the trailer.
        for cut in [0, 1, record.len() / 2, record.len() - 1] {
            assert_eq!(parse_cell_record(&record[..cut]), None, "cut at {cut}");
        }
        // A flipped byte in the body breaks the content hash.
        let flipped = record.replacen("cycles", "cycIes", 1);
        assert_eq!(parse_cell_record(&flipped), None);
        // A record missing the magic field is schema drift.
        let drifted = cell_record(&d).replace(CELL_MAGIC, "other-cache-kind");
        assert_eq!(parse_cell_record(&drifted), None);
        assert_eq!(parse_cell_record("not a record at all"), None);
    }

    #[test]
    fn merge_rejects_coverage_gaps_and_mismatches() {
        let cell = |index: usize| ParsedCell {
            index,
            workload: "W".into(),
            mode: "manual".into(),
            settings: "-".into(),
            path: "replay".into(),
            cycles: 1,
            speedup: Some(1.0),
            validated: true,
        };
        let file = |shard: usize, of: usize, idx: &[usize]| ShardFile {
            sweep: "s".into(),
            scale: "tiny".into(),
            trace_format: 2,
            shard,
            of,
            total_jobs: 4,
            baselines: vec![],
            cells: idx.iter().map(|&i| cell(i)).collect(),
            failures: vec![],
        };
        // Complete 2-shard split merges.
        let ok = merge_shards(&[file(0, 2, &[0, 2]), file(1, 2, &[1, 3])]).unwrap();
        assert_eq!(ok.cells.len(), 4);
        // A missing shard is a coverage error naming the gap.
        let err = merge_shards(&[file(0, 2, &[0, 2])]).unwrap_err();
        assert!(err.contains("missing [1, 3]"), "{err}");
        // Duplicate indices are rejected.
        let err = merge_shards(&[file(0, 2, &[0, 1, 2]), file(1, 2, &[1, 3])]).unwrap_err();
        assert!(err.contains("duplicated"), "{err}");
        // Mixed shard universes are rejected.
        let err = merge_shards(&[file(0, 2, &[0, 2]), file(0, 4, &[1, 3])]).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn shard_json_round_trips() {
        let run = ShardRun {
            sweep: "probe",
            scale: "tiny".into(),
            trace_format: 2,
            shard: (1, 4),
            total_jobs: 24,
            baselines: vec![WorkloadBaseline {
                workload: "IntSort",
                replay_cycles: 1000,
                capture_cycles: 1100,
                agreement: Some(1000.0 / 1100.0),
                escalate: false,
                reference_cycles: 1000,
            }],
            cells: vec![CellResult {
                index: 1,
                workload: "IntSort",
                mode: PrefetchMode::Manual,
                settings: vec![("obs_queue", 10), ("pf_buffer", 16)],
                path: CellPath::Replay,
                cycles: 500,
                host_iters: 10,
                dep_stalls: 2,
                validated: true,
                speedup: Some(2.0),
                cached: false,
            }],
            failures: vec![FailureRecord {
                index: Some(2),
                workload: "IntSort".into(),
                mode: "stride".into(),
                settings: "obs_queue=10 pf_buffer=64".into(),
                config_hash: 0xabcd,
                class: FailureClass::Timeout,
                attempts: 3,
                error: "injected \"panic\"".into(),
            }],
            registry: Registry::new(),
        };
        let f = parse_shard(&run.to_json()).unwrap();
        assert_eq!(f.sweep, "probe");
        assert_eq!((f.shard, f.of, f.total_jobs), (1, 4, 24));
        assert_eq!(f.baselines.len(), 1);
        assert_eq!(f.baselines[0].capture_cycles, 1100);
        assert!(!f.baselines[0].escalate);
        assert_eq!(f.cells.len(), 1);
        assert_eq!(f.cells[0].settings, "obs_queue=10 pf_buffer=16");
        assert_eq!(f.cells[0].mode, "manual");
        assert_eq!(f.cells[0].speedup, Some(2.0));
        assert_eq!(f.failures.len(), 1);
        assert_eq!(f.failures[0].index, Some(2));
        assert_eq!(f.failures[0].mode, "stride");
        assert_eq!(f.failures[0].class, FailureClass::Timeout);
        assert_eq!(f.failures[0].attempts, 3);
    }

    #[test]
    fn journal_entries_round_trip_bit_exact() {
        let b = WorkloadBaseline {
            workload: "HJ-8",
            replay_cycles: 12345,
            capture_cycles: 13000,
            agreement: Some(12345.0 / 13000.0),
            escalate: false,
            reference_cycles: 12345,
        };
        let (wl, jb) = parse_journal_baseline(&journal_baseline_entry(&b, None)).unwrap();
        assert_eq!(wl, "HJ-8");
        assert_eq!(jb.replay_cycles, 12345);
        // Bit-exact, not approximate: resumed merges must stay
        // byte-identical.
        assert_eq!(
            jb.agreement.map(f64::to_bits),
            b.agreement.map(f64::to_bits)
        );
        assert!(jb.error.is_none());

        let c = CellResult {
            index: 17,
            workload: "HJ-8",
            mode: PrefetchMode::Manual,
            settings: vec![("obs_queue", 10)],
            path: CellPath::Failed,
            cycles: 0,
            host_iters: 0,
            dep_stalls: 0,
            validated: false,
            speedup: None,
            cached: false,
        };
        let rec = FailureRecord {
            index: Some(17),
            workload: "HJ-8".into(),
            mode: "manual".into(),
            settings: "obs_queue=10".into(),
            config_hash: 1,
            class: FailureClass::Livelock,
            attempts: 3,
            error: "boom".into(),
        };
        let (idx, jc) = parse_journal_cell(&journal_cell_entry(&c, Some(&rec))).unwrap();
        assert_eq!(idx, 17);
        assert_eq!(jc.path, CellPath::Failed);
        assert_eq!(jc.class, FailureClass::Livelock);
        assert_eq!(jc.attempts, Some(3));
        assert_eq!(jc.error.as_deref(), Some("boom"));
        // A pre-class journal line (no "class" field) parses as panic.
        let (_, old) = parse_journal_cell(&journal_cell_entry(&c, None)).unwrap();
        assert_eq!(old.class, FailureClass::Panic);
    }
}
