//! Developer diagnostic: simulation wall-clock speed and quick speedup
//! sanity numbers for two representative benchmarks at small scale.
//!
//! ```text
//! cargo run --release -p etpp-sim --bin speedcheck
//! ```

use etpp_sim::{run, PrefetchMode, SystemConfig};
use etpp_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    let cfg = SystemConfig::paper();
    for (name, w) in [
        ("IntSort", Box::new(etpp_workloads::intsort::IntSort) as Box<dyn Workload>),
        ("HJ-8", Box::new(etpp_workloads::hashjoin::Hj8)),
    ] {
        let t0 = Instant::now();
        let wl = w.build(Scale::Small);
        eprintln!("{name}: build {:?} trace_ops={}", t0.elapsed(), wl.trace.len());
        for mode in [PrefetchMode::None, PrefetchMode::Manual, PrefetchMode::Software] {
            let t = Instant::now();
            match run(&cfg, mode, &wl) {
                Ok(r) => {
                    eprintln!(
                        "  {:>10}: cycles={:>12} ipc={:.2} wall={:?} validated={} l1hit={:.3} late={} pfissued={} pfdrops={} redund={} util={:.2}",
                        mode.label(), r.cycles, r.ipc(), t.elapsed(), r.validated,
                        r.mem.l1.read_hit_rate(), r.mem.l1.late_prefetch_merges,
                        r.mem.prefetches_issued, r.mem.prefetch_drops,
                        r.mem.prefetch_l1_redundant,
                        r.mem.l1.prefetch_utilisation(),
                    );
                    eprintln!("             lookahead={}", r.final_lookahead);
                    if let Some(pf) = &r.pf {
                        eprintln!("             events={} insts={} emitted={} obsdrop={} reqdrop={}",
                            pf.events_run, pf.insts_executed, pf.prefetches_emitted, pf.obs_dropped, pf.req_dropped);
                    }
                }
                Err(s) => eprintln!("  {:>10}: skipped ({s})", mode.label()),
            }
        }
    }
}
