//! Developer diagnostic: simulation wall-clock speed for the cycle-level
//! core and the trace-replay fast path across engine modes, with a
//! machine-readable `BENCH_speedcheck.json` (schema 8) so the perf
//! trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release -p etpp-sim --bin speedcheck            # Small scale
//! cargo run --release -p etpp-sim --bin speedcheck -- --smoke # Tiny, CI
//! cargo run --release -p etpp-sim --bin speedcheck -- --jobs 4
//! cargo run --release -p etpp-sim --bin speedcheck -- --json out.json
//! cargo run --release -p etpp-sim --bin speedcheck -- --compare prev.json
//! cargo run --release -p etpp-sim --bin speedcheck -- --telemetry
//! ```
//!
//! Both paths report `accesses_per_s` (host throughput over the demand
//! stream) and the deterministic event-horizon *fast-forward factor*
//! (simulated cycles per driver visit) — PR 2 brought programmable-mode
//! replay within reach of the baselines, PR 3's horizon-aware cycle
//! core stopped the reference simulations from ticking through
//! 99%-plus-stall spans one cycle at a time, and PR 4's dense-span fusion +
//! wake-driven structural stalls put the programmable cycle path ahead
//! of where the baselines used to be. Schema 3 adds the per-source
//! *visit attribution* (`visits`) on every cycle row — which horizon
//! source ended each driver visit — and at least one compiled
//! programmable mode (`converted`) so the regression gate guards the
//! hot path the paper is about. Schema 4 adds `cycle_agreement` to
//! every replay row — replayed cycles over the cycle core's cycles for
//! the same (workload, mode) — now that dependence-aware replay (trace
//! format v2) makes absolute cycle counts comparable, plus the
//! `dep_stalls` serialisation count behind it. Schema 5 puts prefetch
//! *quality* next to throughput: every cycle row carries
//! `late_pf_merges` (demand misses that caught an in-flight prefetch),
//! and `--telemetry` adds the full lifecycle classification
//! (`issued`/`accurate`/`late`/`early_evicted`/`useless`) from a
//! second, untimed telemetry-enabled run per cell — untimed because the
//! timed cells stay telemetry-off, which is what the throughput gates
//! measure. Schema 6 adds the `sweep` stanza: a small composed sweep
//! (see `etpp_sim::sweeps`) run twice against a scratch result cache —
//! cold then warm — recording the `sweep.cache.{hit,miss,escalated}`
//! counters and wall time of each pass. The stanza is its own gate: the
//! warm pass must hit on every lookup (one stale-keyed cell would
//! silently resimulate on every farm run) and must not escalate.
//! Schema 7 arms the cooperative watchdog (see `etpp_sim::watchdog`)
//! on every *timed* cell with a generous budget that never fires, so
//! the throughput numbers — and the overhead gate below — measure the
//! production configuration: strided deadline polls in the driver and
//! memory system included. The report records it in the `watchdog`
//! stanza. Schema 8 adds the engine-zoo modes (`PrefetchMode::ZOO`:
//! `rpt_stride`, `pc_delta`, `adaptive`) to the cell grid so the new
//! engines' throughput rides the same gates; against a schema-7
//! report, `--compare` lists their rows as coverage drift, not
//! failures.
//!
//! `--jobs N` shards the (workload × path × mode) cell grid across N
//! worker threads; each cell's `wall_s` is still measured around its
//! own single-threaded simulation inside the worker, so
//! `accesses_per_s` stays comparable with serial baselines (modulo
//! co-scheduling noise, which the deterministic counters are immune
//! to).
//!
//! `--compare prev.json` gates the current report against a previous
//! run's (e.g. the last CI artifact): any (workload, path, mode) cell
//! whose `accesses_per_s` dropped by more than 20% *and* whose
//! fast-forward factor shrank too fails the check. Cells present on
//! only one side (schema drift, skipped modes, coverage changes) are
//! listed explicitly so mode-coverage drift is visible in CI logs.
//! `--compare` also applies the *overhead gate*: the geometric-mean
//! throughput ratio across all compared cells must stay above 0.99 —
//! per-cell noise averages out across the grid, so a systematic ≳1%
//! slowdown (the combined budget for the disabled telemetry hooks and
//! the armed watchdog's strided polls) fails even when no individual
//! cell trips the 20% gate.

use etpp_mem::LifecycleCounts;
use etpp_sim::experiments::{map_indexed, sample_interval};
use etpp_sim::replay as rp;
use etpp_sim::sweeps;
use etpp_sim::{
    run_telemetry, run_watched, PrefetchMode, SystemConfig, TelemetrySpec, VisitCounts, Watchdog,
};
use etpp_workloads::{BuiltWorkload, Scale, Workload};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Per-cell deadline for the timed grid: generous enough that it can
/// never fire on any supported scale, so arming it changes wall time
/// only by the strided poll overhead the gate is meant to measure —
/// never the simulation results (pinned by the equivalence suite).
const WATCHDOG_BUDGET: Duration = Duration::from_secs(3600);

#[derive(Debug)]
struct CycleRow {
    mode: PrefetchMode,
    cycles: u64,
    host_iters: u64,
    wall_s: f64,
    accesses_per_s: f64,
    validated: bool,
    visits: VisitCounts,
    /// Demand misses that merged into an in-flight prefetch (free from
    /// `MemStats`; prefetch timeliness next to throughput).
    late_pf_merges: u64,
    /// Full lifecycle classification from a second, untimed
    /// telemetry-enabled run (`--telemetry` only; the timed run above
    /// stays telemetry-off).
    lifecycle: Option<LifecycleCounts>,
}

#[derive(Debug)]
struct ReplayRow {
    mode: PrefetchMode,
    cycles: u64,
    host_iters: u64,
    dep_stalls: u64,
    wall_s: f64,
    accesses_per_s: f64,
    host_speedup: Option<f64>,
    /// Replayed cycles over the cycle core's cycles for the same
    /// (workload, mode): the absolute-cycle agreement the
    /// dependence-aware front end buys (1.0 = exact).
    cycle_agreement: Option<f64>,
    validated: bool,
}

/// Event-horizon fast-forward factor: simulated cycles per visited host
/// iteration. Deterministic (unlike wall time), so the CI gates key on
/// it.
fn ff(cycles: u64, host_iters: u64) -> f64 {
    cycles as f64 / host_iters.max(1) as f64
}

impl CycleRow {
    fn ff(&self) -> f64 {
        ff(self.cycles, self.host_iters)
    }
}

impl ReplayRow {
    fn ff(&self) -> f64 {
        ff(self.cycles, self.host_iters)
    }
}

#[derive(Debug)]
struct WorkloadReport {
    name: &'static str,
    trace_accesses: u64,
    cycle: Vec<CycleRow>,
    replay: Vec<ReplayRow>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Cache-effectiveness counters of one sweep pass (cold or warm) over
/// the schema-6 mini sweep.
#[derive(Debug)]
struct SweepPass {
    hit: u64,
    miss: u64,
    escalated: u64,
    wall_s: f64,
}

/// The schema-6 `sweep` stanza: the same mini composed sweep run cold
/// then warm against a scratch result cache.
#[derive(Debug)]
struct SweepStanza {
    cells: usize,
    cold: SweepPass,
    warm: SweepPass,
}

/// Runs the mini composed sweep twice against a scratch cache dir and
/// returns both passes' counters. The scratch dir is removed first (a
/// leftover from a previous run must not turn the cold pass warm) and
/// cleaned up after.
fn run_sweep_stanza(
    cfg: &SystemConfig,
    workloads: &[BuiltWorkload],
    captures: &[(
        etpp_trace::CapturedTrace,
        rp::CaptureSource,
        std::time::Duration,
    )],
    scale_label: &str,
    jobs: usize,
) -> SweepStanza {
    let spec = sweeps::SweepSpec {
        name: "speedcheck-mini",
        base: *cfg,
        modes: vec![PrefetchMode::Stride, PrefetchMode::Manual],
        axes: vec![sweeps::axes::obs_queue(&[10, 40])],
    };
    let keyed: Vec<rp::KeyedCapture> = workloads
        .iter()
        .zip(captures)
        .map(|(_, (trace, source, _))| rp::KeyedCapture {
            content_hash: etpp_trace::content_hash_versioned(
                &trace.records,
                etpp_trace::FORMAT_VERSION,
            ),
            trace: trace.clone(),
            source: *source,
            trace_format: etpp_trace::FORMAT_VERSION,
        })
        .collect();
    let cache = std::env::temp_dir().join(format!("etpp-speedcheck-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let opts = sweeps::SweepOptions {
        cache_dir: Some(cache.clone()),
        ..sweeps::SweepOptions::new(jobs, scale_label)
    };
    let pass = || {
        let t = Instant::now();
        let run = sweeps::run_sweep(&spec, workloads, &keyed, &opts);
        (
            SweepPass {
                hit: run.cache_hits(),
                miss: run.cache_misses(),
                escalated: run.escalations(),
                wall_s: t.elapsed().as_secs_f64(),
            },
            run.cells.len(),
        )
    };
    let (cold, cells) = pass();
    let (warm, _) = pass();
    let _ = std::fs::remove_dir_all(&cache);
    eprintln!(
        "sweep stanza: {cells} cells; cold {}h/{}m/{}e in {:.3}s, warm {}h/{}m/{}e in {:.3}s",
        cold.hit,
        cold.miss,
        cold.escalated,
        cold.wall_s,
        warm.hit,
        warm.miss,
        warm.escalated,
        warm.wall_s
    );
    SweepStanza { cells, cold, warm }
}

fn render_json(
    scale: &str,
    jobs: usize,
    modes: &[PrefetchMode],
    reports: &[WorkloadReport],
    sweep: &SweepStanza,
) -> String {
    let mut j = String::new();
    j.push_str("{\n  \"schema\": 8,\n  \"tool\": \"speedcheck\",\n");
    let _ = writeln!(j, "  \"scale\": \"{}\",", json_escape(scale));
    let _ = writeln!(j, "  \"jobs\": {jobs},");
    let mode_list = modes
        .iter()
        .map(|m| format!("\"{}\"", m.key()))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(j, "  \"modes\": [{mode_list}],");
    let _ = writeln!(
        j,
        "  \"watchdog\": {{\"armed\": true, \"budget_s\": {}}},",
        WATCHDOG_BUDGET.as_secs()
    );
    let sweep_pass = |p: &SweepPass| {
        format!(
            "{{\"hit\": {}, \"miss\": {}, \"escalated\": {}, \"wall_s\": {:.6}}}",
            p.hit, p.miss, p.escalated, p.wall_s
        )
    };
    let _ = writeln!(
        j,
        "  \"sweep\": {{\"cells\": {}, \"cold\": {}, \"warm\": {}}},",
        sweep.cells,
        sweep_pass(&sweep.cold),
        sweep_pass(&sweep.warm)
    );
    j.push_str("  \"workloads\": [\n");
    for (wi, w) in reports.iter().enumerate() {
        let _ = writeln!(j, "    {{\n      \"name\": \"{}\",", json_escape(w.name));
        let _ = writeln!(j, "      \"trace_accesses\": {},", w.trace_accesses);
        j.push_str("      \"cycle\": [\n");
        for (i, r) in w.cycle.iter().enumerate() {
            let visits = r
                .visits
                .iter()
                .filter(|(_, count)| *count > 0)
                .map(|(key, count)| format!("\"{key}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            let lifecycle = r.lifecycle.as_ref().map_or(String::from("null"), |l| {
                format!(
                    "{{\"issued\": {}, \"accurate\": {}, \"late\": {}, \
                     \"early_evicted\": {}, \"useless\": {}}}",
                    l.issued, l.accurate, l.late, l.early_evicted, l.useless
                )
            });
            let _ = write!(
                j,
                "        {{\"mode\": \"{}\", \"cycles\": {}, \"host_iters\": {}, \
                 \"fast_forward\": {:.3}, \"wall_s\": {:.6}, \"accesses_per_s\": {:.1}, \
                 \"validated\": {}, \"late_pf_merges\": {}, \"lifecycle\": {lifecycle}, \
                 \"visits\": {{{visits}}}}}",
                r.mode.key(),
                r.cycles,
                r.host_iters,
                r.ff(),
                r.wall_s,
                r.accesses_per_s,
                r.validated,
                r.late_pf_merges
            );
            j.push_str(if i + 1 < w.cycle.len() { ",\n" } else { "\n" });
        }
        j.push_str("      ],\n      \"replay\": [\n");
        for (i, r) in w.replay.iter().enumerate() {
            let speedup = r
                .host_speedup
                .map_or("null".to_string(), |s| format!("{s:.3}"));
            let agreement = r
                .cycle_agreement
                .map_or("null".to_string(), |a| format!("{a:.3}"));
            let _ = write!(
                j,
                "        {{\"mode\": \"{}\", \"cycles\": {}, \"host_iters\": {}, \
                 \"fast_forward\": {:.3}, \"wall_s\": {:.6}, \"accesses_per_s\": {:.1}, \
                 \"host_speedup\": {}, \"cycle_agreement\": {}, \"dep_stalls\": {}, \
                 \"validated\": {}}}",
                r.mode.key(),
                r.cycles,
                r.host_iters,
                r.ff(),
                r.wall_s,
                r.accesses_per_s,
                speedup,
                agreement,
                r.dep_stalls,
                r.validated
            );
            j.push_str(if i + 1 < w.replay.len() { ",\n" } else { "\n" });
        }
        j.push_str("      ]\n    }");
        j.push_str(if wi + 1 < reports.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

// ---------------------------------------------------------------------------
// --compare: host-profile regression gate against a previous report
// ---------------------------------------------------------------------------

/// Extracts `"key": <number>` from a one-cell JSON line (speedcheck's
/// own output format; not a general JSON parser).
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` from a line of speedcheck JSON.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// One parsed throughput cell: host accesses/s plus the deterministic
/// fast-forward factor (absent in schema-1 cycle rows).
struct Cell {
    key: (String, String, String),
    accesses_per_s: f64,
    fast_forward: Option<f64>,
}

/// A parsed speedcheck report (schema 1 or 2): the run scale and its
/// `(workload, path, mode)` cells. Cells without an `accesses_per_s`
/// field (schema 1 cycle rows) are omitted.
struct Report {
    scale: String,
    cells: Vec<Cell>,
}

fn parse_report(json: &str) -> Report {
    let mut scale = String::new();
    let mut cells = Vec::new();
    let mut workload = String::new();
    let mut path = String::new();
    for line in json.lines() {
        if let Some(s) = field_str(line, "scale") {
            scale = s;
        } else if let Some(name) = field_str(line, "name") {
            workload = name;
        } else if line.trim_start().starts_with("\"cycle\": [") {
            path = "cycle".to_string();
        } else if line.trim_start().starts_with("\"replay\": [") {
            path = "replay".to_string();
        } else if let (Some(mode), Some(aps)) =
            (field_str(line, "mode"), field_num(line, "accesses_per_s"))
        {
            cells.push(Cell {
                key: (workload.clone(), path.clone(), mode),
                accesses_per_s: aps,
                fast_forward: field_num(line, "fast_forward"),
            });
        }
    }
    Report { scale, cells }
}

/// Compares the freshly written report against a previous one, failing
/// on any cell whose host throughput regressed by more than
/// `threshold` (0.20 = 20%). A wall-clock drop alone can be runner
/// noise (tiny-scale cells run in tens of milliseconds), so a cell only
/// counts as regressed when its *deterministic* fast-forward factor
/// shrank too — a pure load spike on a shared CI host leaves the ff
/// untouched, while a real scheduling regression moves both. Reports
/// from different scales are never compared. Returns the number of
/// regressed cells.
fn compare_reports(prev: &str, current: &str, threshold: f64) -> usize {
    let old = parse_report(prev);
    let new = parse_report(current);
    if old.scale != new.scale {
        eprintln!(
            "compare: skipping (previous report is \"{}\" scale, current is \"{}\")",
            old.scale, new.scale
        );
        return 0;
    }
    // Cells present on only one side are never gated, but silent skips
    // have hidden mode-coverage drift before — list them explicitly.
    let missing_from_new: Vec<&Cell> = old
        .cells
        .iter()
        .filter(|c| !new.cells.iter().any(|n| n.key == c.key))
        .collect();
    for c in &missing_from_new {
        eprintln!(
            "note {}/{}/{}: present in previous report but missing from current \
             (coverage drift — cell not gated)",
            c.key.0, c.key.1, c.key.2
        );
    }
    for c in new
        .cells
        .iter()
        .filter(|c| !old.cells.iter().any(|o| o.key == c.key))
    {
        eprintln!(
            "note {}/{}/{}: new cell with no previous counterpart \
             (becomes part of the baseline from this run on)",
            c.key.0, c.key.1, c.key.2
        );
    }
    const FF_SLACK: f64 = 0.05;
    let mut regressions = 0;
    let mut compared = 0;
    let mut log_ratio_sum = 0.0f64;
    for cell in &new.cells {
        let Some(old_cell) = old.cells.iter().find(|c| c.key == cell.key) else {
            continue;
        };
        compared += 1;
        log_ratio_sum +=
            (cell.accesses_per_s / old_cell.accesses_per_s.max(f64::MIN_POSITIVE)).ln();
        let aps_drop = cell.accesses_per_s < old_cell.accesses_per_s * (1.0 - threshold);
        let ff_confirms = match (cell.fast_forward, old_cell.fast_forward) {
            // Deterministic counter also collapsed: a real regression.
            (Some(new_ff), Some(old_ff)) => new_ff < old_ff * (1.0 - FF_SLACK),
            // No ff recorded on either side (schema drift): the
            // wall-clock drop is all the evidence there is.
            _ => true,
        };
        if aps_drop && ff_confirms {
            regressions += 1;
            eprintln!(
                "FAIL {}/{}/{}: accesses/s {:.3e} -> {:.3e} ({:+.1}%) exceeds -{:.0}% gate \
                 (fast-forward {:?} -> {:?})",
                cell.key.0,
                cell.key.1,
                cell.key.2,
                old_cell.accesses_per_s,
                cell.accesses_per_s,
                (cell.accesses_per_s / old_cell.accesses_per_s - 1.0) * 100.0,
                threshold * 100.0,
                old_cell.fast_forward,
                cell.fast_forward,
            );
        } else if aps_drop {
            eprintln!(
                "note {}/{}/{}: accesses/s dropped {:.1}% but fast-forward held \
                 ({:?} -> {:?}) — treating as host noise",
                cell.key.0,
                cell.key.1,
                cell.key.2,
                (1.0 - cell.accesses_per_s / old_cell.accesses_per_s) * 100.0,
                old_cell.fast_forward,
                cell.fast_forward,
            );
        }
    }
    // Overhead gate: the per-cell gate tolerates 20% host noise on
    // tens-of-milliseconds timings, but noise averages out across the
    // grid — the geometric mean of the throughput ratios moves far
    // less. A systematic slowdown (e.g. the disabled telemetry hooks
    // or the armed watchdog's strided polls acquiring real cost on
    // the hot paths) drags the whole grid down together and fails
    // here even when no single cell trips the 20% gate.
    const OVERHEAD_GATE: f64 = 0.99;
    if compared > 0 {
        let geomean = (log_ratio_sum / compared as f64).exp();
        if geomean < OVERHEAD_GATE {
            regressions += 1;
            eprintln!(
                "FAIL overhead gate: geomean throughput ratio {geomean:.4} across \
                 {compared} cells below {OVERHEAD_GATE} (>1% systematic slowdown — \
                 check hot-path hooks that should be free when telemetry is off \
                 and the watchdog's strided deadline polls)"
            );
        } else {
            eprintln!(
                "overhead gate: geomean throughput ratio {geomean:.4} across \
                 {compared} cells (floor {OVERHEAD_GATE})"
            );
        }
    }
    eprintln!(
        "compare: {compared} cells compared, {regressions} regressed (>{:.0}% drop), \
         {} previous cell(s) missing from current, {} new",
        threshold * 100.0,
        missing_from_new.len(),
        new.cells.len() - compared,
    );
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--jobs: positive integer"))
        .unwrap_or(1);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_speedcheck.json".to_string());
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // `--compare-only prev.json new.json` gates two existing reports
    // against each other without running any simulation (CI keeps the
    // gate a separate, individually skippable step this way).
    if let Some(i) = args.iter().position(|a| a == "--compare-only") {
        let (Some(prev_path), Some(new_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: speedcheck --compare-only <prev.json> <new.json>");
            std::process::exit(2);
        };
        let read = |p: &String| {
            std::fs::read_to_string(p).map_err(|e| eprintln!("compare: skipping ({p}: {e})"))
        };
        // A missing previous report is not an error: the first run
        // after the gate lands (or an expired artifact) has nothing to
        // compare against. A missing *new* report is.
        let Ok(new) = std::fs::read_to_string(new_path) else {
            eprintln!("compare: cannot read current report {new_path}");
            std::process::exit(2);
        };
        match read(prev_path) {
            Ok(prev) if compare_reports(&prev, &new, 0.20) > 0 => std::process::exit(1),
            _ => std::process::exit(0),
        }
    }

    let (scale, scale_label) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Small, "small")
    };
    // `converted` guards the compiled programmable hot path — the
    // compiler-generated kernels the paper's Figure 7 "Converted" bars
    // measure — alongside the hand-written `manual` kernels. The zoo
    // modes (schema 8) keep the new engines on the same perf gates.
    let mut modes = vec![
        PrefetchMode::None,
        PrefetchMode::Stride,
        PrefetchMode::GhbRegular,
        PrefetchMode::Converted,
        PrefetchMode::Manual,
    ];
    modes.extend(PrefetchMode::ZOO);

    let cfg = SystemConfig::paper();

    // Build the workloads, then capture each demand stream (one
    // cycle-level baseline run per workload, sharded).
    let defs: [(&str, Box<dyn Workload>); 2] = [
        (
            "IntSort",
            Box::new(etpp_workloads::intsort::IntSort) as Box<dyn Workload>,
        ),
        ("HJ-8", Box::new(etpp_workloads::hashjoin::Hj8)),
    ];
    let mut workloads = Vec::new();
    for (name, w) in &defs {
        let t0 = Instant::now();
        let wl = w.build(scale);
        eprintln!(
            "{name}: build {:?} trace_ops={}",
            t0.elapsed(),
            wl.trace.len()
        );
        workloads.push(wl);
    }
    let captures = map_indexed(jobs, workloads.len(), |i| {
        let t = Instant::now();
        let (trace, src) = rp::load_or_capture(None, &cfg, &workloads[i], scale_label);
        (trace, src, t.elapsed())
    });
    for (wl, (trace, _, took)) in workloads.iter().zip(&captures) {
        eprintln!(
            "{}: capture {} records ({} accesses) in {took:?}",
            wl.name,
            trace.records.len(),
            trace.access_count(),
        );
    }

    // One job per (workload, path, mode) cell. `wall_s` wraps only the
    // cell's own single-threaded simulation, measured inside the
    // worker, so throughput stays comparable with a serial run.
    enum Row {
        Cycle(CycleRow),
        Replay(ReplayRow),
        /// (path label, mode, why) — printed during reassembly so a
        /// vanished cell is visible even without a `--compare` baseline.
        Skipped(&'static str, PrefetchMode, String),
    }
    let paths = 2usize; // 0 = cycle, 1 = replay
    let cell_count = workloads.len() * paths * modes.len();
    let rows = map_indexed(jobs, cell_count, |k| {
        let wi = k / (paths * modes.len());
        let path = (k / modes.len()) % paths;
        let mode = modes[k % modes.len()];
        let wl = &workloads[wi];
        if path == 0 {
            let wd = Watchdog::with_budget(WATCHDOG_BUDGET);
            let t = Instant::now();
            match run_watched(&cfg, mode, wl, &wd) {
                Ok(r) => {
                    let wall = t.elapsed().as_secs_f64();
                    let l1 = &r.mem.l1;
                    let demand_accesses =
                        l1.read_hits + l1.read_misses + l1.write_hits + l1.write_misses;
                    // The timed run above stays telemetry-off (that is
                    // what the throughput gates measure); the lifecycle
                    // classification comes from a separate, untimed
                    // telemetry-enabled run over the same cell.
                    let lifecycle = telemetry.then(|| {
                        let spec = TelemetrySpec::counters_only(sample_interval(scale));
                        run_telemetry(&cfg, mode, wl, &spec)
                            .expect("expressible above")
                            .1
                            .lifecycle
                    });
                    Row::Cycle(CycleRow {
                        mode,
                        cycles: r.cycles,
                        host_iters: r.host_iters,
                        wall_s: wall,
                        accesses_per_s: demand_accesses as f64 / wall,
                        validated: r.validated,
                        visits: r.visits,
                        late_pf_merges: r.mem.l1.late_prefetch_merges,
                        lifecycle,
                    })
                }
                Err(why) => Row::Skipped("cycle", mode, why.to_string()),
            }
        } else {
            let records = &captures[wi].0.records;
            let wd = Watchdog::with_budget(WATCHDOG_BUDGET);
            let t = Instant::now();
            match rp::replay_run_watched(&cfg, mode, wl, records, Some(wd.token())) {
                Ok(r) => {
                    let wall = t.elapsed().as_secs_f64();
                    Row::Replay(ReplayRow {
                        mode,
                        cycles: r.cycles,
                        host_iters: r.host_iters,
                        dep_stalls: r.dep_stalls,
                        wall_s: wall,
                        accesses_per_s: captures[wi].0.access_count() as f64 / wall,
                        host_speedup: None, // filled in below from the cycle row
                        cycle_agreement: None, // likewise
                        validated: r.validated,
                    })
                }
                Err(why) => Row::Skipped("replay", mode, why.to_string()),
            }
        }
    });

    let mut reports = Vec::new();
    let mut rows = rows.into_iter();
    for (wi, wl) in workloads.iter().enumerate() {
        let mut cycle_rows: Vec<CycleRow> = Vec::new();
        let mut replay_rows: Vec<ReplayRow> = Vec::new();
        for _ in 0..paths * modes.len() {
            match rows.next().expect("one row per cell") {
                Row::Cycle(r) => cycle_rows.push(r),
                Row::Replay(mut r) => {
                    let cycle = cycle_rows.iter().find(|c| c.mode == r.mode);
                    r.host_speedup = cycle.map(|c| c.wall_s / r.wall_s);
                    r.cycle_agreement = cycle.map(|c| r.cycles as f64 / c.cycles.max(1) as f64);
                    replay_rows.push(r);
                }
                Row::Skipped(path, mode, why) => {
                    eprintln!("{} {path} {:>13}: skipped ({why})", wl.name, mode.label());
                }
            }
        }
        for r in &cycle_rows {
            eprintln!(
                "{} cycle {:>13}: cycles={:>12} wall={:.3}s validated={} accesses/s={:.2e} ff={:.1}x",
                wl.name,
                r.mode.label(),
                r.cycles,
                r.wall_s,
                r.validated,
                r.accesses_per_s,
                r.ff(),
            );
        }
        for r in &replay_rows {
            eprintln!(
                "{} replay {:>12}: cycles={:>12} wall={:.3}s validated={} accesses/s={:.2e} ff={:.1}x host-speedup={} agree={}",
                wl.name,
                r.mode.label(),
                r.cycles,
                r.wall_s,
                r.validated,
                r.accesses_per_s,
                r.ff(),
                r.host_speedup
                    .map_or("n/a".to_string(), |s| format!("{s:.1}x")),
                r.cycle_agreement
                    .map_or("n/a".to_string(), |a| format!("{a:.3}")),
            );
        }
        reports.push(WorkloadReport {
            name: wl.name,
            trace_accesses: captures[wi].0.access_count(),
            cycle: cycle_rows,
            replay: replay_rows,
        });
    }

    let sweep = run_sweep_stanza(&cfg, &workloads, &captures, scale_label, jobs);
    let json = render_json(scale_label, jobs, &modes, &reports, &sweep);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }

    // Smoke gate for CI: every run must validate, programmable-mode
    // replay must exist (a silently skipped run must not pass the gate
    // it was meant to feed), and the *deterministic* fast-forward
    // factors must show both horizon schedulers actually skipping
    // cycles — the replay front end (PR 2) and the cycle-level core
    // driver (PR 3). Wall-clock host speedup is reported but not gated
    // — two tens-of-milliseconds timings on a loaded CI runner are
    // noise; `--compare` gates throughput against a previous report
    // instead.
    const MIN_PROG_FF: f64 = 1.2;
    const MIN_CYCLE_FF: f64 = 1.5;
    let mut ok = true;
    for w in &reports {
        for r in &w.cycle {
            ok &= r.validated;
            if r.ff() < MIN_CYCLE_FF {
                eprintln!(
                    "FAIL {}: cycle-path fast-forward {:.2}x < {MIN_CYCLE_FF}x for {} \
                     (horizon-aware core not skipping stall cycles)",
                    w.name,
                    r.ff(),
                    r.mode.key(),
                );
                ok = false;
            }
        }
        let mut prog_rows = 0usize;
        for r in &w.replay {
            ok &= r.validated;
            if r.mode.is_programmable() {
                prog_rows += 1;
                if r.ff() < MIN_PROG_FF {
                    eprintln!(
                        "FAIL {}: programmable replay fast-forward {:.2}x < {MIN_PROG_FF}x \
                         (event-horizon scheduler not skipping cycles)",
                        w.name,
                        r.ff()
                    );
                    ok = false;
                }
                if let Some(s) = r.host_speedup {
                    if s < 1.0 {
                        eprintln!(
                            "note {}: programmable replay wall-clock below cycle sim \
                             ({s:.2}x) — informational, not gated",
                            w.name
                        );
                    }
                }
            }
        }
        if prog_rows == 0 {
            eprintln!("FAIL {}: programmable-mode replay never ran", w.name);
            ok = false;
        }
    }
    // Sweep-cache gate: the warm pass over an untouched cache must hit
    // on every lookup and never escalate — a single miss means a cell
    // key is unstable (e.g. nondeterministic config hashing) and the
    // whole farm silently resimulates on every run.
    if sweep.warm.miss > 0 || sweep.warm.escalated > 0 {
        eprintln!(
            "FAIL sweep cache: warm pass missed {} and escalated {} of {} lookups \
             (expected 100% hits — cell keys are unstable)",
            sweep.warm.miss,
            sweep.warm.escalated,
            sweep.warm.hit + sweep.warm.miss,
        );
        ok = false;
    }
    if let Some(prev_path) = compare_path {
        match std::fs::read_to_string(&prev_path) {
            Ok(prev) => {
                if compare_reports(&prev, &json, 0.20) > 0 {
                    ok = false;
                }
            }
            // A missing previous report is not an error: the first run
            // after the gate lands (or an expired artifact) has nothing
            // to compare against.
            Err(e) => eprintln!("compare: skipping ({prev_path}: {e})"),
        }
    }
    if !ok {
        eprintln!("speedcheck: validation, fast-forward or regression gate failed");
        std::process::exit(1);
    }
}
