//! Developer diagnostic: simulation wall-clock speed and quick speedup
//! sanity numbers for two representative benchmarks at small scale — now
//! for both the cycle-level core and the trace-replay fast path, so the
//! speedup from replay is measured, not asserted.
//!
//! ```text
//! cargo run --release -p etpp-sim --bin speedcheck
//! ```

use etpp_sim::replay as rp;
use etpp_sim::{run, PrefetchMode, SystemConfig};
use etpp_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    let cfg = SystemConfig::paper();
    for (name, w) in [
        (
            "IntSort",
            Box::new(etpp_workloads::intsort::IntSort) as Box<dyn Workload>,
        ),
        ("HJ-8", Box::new(etpp_workloads::hashjoin::Hj8)),
    ] {
        let t0 = Instant::now();
        let wl = w.build(Scale::Small);
        eprintln!(
            "{name}: build {:?} trace_ops={}",
            t0.elapsed(),
            wl.trace.len()
        );

        // --- cycle-level core ---------------------------------------------
        let mut cycle_wall = std::collections::HashMap::new();
        for mode in [
            PrefetchMode::None,
            PrefetchMode::Manual,
            PrefetchMode::Software,
        ] {
            let t = Instant::now();
            match run(&cfg, mode, &wl) {
                Ok(r) => {
                    let wall = t.elapsed();
                    cycle_wall.insert(mode, wall);
                    eprintln!(
                        "  cycle {:>10}: cycles={:>12} ipc={:.2} wall={:?} validated={} l1hit={:.3} late={} pfissued={} pfdrops={} redund={} util={:.2}",
                        mode.label(), r.cycles, r.ipc(), wall, r.validated,
                        r.mem.l1.read_hit_rate(), r.mem.l1.late_prefetch_merges,
                        r.mem.prefetches_issued, r.mem.prefetch_drops,
                        r.mem.prefetch_l1_redundant,
                        r.mem.l1.prefetch_utilisation(),
                    );
                    eprintln!("               lookahead={}", r.final_lookahead);
                    if let Some(pf) = &r.pf {
                        eprintln!(
                            "               events={} insts={} emitted={} obsdrop={} reqdrop={}",
                            pf.events_run,
                            pf.insts_executed,
                            pf.prefetches_emitted,
                            pf.obs_dropped,
                            pf.req_dropped
                        );
                    }
                }
                Err(s) => eprintln!("  cycle {:>10}: skipped ({s})", mode.label()),
            }
        }

        // --- trace replay -------------------------------------------------
        let t = Instant::now();
        let (trace, _) = rp::load_or_capture(None, &cfg, &wl, "small");
        let accesses = trace.access_count();
        eprintln!(
            "  capture: {} records ({} accesses) in {:?}",
            trace.records.len(),
            accesses,
            t.elapsed()
        );
        for mode in [PrefetchMode::None, PrefetchMode::Manual] {
            let t = Instant::now();
            match rp::replay_run(&cfg, mode, &wl, &trace.records) {
                Ok(r) => {
                    let wall = t.elapsed();
                    let aps = accesses as f64 / wall.as_secs_f64();
                    let speedup = cycle_wall
                        .get(&mode)
                        .map(|cw| cw.as_secs_f64() / wall.as_secs_f64());
                    eprintln!(
                        "  replay {:>9}: cycles={:>12} wall={:?} validated={} l1hit={:.3} accesses/s={:.2e} host-speedup={}",
                        mode.label(),
                        r.cycles,
                        wall,
                        r.validated,
                        r.mem.l1.read_hit_rate(),
                        aps,
                        speedup.map_or("n/a".to_string(), |s| format!("{s:.1}x")),
                    );
                }
                Err(s) => eprintln!("  replay {:>9}: skipped ({s})", mode.label()),
            }
        }
    }
}
