//! Developer diagnostic: simulation wall-clock speed for the cycle-level
//! core and the trace-replay fast path across engine modes, with a
//! machine-readable `BENCH_speedcheck.json` so the perf trajectory is
//! tracked across PRs.
//!
//! ```text
//! cargo run --release -p etpp-sim --bin speedcheck            # Small scale
//! cargo run --release -p etpp-sim --bin speedcheck -- --smoke # Tiny, CI
//! cargo run --release -p etpp-sim --bin speedcheck -- --json out.json
//! ```
//!
//! The headline metric is replay *host speedup* (cycle-sim wall time /
//! replay wall time) per mode: PR 2's event-horizon scheduler is meant
//! to bring programmable-mode replay within reach of the baselines'
//! fast-forward throughput instead of ticking per cycle.

use etpp_sim::replay as rp;
use etpp_sim::{run, PrefetchMode, SystemConfig};
use etpp_workloads::{Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// Stable machine-readable key for a mode (JSON field material).
fn mode_key(mode: PrefetchMode) -> &'static str {
    match mode {
        PrefetchMode::None => "none",
        PrefetchMode::Stride => "stride",
        PrefetchMode::GhbRegular => "ghb_regular",
        PrefetchMode::GhbLarge => "ghb_large",
        PrefetchMode::Software => "software",
        PrefetchMode::Pragma => "pragma",
        PrefetchMode::Converted => "converted",
        PrefetchMode::Manual => "manual",
        PrefetchMode::Blocked => "blocked",
    }
}

#[derive(Debug)]
struct CycleRow {
    mode: PrefetchMode,
    cycles: u64,
    wall_s: f64,
    validated: bool,
}

#[derive(Debug)]
struct ReplayRow {
    mode: PrefetchMode,
    cycles: u64,
    host_iters: u64,
    wall_s: f64,
    accesses_per_s: f64,
    host_speedup: Option<f64>,
    validated: bool,
}

impl ReplayRow {
    /// Event-horizon fast-forward factor: simulated cycles per visited
    /// host iteration. Deterministic (unlike wall time), so the CI gate
    /// keys on it.
    fn ff(&self) -> f64 {
        self.cycles as f64 / self.host_iters.max(1) as f64
    }
}

#[derive(Debug)]
struct WorkloadReport {
    name: &'static str,
    trace_accesses: u64,
    cycle: Vec<CycleRow>,
    replay: Vec<ReplayRow>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(scale: &str, modes: &[PrefetchMode], reports: &[WorkloadReport]) -> String {
    let mut j = String::new();
    j.push_str("{\n  \"schema\": 1,\n  \"tool\": \"speedcheck\",\n");
    let _ = writeln!(j, "  \"scale\": \"{}\",", json_escape(scale));
    let mode_list = modes
        .iter()
        .map(|m| format!("\"{}\"", mode_key(*m)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(j, "  \"modes\": [{mode_list}],");
    j.push_str("  \"workloads\": [\n");
    for (wi, w) in reports.iter().enumerate() {
        let _ = writeln!(j, "    {{\n      \"name\": \"{}\",", json_escape(w.name));
        let _ = writeln!(j, "      \"trace_accesses\": {},", w.trace_accesses);
        j.push_str("      \"cycle\": [\n");
        for (i, r) in w.cycle.iter().enumerate() {
            let _ = write!(
                j,
                "        {{\"mode\": \"{}\", \"cycles\": {}, \"wall_s\": {:.6}, \"validated\": {}}}",
                mode_key(r.mode),
                r.cycles,
                r.wall_s,
                r.validated
            );
            j.push_str(if i + 1 < w.cycle.len() { ",\n" } else { "\n" });
        }
        j.push_str("      ],\n      \"replay\": [\n");
        for (i, r) in w.replay.iter().enumerate() {
            let speedup = r
                .host_speedup
                .map_or("null".to_string(), |s| format!("{s:.3}"));
            let _ = write!(
                j,
                "        {{\"mode\": \"{}\", \"cycles\": {}, \"host_iters\": {}, \
                 \"fast_forward\": {:.3}, \"wall_s\": {:.6}, \"accesses_per_s\": {:.1}, \
                 \"host_speedup\": {}, \"validated\": {}}}",
                mode_key(r.mode),
                r.cycles,
                r.host_iters,
                r.ff(),
                r.wall_s,
                r.accesses_per_s,
                speedup,
                r.validated
            );
            j.push_str(if i + 1 < w.replay.len() { ",\n" } else { "\n" });
        }
        j.push_str("      ]\n    }");
        j.push_str(if wi + 1 < reports.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_speedcheck.json".to_string());

    let (scale, scale_label) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Small, "small")
    };
    let modes = [
        PrefetchMode::None,
        PrefetchMode::Stride,
        PrefetchMode::GhbRegular,
        PrefetchMode::Manual,
    ];

    let cfg = SystemConfig::paper();
    let mut reports = Vec::new();
    for (name, w) in [
        (
            "IntSort",
            Box::new(etpp_workloads::intsort::IntSort) as Box<dyn Workload>,
        ),
        ("HJ-8", Box::new(etpp_workloads::hashjoin::Hj8)),
    ] {
        let t0 = Instant::now();
        let wl = w.build(scale);
        eprintln!(
            "{name}: build {:?} trace_ops={}",
            t0.elapsed(),
            wl.trace.len()
        );

        // --- cycle-level core ---------------------------------------------
        let mut cycle_rows: Vec<CycleRow> = Vec::new();
        for mode in modes {
            let t = Instant::now();
            match run(&cfg, mode, &wl) {
                Ok(r) => {
                    let wall = t.elapsed().as_secs_f64();
                    eprintln!(
                        "  cycle {:>13}: cycles={:>12} ipc={:.2} wall={:.3}s validated={} l1hit={:.3}",
                        mode.label(),
                        r.cycles,
                        r.ipc(),
                        wall,
                        r.validated,
                        r.mem.l1.read_hit_rate(),
                    );
                    cycle_rows.push(CycleRow {
                        mode,
                        cycles: r.cycles,
                        wall_s: wall,
                        validated: r.validated,
                    });
                }
                Err(s) => eprintln!("  cycle {:>13}: skipped ({s})", mode.label()),
            }
        }

        // --- trace replay -------------------------------------------------
        let t = Instant::now();
        let (trace, _) = rp::load_or_capture(None, &cfg, &wl, scale_label);
        let accesses = trace.access_count();
        eprintln!(
            "  capture: {} records ({} accesses) in {:?}",
            trace.records.len(),
            accesses,
            t.elapsed()
        );
        let mut replay_rows: Vec<ReplayRow> = Vec::new();
        for mode in modes {
            let t = Instant::now();
            match rp::replay_run(&cfg, mode, &wl, &trace.records) {
                Ok(r) => {
                    let wall = t.elapsed().as_secs_f64();
                    let aps = accesses as f64 / wall;
                    let host_speedup = cycle_rows
                        .iter()
                        .find(|c| c.mode == mode)
                        .map(|c| c.wall_s / wall);
                    eprintln!(
                        "  replay {:>12}: cycles={:>12} wall={:.3}s validated={} l1hit={:.3} accesses/s={:.2e} ff={:.1}x host-speedup={}",
                        mode.label(),
                        r.cycles,
                        wall,
                        r.validated,
                        r.mem.l1.read_hit_rate(),
                        aps,
                        r.cycles as f64 / r.host_iters.max(1) as f64,
                        host_speedup.map_or("n/a".to_string(), |s| format!("{s:.1}x")),
                    );
                    replay_rows.push(ReplayRow {
                        mode,
                        cycles: r.cycles,
                        host_iters: r.host_iters,
                        wall_s: wall,
                        accesses_per_s: aps,
                        host_speedup,
                        validated: r.validated,
                    });
                }
                Err(s) => eprintln!("  replay {:>12}: skipped ({s})", mode.label()),
            }
        }
        reports.push(WorkloadReport {
            name: wl.name,
            trace_accesses: accesses,
            cycle: cycle_rows,
            replay: replay_rows,
        });
    }

    let json = render_json(scale_label, &modes, &reports);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }

    // Smoke gate for CI: every run must validate, programmable-mode
    // replay must exist (a silently skipped run must not pass the gate
    // it was meant to feed), and its *deterministic* fast-forward
    // factor must show the event-horizon scheduler actually skipping
    // cycles. Wall-clock host speedup is reported but not gated — two
    // tens-of-milliseconds timings on a loaded CI runner are noise.
    const MIN_PROG_FF: f64 = 1.2;
    let mut ok = true;
    for w in &reports {
        for r in &w.cycle {
            ok &= r.validated;
        }
        let mut prog_rows = 0usize;
        for r in &w.replay {
            ok &= r.validated;
            if r.mode.is_programmable() {
                prog_rows += 1;
                if r.ff() < MIN_PROG_FF {
                    eprintln!(
                        "FAIL {}: programmable replay fast-forward {:.2}x < {MIN_PROG_FF}x \
                         (event-horizon scheduler not skipping cycles)",
                        w.name,
                        r.ff()
                    );
                    ok = false;
                }
                if let Some(s) = r.host_speedup {
                    if s < 1.0 {
                        eprintln!(
                            "note {}: programmable replay wall-clock below cycle sim \
                             ({s:.2}x) — informational, not gated",
                            w.name
                        );
                    }
                }
            }
        }
        if prog_rows == 0 {
            eprintln!("FAIL {}: programmable-mode replay never ran", w.name);
            ok = false;
        }
    }
    if !ok {
        eprintln!("speedcheck: validation or fast-forward gate failed");
        std::process::exit(1);
    }
}
