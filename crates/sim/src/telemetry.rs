//! Run-level observability: the phase sampler, the merged counter
//! registry and the Chrome-trace assembly for one simulation run.
//!
//! [`TelemetrySpec`] configures collection (it rides *next to*
//! [`crate::SystemConfig`], which stays `Copy`); [`TelemetryReport`] is
//! what [`crate::run_telemetry`] hands back: every component's
//! counters/histograms merged into one deterministic [`Registry`], an
//! interval [`PhaseSeries`] of the run, the prefetch lifecycle
//! classification, and (optionally) the span log rendered via
//! [`etpp_telemetry::chrome_trace_json`].

use etpp_mem::{LifecycleCounts, PcLifecycle};
use etpp_telemetry::{chrome_trace_json, Hist, PhaseSeries, Registry, SpanEvent};
use std::collections::BTreeMap;

/// Default cap on recorded span events per run (driver + memory lanes
/// each), chosen so a paper-scale trace stays well under 100 MB of JSON.
pub const DEFAULT_SPAN_CAP: usize = 200_000;

/// What to collect during a run. Separate from [`crate::SystemConfig`]
/// so the config stays `Copy` and telemetry stays strictly additive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Snapshot all registered counters every this many simulated
    /// cycles (samples land on the first visit at/after each boundary).
    pub sample_interval: u64,
    /// Record span events for the Chrome trace (driver visits, engine
    /// rounds, DRAM reads, fills).
    pub chrome_spans: bool,
    /// Cap on span events per sink; excess events are dropped and
    /// counted in `trace.spans_dropped`.
    pub span_cap: usize,
}

impl TelemetrySpec {
    /// Counters + histograms + phase samples + Chrome spans.
    pub fn full(sample_interval: u64) -> Self {
        TelemetrySpec {
            sample_interval,
            chrome_spans: true,
            span_cap: DEFAULT_SPAN_CAP,
        }
    }

    /// Counters + histograms + phase samples, no span log (cheapest).
    pub fn counters_only(sample_interval: u64) -> Self {
        TelemetrySpec {
            sample_interval,
            chrome_spans: false,
            span_cap: 0,
        }
    }
}

/// Columns of the phase time-series, in emission order. Scalar counters
/// are cumulative; histogram-derived columns (`*.count`, `*.p50`,
/// `*.p99`) snapshot the named histogram at the sample cycle.
pub const PHASE_COLUMNS: &[&str] = &[
    "core.insts_retired",
    "core.loads_issued",
    "core.load_retries",
    "mem.l1_read_hits",
    "mem.l1_read_misses",
    "mem.l1_late_pf_merges",
    "mem.l1_prefetch_fills",
    "mem.l1_prefetches_used",
    "mem.dram_reads",
    "pf.issued",
    "pf.accurate",
    "pf.late",
    "mem.load_latency.count",
    "mem.load_latency.p50",
    "mem.load_latency.p99",
    "mem.l1_mshr_occupancy.count",
    "mem.l1_mshr_occupancy.p99",
];

/// Everything observed during one telemetry-enabled run.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// All component counters and histograms, merged. Deterministic
    /// layout: two runs of the same workload produce byte-identical
    /// JSON, and shard merges are order-free.
    pub registry: Registry,
    /// The interval time-series of [`PHASE_COLUMNS`].
    pub phases: PhaseSeries,
    /// Prefetch lifecycle terminal-class counts.
    pub lifecycle: LifecycleCounts,
    /// Per-demand-PC accurate/late attribution (sorted by PC).
    pub per_pc: BTreeMap<u32, PcLifecycle>,
    /// Span events (empty unless `chrome_spans` was set).
    pub spans: Vec<SpanEvent>,
    /// Events dropped after a span sink's cap was reached.
    pub spans_dropped: u64,
}

impl TelemetryReport {
    /// The span log in Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.spans)
    }

    /// The merged registry as deterministic JSON.
    pub fn registry_json(&self) -> String {
        self.registry.to_json()
    }

    /// The phase time-series as JSON.
    pub fn phases_json(&self) -> String {
        self.phases.to_json()
    }
}

/// Live sampling state threaded through the driver loop (internal to
/// [`crate::system::run_inner`]; public within the crate only).
pub(crate) struct PhaseSampler {
    interval: u64,
    next_at: u64,
    pub(crate) series: PhaseSeries,
}

impl PhaseSampler {
    pub(crate) fn new(interval: u64) -> Self {
        let interval = interval.max(1);
        PhaseSampler {
            interval,
            next_at: interval,
            series: PhaseSeries::new(
                interval,
                PHASE_COLUMNS.iter().map(|s| s.to_string()).collect(),
            ),
        }
    }

    /// Whether the clock has crossed the next sample boundary.
    #[inline]
    pub(crate) fn due(&self, now: u64) -> bool {
        now >= self.next_at
    }

    /// Records a sample stamped at `now` and re-arms for the next
    /// boundary after `now` (visits can jump several intervals at
    /// once; cumulative counters make the skipped boundaries
    /// recoverable by interpolation).
    pub(crate) fn sample(&mut self, now: u64, values: Vec<u64>) {
        self.series.push(now, values);
        self.next_at = (now / self.interval + 1) * self.interval;
    }
}

/// Snapshot helper: histogram-derived phase columns.
pub(crate) fn hist_columns(h: &Hist) -> (u64, u64, u64) {
    (h.count(), h.quantile(0.5), h.quantile(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_crosses_multiple_intervals() {
        let mut s = PhaseSampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.sample(105, vec![0; PHASE_COLUMNS.len()]);
        assert!(!s.due(150));
        assert!(s.due(200));
        // A jump over several boundaries re-arms past the jump.
        s.sample(437, vec![1; PHASE_COLUMNS.len()]);
        assert!(!s.due(499));
        assert!(s.due(500));
        assert_eq!(s.series.samples.len(), 2);
        assert_eq!(s.series.samples[1].cycle, 437);
    }
}
