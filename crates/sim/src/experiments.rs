//! Experiment drivers: one function per figure/table of the paper.
//!
//! Each driver builds (or reuses) the workloads at a given scale, runs the
//! required (workload, mode, configuration) grid across a bounded pool of
//! shared-queue worker threads ([`map_indexed`] — the same job model as
//! the replay runner in [`crate::replay`]), and returns structured rows
//! that [`crate::report`] renders in the paper's format. Results are
//! collected by job index, so every table is byte-identical regardless
//! of the worker count or scheduling.

use crate::config::{PrefetchMode, SystemConfig};
use crate::faults::{run_isolated_budgeted, JobFailure, RetryPolicy};
use crate::system::{run, run_telemetry, RunResult, Skip};
use crate::telemetry::{TelemetryReport, TelemetrySpec};
use etpp_mem::CancelToken;
use etpp_workloads::{all_workloads, BuiltWorkload, Scale};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Runs `f(0..n)` across `jobs` shared-queue worker threads and returns
/// the results in index order — the deterministic worker-pool primitive
/// every cycle-path grid here shards on (lifted from the replay
/// runner's job model). `jobs <= 1` (or a single item) degenerates to a
/// serial loop on the caller's thread, so `--jobs 1` output is the
/// byte-identical reference for any other worker count.
pub fn map_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned")
                .expect("worker filled slot")
        })
        .collect()
}

/// [`map_indexed`] with per-job panic isolation: each job runs inside
/// [`crate::faults::run_isolated`], so a panicking cell is retried
/// under `policy` and then quarantined as an `Err(JobFailure)` slot
/// while every other job still completes — the fail-soft worker pool
/// the sweep farm runs on. `f` receives `(job index, attempt number)`;
/// `retries` is bumped once per retry for telemetry.
///
/// Determinism note: result *order* stays index-addressed like
/// [`map_indexed`]; in strict mode (`policy.strict`) the first panic
/// propagates and aborts the pool, restoring pre-isolation behaviour.
pub fn map_indexed_isolated<R, F>(
    jobs: usize,
    n: usize,
    policy: &RetryPolicy,
    retries: &AtomicU64,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    R: Send,
    F: Fn(usize, u32) -> R + Sync,
{
    map_indexed_isolated_budgeted(jobs, n, policy, retries, None, |i, attempt, _| {
        f(i, attempt)
    })
}

/// [`map_indexed_isolated`] with a per-job wall-clock budget: every
/// attempt of every job runs under a fresh [`CancelToken`] whose
/// deadline is `budget` (escalated for the single timeout retry — see
/// [`crate::faults::run_isolated_budgeted`]), handed to `f` as its
/// third argument so the job can thread it into the simulation. A job
/// that overruns is cancelled cooperatively and quarantined as a
/// `timeout` while the rest of the pool completes. `None` (or a zero
/// budget) disarms the watchdog; `f` then sees no token.
pub fn map_indexed_isolated_budgeted<R, F>(
    jobs: usize,
    n: usize,
    policy: &RetryPolicy,
    retries: &AtomicU64,
    budget: Option<Duration>,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    R: Send,
    F: Fn(usize, u32, Option<&CancelToken>) -> R + Sync,
{
    map_indexed(jobs, n, |i| {
        run_isolated_budgeted(policy, i, retries, budget, |attempt, token| {
            f(i, attempt, token)
        })
    })
}

/// The job indices shard `k` of `n` owns out of a flat `total`-job
/// list: every `i ≡ k (mod n)`, ascending. The cross-*process* analogue
/// of [`map_indexed`]'s cross-thread partition — the sweep farm hands
/// each CI runner one shard and merges the shard outputs by index, so
/// the merged tables are byte-identical for any (jobs, shard) split.
///
/// # Panics
/// Panics when `n == 0` or `k >= n` (a typo'd `--shard` must never
/// silently run the full grid).
pub fn shard_indices(total: usize, k: usize, n: usize) -> Vec<usize> {
    assert!(n > 0, "shard count must be positive");
    assert!(k < n, "shard index {k} out of range for {n} shards");
    (k..total).step_by(n).collect()
}

/// A (workload × mode) speedup cell for Figure 7 / 11-style tables.
#[derive(Debug, Clone)]
pub struct SpeedupCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Prefetching scheme.
    pub mode: PrefetchMode,
    /// Speedup over the no-prefetch baseline (None = not expressible).
    pub speedup: Option<f64>,
    /// Full result for detail reporting.
    pub result: Option<RunResult>,
}

/// Builds every workload at `scale` across `jobs` workers.
pub fn build_all(scale: Scale, jobs: usize) -> Vec<BuiltWorkload> {
    let workloads = all_workloads();
    // map_indexed keeps Table 2 order by construction.
    map_indexed(jobs, workloads.len(), |i| workloads[i].build(scale))
}

fn run_grid(
    cfg: &SystemConfig,
    workloads: &[BuiltWorkload],
    modes: &[PrefetchMode],
    jobs: usize,
) -> Vec<SpeedupCell> {
    // Baselines first (one per workload), then the full grid, both
    // sharded across the worker pool.
    let baselines: Vec<u64> = map_indexed(jobs, workloads.len(), |i| {
        run(cfg, PrefetchMode::None, &workloads[i])
            .expect("baseline")
            .cycles
    });

    map_indexed(jobs, workloads.len() * modes.len(), |k| {
        let w = &workloads[k / modes.len()];
        let mode = modes[k % modes.len()];
        match run(cfg, mode, w) {
            Ok(r) => SpeedupCell {
                workload: w.name,
                mode,
                speedup: Some(baselines[k / modes.len()] as f64 / r.cycles as f64),
                result: Some(r),
            },
            Err(Skip::NotExpressible(_)) | Err(Skip::NoProgram(_)) => SpeedupCell {
                workload: w.name,
                mode,
                speedup: None,
                result: None,
            },
        }
    })
}

/// Figure 7: speedups for every scheme on every benchmark.
pub fn fig7(cfg: &SystemConfig, workloads: &[BuiltWorkload], jobs: usize) -> Vec<SpeedupCell> {
    run_grid(cfg, workloads, &PrefetchMode::FIGURE7, jobs)
}

/// Engine-zoo grid: the zoo additions beside the classic stride
/// baseline they cross-check, on any workload set (the repro driver
/// feeds it the Table 2 benchmarks plus the synthetic TwoPhase).
pub fn zoo(cfg: &SystemConfig, workloads: &[BuiltWorkload], jobs: usize) -> Vec<SpeedupCell> {
    let mut modes = vec![PrefetchMode::Stride];
    modes.extend(PrefetchMode::ZOO);
    run_grid(cfg, workloads, &modes, jobs)
}

/// The static configurations the adaptive meta-engine chooses between
/// (plus the no-prefetch baseline), for the adaptive-vs-static table.
pub const ADAPTIVE_STATICS: [PrefetchMode; 3] = [
    PrefetchMode::None,
    PrefetchMode::Stride,
    PrefetchMode::PcDelta,
];

/// One row of the adaptive-vs-static table: the meta-engine's cycles
/// next to every static config, plus its decision log.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Benchmark.
    pub workload: &'static str,
    /// Cycles under [`PrefetchMode::Adaptive`].
    pub adaptive_cycles: u64,
    /// Cycles under each of [`ADAPTIVE_STATICS`], in that order.
    pub statics: Vec<(PrefetchMode, u64)>,
    /// The meta-engine's decision log for this run.
    pub summary: crate::adaptive::AdaptiveSummary,
}

/// Runs every workload under the adaptive engine and each static
/// config, one pool job per (workload, mode) cell.
pub fn adaptive_grid(
    cfg: &SystemConfig,
    workloads: &[&BuiltWorkload],
    jobs: usize,
) -> Vec<AdaptiveRow> {
    let modes: Vec<PrefetchMode> = ADAPTIVE_STATICS
        .into_iter()
        .chain([PrefetchMode::Adaptive])
        .collect();
    let results = map_indexed(jobs, workloads.len() * modes.len(), |k| {
        let w = workloads[k / modes.len()];
        run(cfg, modes[k % modes.len()], w).expect("adaptive grid modes never skip")
    });
    workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let base = wi * modes.len();
            let adaptive = &results[base + modes.len() - 1];
            AdaptiveRow {
                workload: w.name,
                adaptive_cycles: adaptive.cycles,
                statics: ADAPTIVE_STATICS
                    .iter()
                    .enumerate()
                    .map(|(mi, &m)| (m, results[base + mi].cycles))
                    .collect(),
                summary: adaptive
                    .adaptive
                    .clone()
                    .expect("adaptive mode populates its summary"),
            }
        })
        .collect()
}

/// One Figure 8 row: utilisation and hit rates for the Manual configuration.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark.
    pub workload: &'static str,
    /// Fraction of prefetched L1 lines used before eviction (Fig. 8a).
    pub l1_utilisation: f64,
    /// L1 read hit rate without prefetching.
    pub l1_hit_nopf: f64,
    /// L1 read hit rate with the programmable prefetcher.
    pub l1_hit_pf: f64,
    /// L2 read hit rate without prefetching (G500-List annotation).
    pub l2_hit_nopf: f64,
    /// L2 read hit rate with the prefetcher.
    pub l2_hit_pf: f64,
    /// Demand misses that merged into an in-flight prefetch — the
    /// "late prefetch" count behind the telemetry lifecycle's `late`
    /// class, surfaced next to utilisation so timeliness appears in the
    /// same table as accuracy.
    pub late_pf_merges: u64,
}

/// Figure 8: L1 prefetch utilisation and read hit rates.
pub fn fig8(cfg: &SystemConfig, workloads: &[BuiltWorkload], jobs: usize) -> Vec<Fig8Row> {
    map_indexed(jobs, workloads.len(), |i| {
        let w = &workloads[i];
        let base = run(cfg, PrefetchMode::None, w).expect("baseline");
        let pf = run(cfg, PrefetchMode::Manual, w).ok()?;
        Some(Fig8Row {
            workload: w.name,
            l1_utilisation: pf.mem.l1.prefetch_utilisation(),
            l1_hit_nopf: base.mem.l1.read_hit_rate(),
            l1_hit_pf: pf.mem.l1.read_hit_rate(),
            l2_hit_nopf: base.mem.l2.read_hit_rate(),
            l2_hit_pf: pf.mem.l2.read_hit_rate(),
            late_pf_merges: pf.mem.l1.late_prefetch_merges,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One Figure 9(a) series: speedup vs PPU clock for a benchmark.
#[derive(Debug, Clone)]
pub struct Fig9aRow {
    /// Benchmark.
    pub workload: &'static str,
    /// (clock in Hz, speedup) pairs.
    pub points: Vec<(u64, f64)>,
}

/// Figure 9(a): PPU clock sweep at 12 PPUs (250 MHz – 2 GHz).
pub fn fig9a(workloads: &[BuiltWorkload], jobs: usize) -> Vec<Fig9aRow> {
    let clocks = [250_000_000u64, 500_000_000, 1_000_000_000, 2_000_000_000];
    // One job per (workload, clock) point plus one per baseline, so the
    // sweep saturates the pool even with a single benchmark.
    let baselines: Vec<u64> = map_indexed(jobs, workloads.len(), |i| {
        run(&SystemConfig::paper(), PrefetchMode::None, &workloads[i])
            .expect("baseline")
            .cycles
    });
    let points = map_indexed(jobs, workloads.len() * clocks.len(), |k| {
        let (wi, ci) = (k / clocks.len(), k % clocks.len());
        let cfg = SystemConfig::with_ppus(12, clocks[ci]);
        run(&cfg, PrefetchMode::Manual, &workloads[wi])
            .ok()
            .map(|r| (clocks[ci], baselines[wi] as f64 / r.cycles as f64))
    });
    workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| Fig9aRow {
            workload: w.name,
            points: points[wi * clocks.len()..(wi + 1) * clocks.len()]
                .iter()
                .flatten()
                .copied()
                .collect(),
        })
        .collect()
}

/// Figure 9(b): PPU-count × clock sweep on G500-CSR.
pub fn fig9b(g500csr: &BuiltWorkload, jobs: usize) -> Vec<(usize, Vec<(u64, f64)>)> {
    let clocks = [
        125_000_000u64,
        250_000_000,
        500_000_000,
        1_000_000_000,
        2_000_000_000,
        4_000_000_000,
    ];
    let counts = [3usize, 6, 12];
    let base = run(&SystemConfig::paper(), PrefetchMode::None, g500csr)
        .expect("baseline")
        .cycles;
    // Shard the full (count × clock) grid, one job per point.
    let points = map_indexed(jobs, counts.len() * clocks.len(), |k| {
        let (ni, ci) = (k / clocks.len(), k % clocks.len());
        let cfg = SystemConfig::with_ppus(counts[ni], clocks[ci]);
        run(&cfg, PrefetchMode::Manual, g500csr)
            .ok()
            .map(|r| (clocks[ci], base as f64 / r.cycles as f64))
    });
    counts
        .iter()
        .enumerate()
        .map(|(ni, &n)| {
            (
                n,
                points[ni * clocks.len()..(ni + 1) * clocks.len()]
                    .iter()
                    .flatten()
                    .copied()
                    .collect(),
            )
        })
        .collect()
}

/// Figure 10: per-PPU activity factors under the lowest-ID-first scheduler.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark.
    pub workload: &'static str,
    /// Activity factor (busy cycles / total cycles) per PPU, by unit id.
    pub activity: Vec<f64>,
}

/// Figure 10: PPU activity distribution at 12 PPUs / 1 GHz.
pub fn fig10(cfg: &SystemConfig, workloads: &[BuiltWorkload], jobs: usize) -> Vec<Fig10Row> {
    map_indexed(jobs, workloads.len(), |i| {
        let w = &workloads[i];
        let r = run(cfg, PrefetchMode::Manual, w).ok()?;
        let pf = r.pf?;
        Some(Fig10Row {
            workload: w.name,
            activity: pf
                .per_ppu_busy
                .iter()
                .map(|&b| b as f64 / r.cycles as f64)
                .collect(),
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Figure 11: event-triggered vs blocked-on-intermediate-loads.
pub fn fig11(cfg: &SystemConfig, workloads: &[BuiltWorkload], jobs: usize) -> Vec<SpeedupCell> {
    run_grid(
        cfg,
        workloads,
        &[PrefetchMode::Blocked, PrefetchMode::Manual],
        jobs,
    )
}

/// §7.2 "extra memory accesses": DRAM traffic with/without the prefetcher.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Benchmark.
    pub workload: &'static str,
    /// DRAM accesses without prefetching.
    pub base_accesses: u64,
    /// DRAM accesses with the Manual prefetcher.
    pub pf_accesses: u64,
}

impl TrafficRow {
    /// Fractional extra accesses (0.16 = +16%).
    pub fn extra(&self) -> f64 {
        self.pf_accesses as f64 / self.base_accesses.max(1) as f64 - 1.0
    }
}

/// §7.2: extra memory traffic from prefetching.
pub fn extra_traffic(
    cfg: &SystemConfig,
    workloads: &[BuiltWorkload],
    jobs: usize,
) -> Vec<TrafficRow> {
    map_indexed(jobs, workloads.len(), |i| {
        let w = &workloads[i];
        let base = run(cfg, PrefetchMode::None, w).expect("baseline");
        let pf = run(cfg, PrefetchMode::Manual, w).ok()?;
        Some(TrafficRow {
            workload: w.name,
            base_accesses: base.mem.dram.total_accesses(),
            pf_accesses: pf.mem.dram.total_accesses(),
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// §7.1: software-prefetch dynamic-instruction overhead.
#[derive(Debug, Clone)]
pub struct SwpfOverheadRow {
    /// Benchmark.
    pub workload: &'static str,
    /// Dynamic instructions without software prefetch.
    pub base_insts: u64,
    /// Dynamic instructions with software prefetch.
    pub sw_insts: u64,
}

impl SwpfOverheadRow {
    /// Fractional overhead (1.13 = +113%).
    pub fn overhead(&self) -> f64 {
        self.sw_insts as f64 / self.base_insts.max(1) as f64 - 1.0
    }
}

/// §7.1: dynamic instruction increase from software prefetching.
pub fn swpf_overhead(workloads: &[BuiltWorkload]) -> Vec<SwpfOverheadRow> {
    workloads
        .iter()
        .filter_map(|w| {
            let sw = w.sw_trace.as_ref()?;
            Some(SwpfOverheadRow {
                workload: w.name,
                base_insts: w.trace.class_counts().total(),
                sw_insts: sw.class_counts().total(),
            })
        })
        .collect()
}

/// One telemetry-enabled (workload × mode) cell: the run result plus
/// everything the observability stack collected during it.
#[derive(Debug)]
pub struct TelemetryCell {
    /// Benchmark.
    pub workload: &'static str,
    /// Prefetching scheme.
    pub mode: PrefetchMode,
    /// The (telemetry-transparent) run result.
    pub result: RunResult,
    /// Counters, histograms, lifecycle classes, phase series, spans.
    pub report: TelemetryReport,
}

/// Phase-sample interval per scale, sized so a run yields tens of
/// samples rather than thousands (the series is meant for eyeballing
/// phases, not cycle-accurate archaeology).
pub fn sample_interval(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 10_000,
        Scale::Small => 100_000,
        Scale::Paper => 2_000_000,
    }
}

/// Runs the telemetry grid: every (workload × mode) cell with full
/// collection per `spec`, sharded across `jobs` workers. Inexpressible
/// cells are skipped, as in the figure grids. Cell registries are
/// returned in index order, so any cross-cell merge (`Registry::merge`)
/// is byte-identical for every worker count.
pub fn telemetry_grid(
    cfg: &SystemConfig,
    workloads: &[&BuiltWorkload],
    modes: &[PrefetchMode],
    spec: &TelemetrySpec,
    jobs: usize,
) -> Vec<TelemetryCell> {
    map_indexed(jobs, workloads.len() * modes.len(), |k| {
        let w = workloads[k / modes.len()];
        let mode = modes[k % modes.len()];
        run_telemetry(cfg, mode, w, spec)
            .ok()
            .map(|(result, report)| TelemetryCell {
                workload: w.name,
                mode,
                result,
                report,
            })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Geometric mean of the speedups for one mode.
pub fn geomean(cells: &[SpeedupCell], mode: PrefetchMode) -> f64 {
    let vals: Vec<f64> = cells
        .iter()
        .filter(|c| c.mode == mode)
        .filter_map(|c| c.speedup)
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_tiny_grid_shapes_hold() {
        let workloads: Vec<BuiltWorkload> = [
            etpp_workloads::workload_by_name("HJ-8").unwrap(),
            etpp_workloads::workload_by_name("IntSort").unwrap(),
        ]
        .into_iter()
        .map(|w| w.build(Scale::Tiny))
        .collect();
        let cfg = SystemConfig::paper();
        let cells = fig7(&cfg, &workloads, 2);
        // Manual must win on HJ-8 and beat stride everywhere.
        let get = |wl: &str, m: PrefetchMode| {
            cells
                .iter()
                .find(|c| c.workload == wl && c.mode == m)
                .and_then(|c| c.speedup)
        };
        let hj8_manual = get("HJ-8", PrefetchMode::Manual).unwrap();
        let hj8_stride = get("HJ-8", PrefetchMode::Stride).unwrap();
        assert!(hj8_manual > 1.5, "HJ-8 manual {hj8_manual}");
        assert!(hj8_manual > hj8_stride);
        let gm = geomean(&cells, PrefetchMode::Manual);
        assert!(gm > 1.2, "manual geomean {gm}");
    }

    #[test]
    fn fig10_lowest_id_scheduling_skews_work() {
        let w = etpp_workloads::workload_by_name("IntSort")
            .unwrap()
            .build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let rows = fig10(&cfg, std::slice::from_ref(&w), 2);
        let a = &rows[0].activity;
        assert_eq!(a.len(), 12);
        assert!(
            a[0] >= a[11],
            "PPU 0 must work at least as much as PPU 11: {a:?}"
        );
    }

    #[test]
    fn sharded_grid_is_byte_identical_across_worker_counts() {
        let workloads: Vec<BuiltWorkload> = [
            etpp_workloads::workload_by_name("HJ-8").unwrap(),
            etpp_workloads::workload_by_name("IntSort").unwrap(),
        ]
        .into_iter()
        .map(|w| w.build(Scale::Tiny))
        .collect();
        let cfg = SystemConfig::paper();
        let modes = [PrefetchMode::Stride, PrefetchMode::Manual];
        let serial = crate::report::speedup_table("t", &fig7(&cfg, &workloads, 1), &modes);
        let sharded = crate::report::speedup_table("t", &fig7(&cfg, &workloads, 4), &modes);
        assert_eq!(
            serial, sharded,
            "worker count must never change rendered tables"
        );

        // Telemetry snapshots merged across shards must be just as
        // worker-count-proof: merge each cell's registry in index order
        // and compare the rendered JSON byte-for-byte.
        let spec = TelemetrySpec::counters_only(10_000);
        let refs: Vec<&BuiltWorkload> = workloads.iter().collect();
        let merged_json = |jobs: usize| {
            let cells = telemetry_grid(&cfg, &refs, &modes, &spec, jobs);
            assert_eq!(cells.len(), refs.len() * modes.len());
            let mut merged = etpp_telemetry::Registry::new();
            for c in &cells {
                merged.merge(&c.report.registry);
            }
            merged.to_json()
        };
        assert_eq!(
            merged_json(1),
            merged_json(4),
            "merged telemetry registries must be byte-identical for any worker count"
        );
    }

    #[test]
    fn shard_indices_partition_exactly() {
        // Every index lands in exactly one shard, ascending per shard.
        for n in 1..=5usize {
            let mut seen = vec![0u32; 17];
            for k in 0..n {
                let idx = shard_indices(17, k, n);
                assert!(idx.windows(2).all(|w| w[0] < w[1]));
                for i in idx {
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "n={n}: {seen:?}");
        }
        assert_eq!(shard_indices(0, 0, 4), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        shard_indices(10, 4, 4);
    }

    #[test]
    fn map_indexed_preserves_index_order() {
        let out = map_indexed(8, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_indexed_isolated_quarantines_only_the_panicking_jobs() {
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        // Job 5 fails permanently, job 7 recovers on its second attempt.
        let out = map_indexed_isolated(4, 10, &policy, &retries, |i, attempt| {
            if i == 5 {
                panic!("permanent failure in job {i}");
            }
            if i == 7 && attempt == 0 {
                panic!("transient failure in job {i}");
            }
            i * 2
        });
        for (i, slot) in out.iter().enumerate() {
            match slot {
                Ok(v) => assert_eq!((*v, i != 5), (i * 2, true)),
                Err(f) => {
                    assert_eq!((i, f.index, f.attempts), (5, 5, 3));
                    assert!(f.error.contains("permanent"), "{}", f.error);
                }
            }
        }
        // 2 wasted attempts on job 5 + 1 on job 7.
        assert_eq!(retries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn map_indexed_isolated_budgeted_times_out_only_the_overrunning_job() {
        use crate::faults::FailureClass;
        let policy = RetryPolicy {
            backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let retries = AtomicU64::new(0);
        let out = map_indexed_isolated_budgeted(
            2,
            4,
            &policy,
            &retries,
            Some(Duration::from_millis(15)),
            |i, attempt, token| {
                let token = token.expect("budget arms every job");
                if i == 2 {
                    // A hung job: spin until the deadline cancels it.
                    loop {
                        std::thread::sleep(Duration::from_millis(1));
                        token.check(u64::from(attempt));
                    }
                }
                i
            },
        );
        for (i, slot) in out.iter().enumerate() {
            match slot {
                Ok(v) => assert_eq!((*v, i != 2), (i, true)),
                Err(fail) => {
                    assert_eq!(i, 2);
                    assert_eq!(fail.class, FailureClass::Timeout);
                    assert_eq!(
                        fail.attempts, 2,
                        "timeouts retry once at the escalated budget"
                    );
                }
            }
        }
        assert_eq!(retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn swpf_overhead_reports_expected_benchmarks() {
        let workloads = vec![
            etpp_workloads::workload_by_name("IntSort")
                .unwrap()
                .build(Scale::Tiny),
            etpp_workloads::workload_by_name("PageRank")
                .unwrap()
                .build(Scale::Tiny),
        ];
        let rows = swpf_overhead(&workloads);
        assert_eq!(rows.len(), 1, "PageRank has no software variant");
        assert!(rows[0].overhead() > 0.3);
    }
}
