//! Experiment drivers: one function per figure/table of the paper.
//!
//! Each driver builds (or reuses) the workloads at a given scale, runs the
//! required (workload, mode, configuration) grid — in parallel across OS
//! threads, since runs are independent — and returns structured rows that
//! [`crate::report`] renders in the paper's format.

use crate::config::{PrefetchMode, SystemConfig};
use crate::system::{run, RunResult, Skip};
use etpp_workloads::{all_workloads, BuiltWorkload, Scale};
use std::sync::Mutex;

/// A (workload × mode) speedup cell for Figure 7 / 11-style tables.
#[derive(Debug, Clone)]
pub struct SpeedupCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Prefetching scheme.
    pub mode: PrefetchMode,
    /// Speedup over the no-prefetch baseline (None = not expressible).
    pub speedup: Option<f64>,
    /// Full result for detail reporting.
    pub result: Option<RunResult>,
}

/// Builds every workload at `scale` (parallel).
pub fn build_all(scale: Scale) -> Vec<BuiltWorkload> {
    let out = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in all_workloads() {
            let out = &out;
            s.spawn(move || {
                let built = w.build(scale);
                out.lock().expect("poisoned").push(built);
            });
        }
    });
    let mut v = out.into_inner().expect("poisoned");
    // Restore Table 2 order (threads finish out of order).
    let order = [
        "G500-CSR",
        "G500-List",
        "HJ-2",
        "HJ-8",
        "PageRank",
        "RandAcc",
        "IntSort",
        "ConjGrad",
    ];
    v.sort_by_key(|w| order.iter().position(|n| *n == w.name).unwrap_or(99));
    v
}

fn run_grid(
    cfg: &SystemConfig,
    workloads: &[BuiltWorkload],
    modes: &[PrefetchMode],
) -> Vec<SpeedupCell> {
    // Baselines first (one per workload), then all modes in parallel.
    let baselines: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| s.spawn(move || run(cfg, PrefetchMode::None, w).expect("baseline").cycles))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let cells = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (w, &base) in workloads.iter().zip(&baselines) {
            for &mode in modes {
                let cells = &cells;
                s.spawn(move || {
                    let cell = match run(cfg, mode, w) {
                        Ok(r) => SpeedupCell {
                            workload: w.name,
                            mode,
                            speedup: Some(base as f64 / r.cycles as f64),
                            result: Some(r),
                        },
                        Err(Skip::NotExpressible(_)) | Err(Skip::NoProgram(_)) => SpeedupCell {
                            workload: w.name,
                            mode,
                            speedup: None,
                            result: None,
                        },
                    };
                    cells.lock().expect("poisoned").push(cell);
                });
            }
        }
    });
    cells.into_inner().expect("poisoned")
}

/// Figure 7: speedups for every scheme on every benchmark.
pub fn fig7(cfg: &SystemConfig, workloads: &[BuiltWorkload]) -> Vec<SpeedupCell> {
    run_grid(
        cfg,
        workloads,
        &[
            PrefetchMode::Stride,
            PrefetchMode::GhbRegular,
            PrefetchMode::GhbLarge,
            PrefetchMode::Software,
            PrefetchMode::Pragma,
            PrefetchMode::Converted,
            PrefetchMode::Manual,
        ],
    )
}

/// One Figure 8 row: utilisation and hit rates for the Manual configuration.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark.
    pub workload: &'static str,
    /// Fraction of prefetched L1 lines used before eviction (Fig. 8a).
    pub l1_utilisation: f64,
    /// L1 read hit rate without prefetching.
    pub l1_hit_nopf: f64,
    /// L1 read hit rate with the programmable prefetcher.
    pub l1_hit_pf: f64,
    /// L2 read hit rate without prefetching (G500-List annotation).
    pub l2_hit_nopf: f64,
    /// L2 read hit rate with the prefetcher.
    pub l2_hit_pf: f64,
}

/// Figure 8: L1 prefetch utilisation and read hit rates.
pub fn fig8(cfg: &SystemConfig, workloads: &[BuiltWorkload]) -> Vec<Fig8Row> {
    let rows = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in workloads {
            let rows = &rows;
            s.spawn(move || {
                let base = run(cfg, PrefetchMode::None, w).expect("baseline");
                let Ok(pf) = run(cfg, PrefetchMode::Manual, w) else {
                    return;
                };
                rows.lock().expect("poisoned").push(Fig8Row {
                    workload: w.name,
                    l1_utilisation: pf.mem.l1.prefetch_utilisation(),
                    l1_hit_nopf: base.mem.l1.read_hit_rate(),
                    l1_hit_pf: pf.mem.l1.read_hit_rate(),
                    l2_hit_nopf: base.mem.l2.read_hit_rate(),
                    l2_hit_pf: pf.mem.l2.read_hit_rate(),
                });
            });
        }
    });
    let mut v = rows.into_inner().expect("poisoned");
    v.sort_by_key(|r| workloads.iter().position(|w| w.name == r.workload));
    v
}

/// One Figure 9(a) series: speedup vs PPU clock for a benchmark.
#[derive(Debug, Clone)]
pub struct Fig9aRow {
    /// Benchmark.
    pub workload: &'static str,
    /// (clock in Hz, speedup) pairs.
    pub points: Vec<(u64, f64)>,
}

/// Figure 9(a): PPU clock sweep at 12 PPUs (250 MHz – 2 GHz).
pub fn fig9a(workloads: &[BuiltWorkload]) -> Vec<Fig9aRow> {
    let clocks = [250_000_000u64, 500_000_000, 1_000_000_000, 2_000_000_000];
    let rows = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in workloads {
            let rows = &rows;
            let clocks = &clocks;
            s.spawn(move || {
                let cfg0 = SystemConfig::paper();
                let base = run(&cfg0, PrefetchMode::None, w).expect("baseline").cycles;
                let mut points = Vec::new();
                for &hz in clocks {
                    let cfg = SystemConfig::with_ppus(12, hz);
                    if let Ok(r) = run(&cfg, PrefetchMode::Manual, w) {
                        points.push((hz, base as f64 / r.cycles as f64));
                    }
                }
                rows.lock().expect("poisoned").push(Fig9aRow {
                    workload: w.name,
                    points,
                });
            });
        }
    });
    let mut v = rows.into_inner().expect("poisoned");
    v.sort_by_key(|r| workloads.iter().position(|w| w.name == r.workload));
    v
}

/// Figure 9(b): PPU-count × clock sweep on G500-CSR.
pub fn fig9b(g500csr: &BuiltWorkload) -> Vec<(usize, Vec<(u64, f64)>)> {
    let clocks = [
        125_000_000u64,
        250_000_000,
        500_000_000,
        1_000_000_000,
        2_000_000_000,
        4_000_000_000,
    ];
    let counts = [3usize, 6, 12];
    let base = run(&SystemConfig::paper(), PrefetchMode::None, g500csr)
        .expect("baseline")
        .cycles;
    let out = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for &n in &counts {
            let out = &out;
            let clocks = &clocks;
            s.spawn(move || {
                let mut series = Vec::new();
                for &hz in clocks {
                    let cfg = SystemConfig::with_ppus(n, hz);
                    if let Ok(r) = run(&cfg, PrefetchMode::Manual, g500csr) {
                        series.push((hz, base as f64 / r.cycles as f64));
                    }
                }
                out.lock().expect("poisoned").push((n, series));
            });
        }
    });
    let mut v = out.into_inner().expect("poisoned");
    v.sort_by_key(|(n, _)| *n);
    v
}

/// Figure 10: per-PPU activity factors under the lowest-ID-first scheduler.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark.
    pub workload: &'static str,
    /// Activity factor (busy cycles / total cycles) per PPU, by unit id.
    pub activity: Vec<f64>,
}

/// Figure 10: PPU activity distribution at 12 PPUs / 1 GHz.
pub fn fig10(cfg: &SystemConfig, workloads: &[BuiltWorkload]) -> Vec<Fig10Row> {
    let rows = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in workloads {
            let rows = &rows;
            s.spawn(move || {
                let Ok(r) = run(cfg, PrefetchMode::Manual, w) else {
                    return;
                };
                let Some(pf) = r.pf else { return };
                let activity = pf
                    .per_ppu_busy
                    .iter()
                    .map(|&b| b as f64 / r.cycles as f64)
                    .collect();
                rows.lock().expect("poisoned").push(Fig10Row {
                    workload: w.name,
                    activity,
                });
            });
        }
    });
    let mut v = rows.into_inner().expect("poisoned");
    v.sort_by_key(|r| workloads.iter().position(|w| w.name == r.workload));
    v
}

/// Figure 11: event-triggered vs blocked-on-intermediate-loads.
pub fn fig11(cfg: &SystemConfig, workloads: &[BuiltWorkload]) -> Vec<SpeedupCell> {
    run_grid(
        cfg,
        workloads,
        &[PrefetchMode::Blocked, PrefetchMode::Manual],
    )
}

/// §7.2 "extra memory accesses": DRAM traffic with/without the prefetcher.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Benchmark.
    pub workload: &'static str,
    /// DRAM accesses without prefetching.
    pub base_accesses: u64,
    /// DRAM accesses with the Manual prefetcher.
    pub pf_accesses: u64,
}

impl TrafficRow {
    /// Fractional extra accesses (0.16 = +16%).
    pub fn extra(&self) -> f64 {
        self.pf_accesses as f64 / self.base_accesses.max(1) as f64 - 1.0
    }
}

/// §7.2: extra memory traffic from prefetching.
pub fn extra_traffic(cfg: &SystemConfig, workloads: &[BuiltWorkload]) -> Vec<TrafficRow> {
    let rows = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in workloads {
            let rows = &rows;
            s.spawn(move || {
                let base = run(cfg, PrefetchMode::None, w).expect("baseline");
                let Ok(pf) = run(cfg, PrefetchMode::Manual, w) else {
                    return;
                };
                rows.lock().expect("poisoned").push(TrafficRow {
                    workload: w.name,
                    base_accesses: base.mem.dram.total_accesses(),
                    pf_accesses: pf.mem.dram.total_accesses(),
                });
            });
        }
    });
    let mut v = rows.into_inner().expect("poisoned");
    v.sort_by_key(|r| workloads.iter().position(|w| w.name == r.workload));
    v
}

/// §7.1: software-prefetch dynamic-instruction overhead.
#[derive(Debug, Clone)]
pub struct SwpfOverheadRow {
    /// Benchmark.
    pub workload: &'static str,
    /// Dynamic instructions without software prefetch.
    pub base_insts: u64,
    /// Dynamic instructions with software prefetch.
    pub sw_insts: u64,
}

impl SwpfOverheadRow {
    /// Fractional overhead (1.13 = +113%).
    pub fn overhead(&self) -> f64 {
        self.sw_insts as f64 / self.base_insts.max(1) as f64 - 1.0
    }
}

/// §7.1: dynamic instruction increase from software prefetching.
pub fn swpf_overhead(workloads: &[BuiltWorkload]) -> Vec<SwpfOverheadRow> {
    workloads
        .iter()
        .filter_map(|w| {
            let sw = w.sw_trace.as_ref()?;
            Some(SwpfOverheadRow {
                workload: w.name,
                base_insts: w.trace.class_counts().total(),
                sw_insts: sw.class_counts().total(),
            })
        })
        .collect()
}

/// Geometric mean of the speedups for one mode.
pub fn geomean(cells: &[SpeedupCell], mode: PrefetchMode) -> f64 {
    let vals: Vec<f64> = cells
        .iter()
        .filter(|c| c.mode == mode)
        .filter_map(|c| c.speedup)
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_tiny_grid_shapes_hold() {
        let workloads: Vec<BuiltWorkload> = [
            etpp_workloads::workload_by_name("HJ-8").unwrap(),
            etpp_workloads::workload_by_name("IntSort").unwrap(),
        ]
        .into_iter()
        .map(|w| w.build(Scale::Tiny))
        .collect();
        let cfg = SystemConfig::paper();
        let cells = fig7(&cfg, &workloads);
        // Manual must win on HJ-8 and beat stride everywhere.
        let get = |wl: &str, m: PrefetchMode| {
            cells
                .iter()
                .find(|c| c.workload == wl && c.mode == m)
                .and_then(|c| c.speedup)
        };
        let hj8_manual = get("HJ-8", PrefetchMode::Manual).unwrap();
        let hj8_stride = get("HJ-8", PrefetchMode::Stride).unwrap();
        assert!(hj8_manual > 1.5, "HJ-8 manual {hj8_manual}");
        assert!(hj8_manual > hj8_stride);
        let gm = geomean(&cells, PrefetchMode::Manual);
        assert!(gm > 1.2, "manual geomean {gm}");
    }

    #[test]
    fn fig10_lowest_id_scheduling_skews_work() {
        let w = etpp_workloads::workload_by_name("IntSort")
            .unwrap()
            .build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let rows = fig10(&cfg, std::slice::from_ref(&w));
        let a = &rows[0].activity;
        assert_eq!(a.len(), 12);
        assert!(
            a[0] >= a[11],
            "PPU 0 must work at least as much as PPU 11: {a:?}"
        );
    }

    #[test]
    fn swpf_overhead_reports_expected_benchmarks() {
        let workloads = vec![
            etpp_workloads::workload_by_name("IntSort")
                .unwrap()
                .build(Scale::Tiny),
            etpp_workloads::workload_by_name("PageRank")
                .unwrap()
                .build(Scale::Tiny),
        ];
        let rows = swpf_overhead(&workloads);
        assert_eq!(rows.len(), 1, "PageRank has no software variant");
        assert!(rows[0].overhead() > 0.3);
    }
}
