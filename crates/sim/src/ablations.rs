//! Ablations of the prefetcher's design parameters.
//!
//! The paper fixes the observation queue at 40 entries, the request queue
//! at 200, and motivates both dropping policies and the EWMA-driven
//! look-ahead. These drivers vary one parameter at a time on a benchmark
//! that stresses it, quantifying how much each design choice contributes —
//! the "ablation benches for the design choices DESIGN.md calls out".

use crate::config::{PrefetchMode, SystemConfig};
use crate::experiments::map_indexed;
use crate::system::run;
use etpp_core::PrefetcherParams;
use etpp_workloads::BuiltWorkload;

/// One ablation point: a parameter value and the speedup achieved with it.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Parameter value.
    pub value: u64,
    /// Speedup over the no-prefetch baseline.
    pub speedup: f64,
}

fn speedup_with(cfg: &SystemConfig, wl: &BuiltWorkload, base: u64) -> f64 {
    let r = run(cfg, PrefetchMode::Manual, wl).expect("manual program");
    assert!(r.validated, "{} ablation corrupted output", wl.name);
    base as f64 / r.cycles as f64
}

/// Runs one cycle-level Manual simulation per parameter value, sharded
/// across `jobs` workers (ablation points only differ in configuration,
/// so they are perfectly independent).
fn sweep(
    wl: &BuiltWorkload,
    values: &[u64],
    jobs: usize,
    configure: impl Fn(u64) -> SystemConfig + Sync,
) -> Vec<AblationPoint> {
    let base = run(&SystemConfig::paper(), PrefetchMode::None, wl)
        .expect("baseline")
        .cycles;
    map_indexed(jobs, values.len(), |i| AblationPoint {
        value: values[i],
        speedup: speedup_with(&configure(values[i]), wl, base),
    })
}

/// Sweeps the observation-queue depth (paper: 40 entries; overflow drops
/// the oldest observation).
pub fn observation_queue(wl: &BuiltWorkload, depths: &[usize], jobs: usize) -> Vec<AblationPoint> {
    let values: Vec<u64> = depths.iter().map(|&d| d as u64).collect();
    sweep(wl, &values, jobs, |d| {
        let mut cfg = SystemConfig::paper();
        cfg.pf = PrefetcherParams {
            observation_queue: d as usize,
            ..cfg.pf
        };
        cfg
    })
}

/// Sweeps the prefetch-request-queue depth (paper: 200 entries).
pub fn request_queue(wl: &BuiltWorkload, depths: &[usize], jobs: usize) -> Vec<AblationPoint> {
    let values: Vec<u64> = depths.iter().map(|&d| d as u64).collect();
    sweep(wl, &values, jobs, |d| {
        let mut cfg = SystemConfig::paper();
        cfg.pf = PrefetcherParams {
            request_queue: d as usize,
            ..cfg.pf
        };
        cfg
    })
}

/// Sweeps the EWMA look-ahead safety multiplier (§7.2's "overestimated
/// relative to the EWMAs"; 0 = use the raw ratio).
pub fn lookahead_scale(wl: &BuiltWorkload, scales: &[u64], jobs: usize) -> Vec<AblationPoint> {
    sweep(wl, scales, jobs, |s| {
        let mut cfg = SystemConfig::paper();
        cfg.pf = PrefetcherParams {
            lookahead_scale: s.max(1),
            ..cfg.pf
        };
        cfg
    })
}

/// Sweeps the prefetch-buffer capacity (DESIGN.md's L2-issue
/// interpretation; 0 entries disables prefetching entirely).
pub fn prefetch_buffer(wl: &BuiltWorkload, sizes: &[usize], jobs: usize) -> Vec<AblationPoint> {
    let values: Vec<u64> = sizes.iter().map(|&n| n as u64).collect();
    sweep(wl, &values, jobs, |n| {
        let mut cfg = SystemConfig::paper();
        cfg.mem.pf_buffer_entries = n as usize;
        cfg
    })
}

/// Renders an ablation sweep as a Markdown table.
pub fn table(title: &str, param: &str, points: &[AblationPoint]) -> String {
    let mut out = format!("## Ablation: {title}\n\n| {param} | speedup |\n|---|---|\n");
    for p in points {
        out += &format!("| {} | {:.2} |\n", p.value, p.speedup);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_workloads::{workload_by_name, Scale};

    #[test]
    fn zero_prefetch_buffer_disables_prefetching() {
        let wl = workload_by_name("IntSort").unwrap().build(Scale::Tiny);
        let pts = prefetch_buffer(&wl, &[0, 32], 2);
        assert!(
            (pts[0].speedup - 1.0).abs() < 0.08,
            "no buffer => no speedup, got {:.2}",
            pts[0].speedup
        );
        assert!(
            pts[1].speedup > pts[0].speedup + 0.1,
            "default buffer must beat none: {pts:?}"
        );
    }

    #[test]
    fn tiny_observation_queue_hurts() {
        let wl = workload_by_name("HJ-8").unwrap().build(Scale::Tiny);
        let pts = observation_queue(&wl, &[1, 40], 2);
        assert!(
            pts[1].speedup >= pts[0].speedup - 0.05,
            "40-entry queue should not lose to 1-entry: {pts:?}"
        );
    }
}
