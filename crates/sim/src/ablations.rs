//! Ablations of the prefetcher's design parameters.
//!
//! The paper fixes the observation queue at 40 entries, the request queue
//! at 200, and motivates both dropping policies and the EWMA-driven
//! look-ahead. These drivers vary one parameter at a time on a benchmark
//! that stresses it, quantifying how much each design choice contributes —
//! the "ablation benches for the design choices DESIGN.md calls out".
//!
//! Each grid is a single-axis [`crate::sweeps::SweepSpec`] over the
//! Manual engine, so ablations inherit the sweep farm's replay-first
//! execution and agreement-gated escalation instead of paying for a
//! cycle-level simulation per point.

use crate::config::{PrefetchMode, SystemConfig};
use crate::replay::load_or_capture_keyed;
use crate::sweeps::{axes, run_sweep, Axis, SweepOptions, SweepSpec};
use etpp_workloads::BuiltWorkload;

/// One ablation point: a parameter value and the speedup achieved with it.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Parameter value.
    pub value: u64,
    /// Speedup over the no-prefetch baseline.
    pub speedup: f64,
}

/// Runs a one-axis Manual-mode sweep over `wl`, replay-first: the
/// demand stream is captured once (one cycle-level run), then every
/// point replays against it, escalating to the cycle core only when the
/// stream-agreement gate says replay cannot be trusted at this scale.
fn single_axis(wl: &BuiltWorkload, axis: Axis, jobs: usize) -> Vec<AblationPoint> {
    let spec = SweepSpec {
        name: "ablation",
        base: SystemConfig::paper(),
        modes: vec![PrefetchMode::Manual],
        axes: vec![axis],
    };
    let cap = load_or_capture_keyed(None, &spec.base, wl, "ablation", etpp_trace::FORMAT_VERSION);
    let shard = run_sweep(
        &spec,
        std::slice::from_ref(wl),
        &[cap],
        &SweepOptions::new(jobs, "ablation"),
    );
    shard
        .cells
        .iter()
        .map(|c| {
            assert!(c.validated, "{} ablation corrupted output", wl.name);
            AblationPoint {
                value: c.settings[0].1,
                speedup: c.speedup.expect("manual program"),
            }
        })
        .collect()
}

/// Sweeps the observation-queue depth (paper: 40 entries; overflow drops
/// the oldest observation).
pub fn observation_queue(wl: &BuiltWorkload, depths: &[usize], jobs: usize) -> Vec<AblationPoint> {
    let values: Vec<u64> = depths.iter().map(|&d| d as u64).collect();
    single_axis(wl, axes::obs_queue(&values), jobs)
}

/// Sweeps the prefetch-request-queue depth (paper: 200 entries).
pub fn request_queue(wl: &BuiltWorkload, depths: &[usize], jobs: usize) -> Vec<AblationPoint> {
    let values: Vec<u64> = depths.iter().map(|&d| d as u64).collect();
    single_axis(wl, axes::req_queue(&values), jobs)
}

/// Sweeps the EWMA look-ahead safety multiplier (§7.2's "overestimated
/// relative to the EWMAs"; 0 = use the raw ratio, honoured end-to-end
/// by `EwmaBank` — no caller-side clamping).
pub fn lookahead_scale(wl: &BuiltWorkload, scales: &[u64], jobs: usize) -> Vec<AblationPoint> {
    single_axis(wl, axes::lookahead_scale(scales), jobs)
}

/// Sweeps the prefetch-buffer capacity (DESIGN.md's L2-issue
/// interpretation; 0 entries disables prefetching entirely).
pub fn prefetch_buffer(wl: &BuiltWorkload, sizes: &[usize], jobs: usize) -> Vec<AblationPoint> {
    let values: Vec<u64> = sizes.iter().map(|&n| n as u64).collect();
    single_axis(wl, axes::pf_buffer(&values), jobs)
}

/// Renders an ablation sweep as a Markdown table.
pub fn table(title: &str, param: &str, points: &[AblationPoint]) -> String {
    let mut out = format!("## Ablation: {title}\n\n| {param} | speedup |\n|---|---|\n");
    for p in points {
        out += &format!("| {} | {:.2} |\n", p.value, p.speedup);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_workloads::{workload_by_name, Scale};

    #[test]
    fn zero_prefetch_buffer_disables_prefetching() {
        let wl = workload_by_name("IntSort").unwrap().build(Scale::Tiny);
        let pts = prefetch_buffer(&wl, &[0, 32], 2);
        assert!(
            (pts[0].speedup - 1.0).abs() < 0.08,
            "no buffer => no speedup, got {:.2}",
            pts[0].speedup
        );
        assert!(
            pts[1].speedup > pts[0].speedup + 0.1,
            "default buffer must beat none: {pts:?}"
        );
    }

    #[test]
    fn tiny_observation_queue_hurts() {
        let wl = workload_by_name("HJ-8").unwrap().build(Scale::Tiny);
        let pts = observation_queue(&wl, &[1, 40], 2);
        assert!(
            pts[1].speedup >= pts[0].speedup - 0.05,
            "40-entry queue should not lose to 1-entry: {pts:?}"
        );
    }

    #[test]
    fn raw_lookahead_scale_is_swept_not_clamped() {
        // `0` must reach the EWMA bank as the raw-ratio request, not be
        // rewritten to 1 on the way in: the two points may legitimately
        // tie (0 ≡ 1 arithmetically) but both must run and validate.
        let wl = workload_by_name("IntSort").unwrap().build(Scale::Tiny);
        let pts = lookahead_scale(&wl, &[0, 4], 2);
        assert_eq!(pts[0].value, 0);
        assert!(pts.iter().all(|p| p.speedup > 0.0), "{pts:?}");
    }
}
