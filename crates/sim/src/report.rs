//! Plain-text rendering of experiment results in the paper's layout.

use crate::config::PrefetchMode;
use crate::experiments::{
    AdaptiveRow, Fig10Row, Fig8Row, Fig9aRow, SpeedupCell, SwpfOverheadRow, TelemetryCell,
    TrafficRow,
};

fn fmt_speedup(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:5.2}"),
        None => "    -".to_string(),
    }
}

/// Renders a Figure 7 / Figure 11 style speedup table.
pub fn speedup_table(title: &str, cells: &[SpeedupCell], modes: &[PrefetchMode]) -> String {
    let mut workloads: Vec<&str> = Vec::new();
    for c in cells {
        if !workloads.contains(&c.workload) {
            workloads.push(c.workload);
        }
    }
    let mut out = format!("## {title}\n\n| Benchmark |");
    for m in modes {
        out += &format!(" {} |", m.label());
    }
    out += "\n|---|";
    for _ in modes {
        out += "---|";
    }
    out += "\n";
    for w in &workloads {
        out += &format!("| {w} |");
        for m in modes {
            let s = cells
                .iter()
                .find(|c| c.workload == *w && c.mode == *m)
                .and_then(|c| c.speedup);
            out += &format!(" {} |", fmt_speedup(s));
        }
        out += "\n";
    }
    out += "| **geomean** |";
    for m in modes {
        let gm = crate::experiments::geomean(cells, *m);
        out += &format!(" {gm:5.2} |");
    }
    out += "\n";
    out
}

/// Renders Figure 8's two panels.
pub fn fig8_table(rows: &[Fig8Row]) -> String {
    let mut out = String::from(
        "## Figure 8: prefetch utilisation and hit rates (Manual)\n\n\
         | Benchmark | L1 PF utilisation | L1 hit (no PF) | L1 hit (PF) | L2 hit (no PF) | L2 hit (PF) | Late PF merges |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out += &format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {} |\n",
            r.workload,
            r.l1_utilisation,
            r.l1_hit_nopf,
            r.l1_hit_pf,
            r.l2_hit_nopf,
            r.l2_hit_pf,
            r.late_pf_merges
        );
    }
    out
}

/// Renders the prefetch lifecycle classification per (workload, engine):
/// what fraction of classified prefetches were accurate, late,
/// early-evicted or useless (see `etpp_mem::LifecycleCounts`).
pub fn lifecycle_table(cells: &[TelemetryCell]) -> String {
    let mut out = String::from(
        "## Prefetch lifecycle (telemetry)\n\n\
         Percentages are of *classified* prefetches (reached a terminal class);\n\
         `issued` also counts dropped/redundant/demand-merged requests and\n\
         prefetches still in flight or resident-unused at run end.\n\n\
         | Benchmark | Engine | Issued | Accurate | Late | Early-evicted | Useless | Late PF merges |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for c in cells {
        let l = &c.report.lifecycle;
        out += &format!(
            "| {} | {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {} |\n",
            c.workload,
            c.mode.label(),
            l.issued,
            l.pct(l.accurate),
            l.pct(l.late),
            l.pct(l.early_evicted),
            l.pct(l.useless),
            c.result.mem.l1.late_prefetch_merges,
        );
    }
    out
}

/// Renders a summary of each cell's phase time-series and span log: how
/// much the sampler and the trace exporter actually captured, plus the
/// end-of-run load-latency distribution as a quick-look.
pub fn phase_summary_table(cells: &[TelemetryCell]) -> String {
    let mut out = String::from(
        "## Phase timelines and trace spans (telemetry)\n\n\
         | Benchmark | Engine | Cycles | Samples | Interval | Load-lat p50 | Load-lat p99 | Spans | Dropped |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for c in cells {
        let lat = c.report.registry.hist("mem.load_latency");
        let (p50, p99) = lat.map_or((0, 0), |h| (h.quantile(0.5), h.quantile(0.99)));
        out += &format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            c.workload,
            c.mode.label(),
            c.result.cycles,
            c.report.phases.samples.len(),
            c.report.phases.interval,
            p50,
            p99,
            c.report.spans.len(),
            c.report.spans_dropped,
        );
    }
    out
}

/// Renders a Figure 9(a) clock sweep.
pub fn fig9a_table(rows: &[Fig9aRow]) -> String {
    let mut out = String::from("## Figure 9a: speedup vs PPU clock (12 PPUs)\n\n| Benchmark |");
    if let Some(first) = rows.first() {
        for (hz, _) in &first.points {
            out += &format!(" {} |", clock_label(*hz));
        }
    }
    out += "\n|---|";
    if let Some(first) = rows.first() {
        for _ in &first.points {
            out += "---|";
        }
    }
    out += "\n";
    for r in rows {
        out += &format!("| {} |", r.workload);
        for (_, s) in &r.points {
            out += &format!(" {s:5.2} |");
        }
        out += "\n";
    }
    out
}

/// Renders Figure 9(b)'s count × clock sweep.
pub fn fig9b_table(series: &[(usize, Vec<(u64, f64)>)]) -> String {
    let mut out = String::from("## Figure 9b: G500-CSR, PPU count x clock\n\n| PPUs |");
    if let Some((_, pts)) = series.first() {
        for (hz, _) in pts {
            out += &format!(" {} |", clock_label(*hz));
        }
        out += "\n|---|";
        for _ in pts {
            out += "---|";
        }
        out += "\n";
    }
    for (n, pts) in series {
        out += &format!("| {n} |");
        for (_, s) in pts {
            out += &format!(" {s:5.2} |");
        }
        out += "\n";
    }
    out
}

/// Renders Figure 10's activity distribution (min/quartiles/median/max).
pub fn fig10_table(rows: &[Fig10Row]) -> String {
    let mut out = String::from(
        "## Figure 10: PPU activity factors (12 PPUs @ 1GHz, lowest-ID-first)\n\n\
         | Benchmark | min | q1 | median | q3 | max | idle PPUs |\n|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let mut sorted = r.activity.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        let idle = sorted.iter().filter(|&&a| a == 0.0).count();
        out += &format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {} |\n",
            r.workload,
            q(0.0),
            q(0.25),
            q(0.5),
            q(0.75),
            q(1.0),
            idle
        );
    }
    out
}

/// Renders the §7.2 extra-traffic table.
pub fn traffic_table(rows: &[TrafficRow]) -> String {
    let mut out = String::from(
        "## Extra memory accesses (Manual vs no-PF, section 7.2)\n\n\
         | Benchmark | DRAM accesses (no PF) | DRAM accesses (PF) | extra |\n|---|---|---|---|\n",
    );
    for r in rows {
        out += &format!(
            "| {} | {} | {} | {:+.1}% |\n",
            r.workload,
            r.base_accesses,
            r.pf_accesses,
            100.0 * r.extra()
        );
    }
    out
}

/// Renders the §7.1 software-prefetch overhead table.
pub fn swpf_table(rows: &[SwpfOverheadRow]) -> String {
    let mut out = String::from(
        "## Software prefetch dynamic instruction overhead (section 7.1)\n\n\
         | Benchmark | plain insts | swpf insts | overhead |\n|---|---|---|---|\n",
    );
    for r in rows {
        out += &format!(
            "| {} | {} | {} | {:+.0}% |\n",
            r.workload,
            r.base_insts,
            r.sw_insts,
            100.0 * r.overhead()
        );
    }
    out
}

/// Renders the adaptive-vs-static table: the meta-engine's cycles next
/// to every static configuration it chooses between, plus its decision
/// log (switch count, switch cycles, final engine).
pub fn adaptive_table(rows: &[AdaptiveRow]) -> String {
    let mut out = String::from("## Phase-adaptive engine vs static configs\n\n| Benchmark |");
    if let Some(first) = rows.first() {
        for (m, _) in &first.statics {
            out += &format!(" {} (cycles) |", m.label());
        }
    }
    out += " Adaptive (cycles) | vs best static | Switches | Final engine |\n|---|";
    if let Some(first) = rows.first() {
        for _ in &first.statics {
            out += "---|";
        }
    }
    out += "---|---|---|---|\n";
    for r in rows {
        out += &format!("| {} |", r.workload);
        for (_, cycles) in &r.statics {
            out += &format!(" {cycles} |");
        }
        let best = r
            .statics
            .iter()
            .map(|&(_, c)| c)
            .min()
            .unwrap_or(r.adaptive_cycles);
        let switches = r
            .summary
            .switches
            .iter()
            .map(|(cy, ch)| format!("@{cy}→{}", ch.label()))
            .collect::<Vec<_>>()
            .join(", ");
        out += &format!(
            " {} | {:+.1}% | {} | {} |\n",
            r.adaptive_cycles,
            100.0 * (r.adaptive_cycles as f64 / best.max(1) as f64 - 1.0),
            if switches.is_empty() {
                r.summary.reconfigurations.to_string()
            } else {
                format!("{} ({switches})", r.summary.reconfigurations)
            },
            r.summary.final_choice.label(),
        );
    }
    out
}

fn clock_label(hz: u64) -> String {
    if hz >= 1_000_000_000 {
        format!("{}GHz", hz / 1_000_000_000)
    } else {
        format!("{}MHz", hz / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_table_renders_missing_bars() {
        let cells = vec![
            SpeedupCell {
                workload: "X",
                mode: PrefetchMode::Manual,
                speedup: Some(3.0),
                result: None,
            },
            SpeedupCell {
                workload: "X",
                mode: PrefetchMode::Software,
                speedup: None,
                result: None,
            },
        ];
        let t = speedup_table("T", &cells, &[PrefetchMode::Software, PrefetchMode::Manual]);
        assert!(t.contains(" 3.00 |"));
        assert!(t.contains("    - |"), "missing bar rendered as dash:\n{t}");
    }

    #[test]
    fn clock_labels() {
        assert_eq!(clock_label(250_000_000), "250MHz");
        assert_eq!(clock_label(2_000_000_000), "2GHz");
    }
}
