//! Watchdog layer: deadlines, cooperative cancellation, and livelock
//! detection for every execution path in the simulator.
//!
//! Two independent guards live here:
//!
//! * A [`Watchdog`] wraps an [`CancelToken`] (from `etpp_mem`) and is
//!   threaded into [`crate::system::run_watched`], the trace-replay
//!   loop, and [`etpp_mem::MemorySystem::advance_to`]. It is polled at
//!   *driver-visit* granularity — never per simulated cycle — and the
//!   (syscall-backed) deadline poll is strided to every
//!   [`CHECK_STRIDE`]th visit, so an armed-but-quiet watchdog costs a
//!   null-check plus an occasional atomic load and watched runs are
//!   bit-identical to unwatched ones (pinned by the equivalence suite).
//!   When the token fires, the run aborts with a typed
//!   [`Cancelled`] payload that the isolation layer
//!   ([`crate::faults::run_isolated_budgeted`]) classifies as a
//!   `timeout` or `cancelled` quarantine instead of a crash.
//!
//! * A [`LivelockDetector`] is armed *unconditionally* in the
//!   event-horizon driver loop. The driver's only prior runaway guard
//!   was the `max_cycles` assert — 2×10¹⁰ cycles away. A buggy
//!   `next_event_at` arm (or a degenerate config from a freshly widened
//!   ablation axis) that reports a horizon `<= now` degrades the driver
//!   to one-cycle-per-visit crawling, which is indistinguishable from a
//!   hang at any human timescale. Healthy horizons are strictly greater
//!   than `now` by construction, so the detector observes every visit's
//!   *raw* reported horizon and aborts with a named [`LivelockAbort`]
//!   diagnostic (cycle, winning [`HorizonSource`], engine mode, last K
//!   horizons) once [`LIVELOCK_THRESHOLD`] consecutive visits fail to
//!   advance it — a condition impossible in a healthy run, which keeps
//!   the always-armed detector observationally free.

use etpp_cpu::HorizonSource;
pub use etpp_mem::cancel::{CancelReason, CancelToken, Cancelled};
use std::fmt;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Visits between wall-clock deadline polls on the hot driver loops.
/// Power of two (the stride is a mask); at typical visit rates this
/// bounds cancellation latency to well under a millisecond while
/// keeping `Instant::now` off the per-visit path.
pub const CHECK_STRIDE: u64 = 64;

/// Consecutive non-advancing visits before [`LivelockDetector`] aborts.
pub const LIVELOCK_THRESHOLD: u32 = 64;

/// Raw horizons kept in the livelock diagnostic's tail window.
pub const LIVELOCK_WINDOW: usize = 8;

/// Budget escalation factor for the single timeout retry: the second
/// attempt of a timed-out cell runs under `factor × budget` before the
/// cell is quarantined for good.
pub const BUDGET_ESCALATION: u32 = 4;

/// A deadline/cancellation guard for one simulation run: a token plus
/// the visit-strided polling discipline shared by the cycle driver and
/// the replay loop.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    token: CancelToken,
}

impl Watchdog {
    /// Guards a run with an existing token (sweep cells share their
    /// attempt's token between the driver and the fault plan).
    pub fn new(token: CancelToken) -> Self {
        Watchdog { token }
    }

    /// Guards a run with a fresh token whose deadline is `budget` from
    /// now.
    pub fn with_budget(budget: Duration) -> Self {
        Watchdog::new(CancelToken::with_budget(budget))
    }

    /// The underlying token (clone it into [`etpp_mem::MemorySystem`]
    /// via `set_cancel`, or hand it to a cancelling party).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Per-visit poll: aborts with a [`Cancelled`] payload when the
    /// token has fired. `visit` strides the deadline poll; cheap enough
    /// for once-per-driver-visit use, never call it per cycle.
    #[inline]
    pub fn check(&self, visit: u64, now: u64) {
        if visit & (CHECK_STRIDE - 1) == 0 {
            self.token.check(now);
        }
    }
}

// ---------------------------------------------------------------------------
// Livelock detection
// ---------------------------------------------------------------------------

/// Typed panic payload of a livelock abort: the named diagnostic the
/// driver raises when the event horizon stops advancing.
#[derive(Debug, Clone)]
pub struct LivelockAbort {
    /// Benchmark name.
    pub workload: String,
    /// Engine-mode key.
    pub mode: String,
    /// Cycle the driver was stuck at.
    pub at_cycle: u64,
    /// The horizon source that "won" the stuck visits.
    pub source: HorizonSource,
    /// Consecutive visits whose horizon failed to advance.
    pub stalled_visits: u32,
    /// The last [`LIVELOCK_WINDOW`] raw horizons, oldest first.
    pub recent_horizons: Vec<u64>,
}

impl fmt::Display for LivelockAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "livelock: horizon stuck at cycle {} for {} consecutive visits \
             ({} / {}, winning source {}, last horizons {:?})",
            self.at_cycle,
            self.stalled_visits,
            self.workload,
            self.mode,
            self.source.key(),
            self.recent_horizons,
        )
    }
}

static LIVELOCK_ABORTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of livelock aborts. Snapshot before a run and
/// report the delta — the static outlives any single sweep or test.
pub fn livelock_aborts() -> u64 {
    LIVELOCK_ABORTS.load(Ordering::Relaxed)
}

/// Watches the driver loop's reported horizons and aborts the run with
/// a [`LivelockAbort`] once they stop advancing. Armed on every run:
/// observation is two compares per visit, and the trigger condition is
/// impossible while the horizon invariant (`horizon > now`) holds, so
/// detection is free on healthy runs.
#[derive(Debug)]
pub struct LivelockDetector {
    stalled: u32,
    recent: [u64; LIVELOCK_WINDOW],
    seen: usize,
}

impl Default for LivelockDetector {
    fn default() -> Self {
        LivelockDetector::new()
    }
}

impl LivelockDetector {
    /// A fresh detector (one per run).
    pub fn new() -> Self {
        LivelockDetector {
            stalled: 0,
            recent: [0; LIVELOCK_WINDOW],
            seen: 0,
        }
    }

    /// Observes one driver visit's *raw* reported horizon (before the
    /// driver clamps it to `now + 1`). Aborts with a [`LivelockAbort`]
    /// after [`LIVELOCK_THRESHOLD`] consecutive visits whose horizon
    /// failed to exceed `now`.
    #[inline]
    pub fn observe(
        &mut self,
        now: u64,
        horizon: u64,
        source: HorizonSource,
        workload: &str,
        mode: &str,
    ) {
        if horizon > now {
            self.stalled = 0;
            return;
        }
        self.recent[self.seen % LIVELOCK_WINDOW] = horizon;
        self.seen += 1;
        self.stalled += 1;
        if self.stalled >= LIVELOCK_THRESHOLD {
            LIVELOCK_ABORTS.fetch_add(1, Ordering::Relaxed);
            let mut recent_horizons = Vec::with_capacity(LIVELOCK_WINDOW.min(self.seen));
            let kept = LIVELOCK_WINDOW.min(self.seen);
            for i in 0..kept {
                recent_horizons.push(self.recent[(self.seen - kept + i) % LIVELOCK_WINDOW]);
            }
            panic_any(LivelockAbort {
                workload: workload.to_string(),
                mode: mode.to_string(),
                at_cycle: now,
                source,
                stalled_visits: self.stalled,
                recent_horizons,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn detector_fires_on_a_synthetic_non_advancing_horizon() {
        let before = livelock_aborts();
        let mut d = LivelockDetector::new();
        let err = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..LIVELOCK_THRESHOLD + 10 {
                // A buggy horizon arm keeps reporting `horizon == now`.
                d.observe(1000, 1000, HorizonSource::CoreProgress, "IntSort", "manual");
            }
        }))
        .expect_err("a stuck horizon must abort");
        let abort = err
            .downcast_ref::<LivelockAbort>()
            .expect("typed LivelockAbort payload");
        assert_eq!(abort.at_cycle, 1000);
        assert_eq!(abort.stalled_visits, LIVELOCK_THRESHOLD);
        assert_eq!(abort.source, HorizonSource::CoreProgress);
        assert_eq!(abort.recent_horizons, vec![1000; LIVELOCK_WINDOW]);
        assert!(abort.to_string().contains("livelock: horizon stuck"));
        assert_eq!(livelock_aborts(), before + 1, "abort is counted");
    }

    #[test]
    fn detector_resets_on_any_advancing_visit() {
        let mut d = LivelockDetector::new();
        for round in 0..3u64 {
            for _ in 0..LIVELOCK_THRESHOLD - 1 {
                d.observe(round, round, HorizonSource::MemEvent, "wl", "none");
            }
            // One healthy visit clears the streak.
            d.observe(round, round + 5, HorizonSource::MemEvent, "wl", "none");
        }
    }

    #[test]
    fn watchdog_check_is_strided_and_quiet_until_fired() {
        let wd = Watchdog::with_budget(Duration::from_secs(3600));
        for visit in 0..1000 {
            wd.check(visit, visit);
        }
        let armed = Watchdog::new(CancelToken::new());
        armed.token().cancel();
        // Off-stride visits do not poll...
        armed.check(1, 0);
        // ...the strided visit does.
        let err = catch_unwind(AssertUnwindSafe(|| armed.check(0, 7))).unwrap_err();
        let c = err.downcast_ref::<Cancelled>().expect("typed payload");
        assert_eq!(c.at_cycle, 7);
        assert_eq!(c.reason, CancelReason::Requested);
    }
}
