//! The simulated system: one core + memory hierarchy + prefetch engine.
//!
//! [`run`] executes a built workload under a chosen [`PrefetchMode`] and
//! returns cycle counts plus every statistic the paper's figures need. The
//! memory image is cloned per run, so a [`BuiltWorkload`] can be reused
//! across an entire parameter sweep.

use crate::adaptive::{AdaptiveEngine, AdaptiveParams, AdaptiveSummary};
use crate::config::{PrefetchMode, SystemConfig};
use crate::telemetry::{hist_columns, PhaseSampler, TelemetryReport, TelemetrySpec};
use crate::watchdog::{LivelockDetector, Watchdog};
use etpp_baselines::{
    GhbParams, GhbPrefetcher, PcDeltaParams, PcDeltaPrefetcher, RptStridePrefetcher, StrideParams,
    StridePrefetcher,
};
use etpp_core::{PfEngineStats, PrefetcherParams, ProgrammablePrefetcher};
use etpp_cpu::{Core, CoreStats, HorizonSource, RetiredEvent, Trace};
use etpp_mem::{MemStats, MemorySystem, NullEngine, PrefetchEngine};
use etpp_telemetry::{Registry, SpanEvent, SpanSink};
use etpp_workloads::{checksum_region, BuiltWorkload, PrefetchSetup};

/// Per-source driver-visit attribution: how many visited cycles each
/// [`HorizonSource`] pinned. `host_iters == visits.total()` on the
/// horizon-aware path (the per-cycle reference does not attribute).
/// This is the ROADMAP's "idle-span instrumentation": it shows where
/// the next fast-forward factor lives, surfaced by `speedcheck --json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VisitCounts(pub [u64; HorizonSource::COUNT]);

impl VisitCounts {
    /// `(source key, count)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        HorizonSource::ALL
            .iter()
            .map(move |&s| (s.key(), self.0[s as usize]))
    }

    /// Total attributed visits.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Mode simulated.
    pub mode: PrefetchMode,
    /// Total cycles to completion.
    pub cycles: u64,
    /// Driver-loop iterations — *visits*, each executing one dense span
    /// of busy cycles plus one horizon jump through the stall that ends
    /// it. `cycles / host_iters` is the horizon fast-forward factor;
    /// per-cycle reference runs have `host_iters == cycles`.
    pub host_iters: u64,
    /// Core-side statistics.
    pub core: CoreStats,
    /// Memory-side statistics.
    pub mem: MemStats,
    /// Programmable-prefetcher statistics (programmable modes only).
    pub pf: Option<PfEngineStats>,
    /// Dynamic instruction count (trace length actually retired).
    pub dyn_insts: u64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Whether the post-run memory image matched the expected checksum.
    pub validated: bool,
    /// Final EWMA look-ahead of filter range 0 (programmable modes).
    pub final_lookahead: u64,
    /// Per-source attribution of every driver visit (zeros on the
    /// per-cycle reference path, which visits unconditionally).
    pub visits: VisitCounts,
    /// Phase-adaptive decision log ([`PrefetchMode::Adaptive`] only).
    pub adaptive: Option<AdaptiveSummary>,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.dyn_insts as f64 / self.cycles.max(1) as f64
    }

    /// Horizon fast-forward factor: simulated cycles per visited host
    /// iteration. Deterministic (unlike wall time), so regression gates
    /// key on it.
    pub fn ff(&self) -> f64 {
        self.cycles as f64 / self.host_iters.max(1) as f64
    }
}

/// Why a (workload, mode) combination cannot be simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skip {
    /// The paper notes this combination is impossible (e.g. software
    /// prefetch through BGL iterators).
    NotExpressible(&'static str),
    /// No prefetch program available for this mode.
    NoProgram(&'static str),
}

impl std::fmt::Display for Skip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skip::NotExpressible(why) => write!(f, "not expressible: {why}"),
            Skip::NoProgram(mode) => write!(f, "no {mode} program"),
        }
    }
}

/// A mode's prefetch engine, concretely typed so callers can reach
/// engine-specific statistics after a run.
pub enum Engine {
    /// No prefetching.
    Null(NullEngine),
    /// Reference-prediction-table stride baseline (two-bit confidence).
    Stride(StridePrefetcher),
    /// Four-state Chen & Baer RPT stride cross-check.
    Rpt(RptStridePrefetcher),
    /// PC-delta accuracy-threshold engine.
    PcDelta(PcDeltaPrefetcher),
    /// Phase-adaptive meta-engine (stride ↔ PC-delta).
    Adaptive(Box<AdaptiveEngine>),
    /// Markov global-history-buffer baseline.
    Ghb(Box<GhbPrefetcher>),
    /// The paper's programmable prefetcher.
    Prog(Box<ProgrammablePrefetcher>),
}

impl Engine {
    /// The engine as the trait object the memory system drives.
    pub fn as_dyn(&mut self) -> &mut dyn PrefetchEngine {
        match self {
            Engine::Null(e) => e,
            Engine::Stride(e) => e,
            Engine::Rpt(e) => e,
            Engine::PcDelta(e) => e,
            Engine::Adaptive(e) => e.as_mut(),
            Engine::Ghb(e) => e.as_mut(),
            Engine::Prog(e) => e.as_mut(),
        }
    }

    /// Programmable-prefetcher statistics snapshot (reporting boundary
    /// only — allocates the per-PPU vectors).
    pub fn pf_stats(&self) -> Option<PfEngineStats> {
        match self {
            Engine::Prog(p) => Some(p.stats()),
            _ => None,
        }
    }

    /// Phase-adaptive decision log, when this is the meta-engine.
    pub fn adaptive_summary(&self) -> Option<AdaptiveSummary> {
        match self {
            Engine::Adaptive(a) => Some(a.summary()),
            _ => None,
        }
    }
}

/// Builds the prefetch engine for `mode` without choosing a trace — shared
/// between the cycle-level path, trace replay and the equivalence tests.
/// `Software` has no engine (its prefetches live in the instruction
/// stream) and is rejected here; the cycle-level path special-cases it.
///
/// # Errors
/// [`Skip`] when the mode needs a prefetch program the workload lacks.
pub fn make_engine(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
) -> Result<Engine, Skip> {
    match mode {
        PrefetchMode::None => Ok(Engine::Null(NullEngine)),
        PrefetchMode::Stride => Ok(Engine::Stride(StridePrefetcher::new(StrideParams::paper()))),
        PrefetchMode::RptStride => Ok(Engine::Rpt(RptStridePrefetcher::new(StrideParams::paper()))),
        PrefetchMode::PcDelta => Ok(Engine::PcDelta(PcDeltaPrefetcher::new(
            PcDeltaParams::paper(),
        ))),
        PrefetchMode::Adaptive => Ok(Engine::Adaptive(Box::new(AdaptiveEngine::new(
            AdaptiveParams::paper(),
        )))),
        PrefetchMode::GhbRegular => Ok(Engine::Ghb(Box::new(GhbPrefetcher::new(
            GhbParams::regular(),
        )))),
        PrefetchMode::GhbLarge => Ok(Engine::Ghb(Box::new(
            GhbPrefetcher::new(GhbParams::large()),
        ))),
        PrefetchMode::Software => Err(Skip::NotExpressible(
            "software prefetches are instructions, not an engine",
        )),
        PrefetchMode::Manual => match &wl.manual {
            Some(s) => Ok(Engine::Prog(Box::new(programmable(cfg.pf, s, false)))),
            None => Err(Skip::NoProgram("manual")),
        },
        PrefetchMode::Blocked => match &wl.manual {
            Some(s) => Ok(Engine::Prog(Box::new(programmable(cfg.pf, s, true)))),
            None => Err(Skip::NoProgram("manual")),
        },
        PrefetchMode::Converted => match &wl.converted {
            Some(s) => Ok(Engine::Prog(Box::new(programmable(cfg.pf, s, false)))),
            None => Err(Skip::NoProgram("converted")),
        },
        PrefetchMode::Pragma => match &wl.pragma {
            Some(s) => Ok(Engine::Prog(Box::new(programmable(cfg.pf, s, false)))),
            None => Err(Skip::NoProgram("pragma")),
        },
    }
}

fn programmable(
    params: PrefetcherParams,
    setup: &PrefetchSetup,
    blocked: bool,
) -> ProgrammablePrefetcher {
    let params = PrefetcherParams {
        blocked_mode: blocked,
        ..params
    };
    let mut pf = ProgrammablePrefetcher::new(params, setup.program.clone());
    for op in &setup.configs {
        pf.config(0, op);
    }
    pf
}

/// Selects the trace and engine for `mode`.
///
/// # Errors
/// Returns [`Skip`] when the combination is impossible for this workload
/// (matching the paper's missing bars).
fn select<'w>(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &'w BuiltWorkload,
) -> Result<(&'w Trace, Engine), Skip> {
    match mode {
        PrefetchMode::Software => match &wl.sw_trace {
            Some(t) => Ok((t, Engine::Null(NullEngine))),
            None => Err(Skip::NotExpressible(wl.notes)),
        },
        _ => Ok((&wl.trace, make_engine(cfg, mode, wl)?)),
    }
}

/// Simulates `wl` under `mode`, returning full statistics.
///
/// # Errors
/// [`Skip`] when the mode is impossible for this workload.
///
/// # Panics
/// Panics if the simulation exceeds `cfg.max_cycles` (deadlock guard) or
/// the trace accesses unmapped memory (workload generator bug).
pub fn run(cfg: &SystemConfig, mode: PrefetchMode, wl: &BuiltWorkload) -> Result<RunResult, Skip> {
    Ok(run_inner(cfg, mode, wl, false, None, None)?.0)
}

/// [`run`] under a [`Watchdog`]: the token is polled once per driver
/// visit (and at every [`MemorySystem::advance_to`] entry) — never per
/// cycle — so an armed-but-quiet watchdog is pure observation and the
/// result is bit-identical to an unwatched [`run`] (pinned by the
/// equivalence suite). A fired token aborts the run by panicking with
/// the token's typed [`crate::watchdog::Cancelled`] payload, which the
/// sweep farm's isolation layer quarantines as a timeout/cancellation.
///
/// # Errors
/// [`Skip`] when the mode is impossible for this workload.
pub fn run_watched(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    wd: &Watchdog,
) -> Result<RunResult, Skip> {
    Ok(run_inner(cfg, mode, wl, false, None, Some(wd))?.0)
}

/// Simulates `wl` under `mode` with observability enabled, returning
/// the usual [`RunResult`] plus a [`TelemetryReport`] (merged counter
/// registry, phase time-series, prefetch lifecycle classification and —
/// when `spec.chrome_spans` — the span log for a Chrome trace).
///
/// Telemetry is pure observation: the `RunResult` is bit-identical to a
/// [`run`] of the same inputs (pinned by the equivalence suite).
///
/// # Errors
/// [`Skip`] when the mode is impossible for this workload.
pub fn run_telemetry(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    spec: &TelemetrySpec,
) -> Result<(RunResult, TelemetryReport), Skip> {
    let (result, _, report) = run_inner(cfg, mode, wl, false, Some(spec), None)?;
    Ok((result, report.expect("telemetry was requested")))
}

/// Simulates `wl` under `mode` while recording the retired demand-access
/// and configuration stream for later [`etpp_trace`] replay.
///
/// `scale_label` is stored in the trace metadata (a [`BuiltWorkload`] does
/// not remember the scale it was built at).
///
/// # Errors
/// [`Skip`] when the mode is impossible for this workload.
pub fn run_captured(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    scale_label: &str,
) -> Result<(RunResult, etpp_trace::CapturedTrace), Skip> {
    let (result, events, _) = run_inner(cfg, mode, wl, true, None, None)?;
    // The capture run's cycle count rides in the (v2) trace metadata so
    // replay consumers can report absolute-cycle agreement without
    // re-running the cycle core.
    let meta = etpp_trace::TraceMeta::new(wl.name, scale_label).with_capture_cycles(result.cycles);
    let mut cap = etpp_trace::CaptureBuffer::new(meta);
    for ev in events {
        match ev {
            RetiredEvent::Access {
                cycle,
                pc,
                vaddr,
                kind,
                value,
                size,
                dep,
            } => cap.access(cycle, pc, vaddr, kind, value, size, dep),
            RetiredEvent::Config { cycle, op } => cap.config(cycle, &op),
        }
    }
    Ok((result, cap.finish()))
}

/// Phase-sample values, aligned with [`crate::telemetry::PHASE_COLUMNS`].
fn phase_values(core: &CoreStats, mem: &MemorySystem) -> Vec<u64> {
    let ms = mem.stats();
    let tel = mem.telemetry();
    let (ll, mo, lc) = match tel {
        Some(t) => (
            hist_columns(&t.load_latency),
            hist_columns(&t.mshr_occupancy),
            t.lifecycle.counts.clone(),
        ),
        None => ((0, 0, 0), (0, 0, 0), Default::default()),
    };
    vec![
        core.insts_retired,
        core.loads_issued,
        core.load_retries,
        ms.l1.read_hits,
        ms.l1.read_misses,
        ms.l1.late_prefetch_merges,
        ms.l1.prefetch_fills,
        ms.l1.prefetches_used,
        ms.dram.reads,
        lc.issued,
        lc.accurate,
        lc.late,
        ll.0,
        ll.1,
        ll.2,
        mo.0,
        mo.2,
    ]
}

fn run_inner(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    capture: bool,
    tel: Option<&TelemetrySpec>,
    wd: Option<&Watchdog>,
) -> Result<(RunResult, Vec<RetiredEvent>, Option<TelemetryReport>), Skip> {
    let (trace, mut engine) = select(cfg, mode, wl)?;
    let mut mem = MemorySystem::new(cfg.mem, wl.image.clone());
    if cfg.per_cycle_reference {
        mem.set_engine_batching(false);
    }
    if let Some(wd) = wd {
        mem.set_cancel(Some(wd.token().clone()));
    }
    let mut core = Core::new(cfg.core, trace);
    if capture {
        core.enable_capture();
    }
    let mut sampler = tel.map(|s| PhaseSampler::new(s.sample_interval));
    let mut visit_spans = tel.and_then(|s| s.chrome_spans.then(|| SpanSink::new(s.span_cap)));
    if let Some(spec) = tel {
        mem.enable_telemetry(spec.chrome_spans, spec.span_cap);
        core.enable_telemetry();
        if let Engine::Prog(p) = &mut engine {
            p.enable_telemetry();
        }
    }

    // Horizon-aware driver loop: one *driver visit* per iteration. A
    // visit executes a whole *dense span* — back-to-back busy cycles
    // whose horizon is pinned to the very next cycle (retire, issue,
    // dispatch, store drains, FU wake chains) run cycle-locked inside
    // the visit, the core-side analogue of `MemorySystem::advance_to`
    // internalising transfers and engine rounds — and ends with one
    // horizon jump through the following stall. All intermediate
    // memory-system work (cache/DRAM transfers, engine rounds, prefetch
    // pops) runs inside `advance_to` at its exact cycle, and the visit
    // resumes early whenever a demand completion falls due. The
    // sequence of per-cycle `tick` calls is identical to the unfused
    // loop, so fusion is behaviour-preserving by construction. With
    // `per_cycle_reference` the clock advances one cycle per iteration
    // instead; both paths are pinned bit-identical by
    // `tests/event_horizon_equivalence.rs`.
    let mut now: u64 = 0;
    let mut host_iters: u64 = 0;
    let mut visits = VisitCounts::default();
    // Always-armed livelock guard: observes each visit's raw reported
    // horizon and aborts with a named diagnostic if it stops advancing
    // — a condition impossible while the horizon invariant holds, so
    // healthy runs are untouched (the only other runaway guard is the
    // `max_cycles` assert, 2×10¹⁰ cycles away).
    let mut livelock = LivelockDetector::new();
    while !core.finished() {
        host_iters += 1;
        // Cooperative cancellation, visit granularity: one null-check
        // when unwatched, a strided token poll when armed.
        if let Some(wd) = wd {
            wd.check(host_iters, now);
        }
        let visit_start = now;
        loop {
            mem.tick(now, engine.as_dyn());
            core.tick(now, &mut mem);
            let configs = core.take_configs();
            if !configs.is_empty() {
                for op in &configs {
                    engine.as_dyn().config(now, op);
                }
                // Configs mutate the engine behind the memory system's
                // back; invalidate its cached event horizon.
                mem.wake_engine();
            }
            // Phase sampler: snapshot the cumulative counters on the
            // first tick at/after each interval boundary. `None` when
            // telemetry is off — one Option check per visited cycle.
            if let Some(s) = sampler.as_mut() {
                if s.due(now) {
                    let values = phase_values(&core.stats, &mem);
                    s.sample(now, values);
                }
            }
            if cfg.per_cycle_reference {
                now += 1;
                break;
            }
            if core.finished() {
                // Do not fast-forward through in-flight prefetch drains
                // after the last retirement: the reference loop exits
                // one cycle after the finishing tick, and so must we.
                visits.0[HorizonSource::Finish as usize] += 1;
                if let Some(sink) = visit_spans.as_mut() {
                    sink.push(SpanEvent {
                        name: HorizonSource::Finish.key(),
                        ts: visit_start,
                        dur: now + 1 - visit_start,
                        tid: SpanSink::LANE_VISITS,
                    });
                }
                now += 1;
                break;
            }
            let horizon = core.next_event_at(now, &mem);
            livelock.observe(now, horizon, core.horizon_source(), wl.name, mode.key());
            if horizon == now + 1 {
                // Dense span: the core progresses on the very next
                // cycle, so stay inside this visit (`advance_to(now,
                // now + 1)` would return immediately anyway).
                now += 1;
                assert!(
                    now < cfg.max_cycles,
                    "simulation exceeded {} cycles for {} / {:?}",
                    cfg.max_cycles,
                    wl.name,
                    mode
                );
                continue;
            }
            let next = mem.advance_to(now, horizon, engine.as_dyn()).max(now + 1);
            // Attribute the visit to whatever ended its span: the
            // core's winning horizon arm, or — when `advance_to`
            // handed control back early — the memory event whose
            // completion fell due (an LQ-full wait keeps its label:
            // the completion is what frees the slot).
            let src = if next < horizon && core.horizon_source() != HorizonSource::LqFull {
                HorizonSource::MemEvent
            } else {
                core.horizon_source()
            };
            visits.0[src as usize] += 1;
            if let Some(sink) = visit_spans.as_mut() {
                sink.push(SpanEvent {
                    name: src.key(),
                    ts: visit_start,
                    dur: next - visit_start,
                    tid: SpanSink::LANE_VISITS,
                });
            }
            now = next;
            break;
        }
        assert!(
            now < cfg.max_cycles,
            "simulation exceeded {} cycles for {} / {:?}",
            cfg.max_cycles,
            wl.name,
            mode
        );
    }

    let validated = checksum_region(mem.image(), wl.check_region) == wl.expected;

    // Assemble the telemetry report before reading engine stats (the
    // engine collector detaches mutably). `take_telemetry` finalizes
    // the lifecycle tracker: unresolved evicted-unused prefetches
    // become useless, in-flight/resident populations are counted.
    let report = tel.map(|_| {
        let mut registry = Registry::new();
        let mem_tel = mem.take_telemetry();
        let core_tel = core.take_telemetry();
        let engine_tel = match &mut engine {
            Engine::Prog(p) => p.take_telemetry(),
            _ => None,
        };
        if let Some(t) = &mem_tel {
            t.publish(&mut registry);
        }
        if let Some(t) = &core_tel {
            t.publish(&mut registry);
        }
        if let Some(t) = &engine_tel {
            t.publish(&mut registry);
        }
        for (key, count) in visits.iter() {
            registry.set_counter(&format!("driver.visits.{key}"), count);
        }
        registry.set_counter("driver.host_iters", host_iters);
        registry.set_counter("run.cycles", now);
        let mut spans = Vec::new();
        let mut spans_dropped = 0;
        if let Some(sink) = visit_spans.take() {
            spans_dropped += sink.dropped();
            spans.extend(sink.into_events());
        }
        let (lifecycle, per_pc) = match mem_tel {
            Some(t) => {
                spans_dropped += t.spans.dropped();
                spans.extend(t.spans.into_events());
                (t.lifecycle.counts, t.lifecycle.per_pc)
            }
            None => Default::default(),
        };
        registry.set_counter("trace.spans_dropped", spans_dropped);
        TelemetryReport {
            registry,
            phases: sampler
                .take()
                .expect("sampler exists with telemetry")
                .series,
            lifecycle,
            per_pc,
            spans,
            spans_dropped,
        }
    });

    let pf = engine.pf_stats();
    let adaptive = engine.adaptive_summary();
    let final_lookahead = match &engine {
        Engine::Prog(p) => p.lookahead(0),
        _ => 0,
    };
    let events = if capture {
        core.take_captured()
    } else {
        Vec::new()
    };
    Ok((
        RunResult {
            workload: wl.name,
            mode,
            cycles: now,
            host_iters,
            core: core.stats,
            mem: mem.stats(),
            pf,
            dyn_insts: core.stats.insts_retired,
            mispredict_rate: core.bpred().mispredict_rate(),
            validated,
            final_lookahead,
            visits,
            adaptive,
        },
        events,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_workloads::{Scale, Workload};

    #[test]
    fn intsort_validates_and_manual_speeds_up() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let base = run(&cfg, PrefetchMode::None, &wl).unwrap();
        assert!(base.validated, "baseline run must produce correct counts");
        let manual = run(&cfg, PrefetchMode::Manual, &wl).unwrap();
        assert!(manual.validated);
        let speedup = base.cycles as f64 / manual.cycles as f64;
        assert!(
            speedup > 1.2,
            "manual events should speed IntSort up even at Tiny scale, got {speedup:.2}x"
        );
    }

    #[test]
    fn hj2_modes_rank_in_paper_order() {
        let wl = etpp_workloads::hashjoin::Hj2.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let base = run(&cfg, PrefetchMode::None, &wl).unwrap().cycles as f64;
        let stride = run(&cfg, PrefetchMode::Stride, &wl).unwrap().cycles as f64;
        let sw = run(&cfg, PrefetchMode::Software, &wl).unwrap().cycles as f64;
        let manual = run(&cfg, PrefetchMode::Manual, &wl).unwrap().cycles as f64;
        // Paper: stride barely helps; software helps; manual helps most.
        assert!(base / manual > base / sw - 0.05, "manual >= software");
        assert!(base / manual > base / stride, "manual > stride");
        assert!(base / manual > 1.3, "manual speedup {:.2}", base / manual);
    }

    #[test]
    fn ghb_regular_is_useless_on_huge_footprints() {
        let wl = etpp_workloads::randacc::RandAcc.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let base = run(&cfg, PrefetchMode::None, &wl).unwrap().cycles as f64;
        let ghb = run(&cfg, PrefetchMode::GhbRegular, &wl).unwrap().cycles as f64;
        let speedup = base / ghb;
        assert!(
            (0.85..=1.15).contains(&speedup),
            "GHB-regular should be ~neutral on RandAcc, got {speedup:.2}"
        );
    }

    #[test]
    fn pagerank_software_mode_is_skipped() {
        let wl = etpp_workloads::pagerank::PageRank.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        assert!(matches!(
            run(&cfg, PrefetchMode::Software, &wl),
            Err(Skip::NotExpressible(_))
        ));
    }

    #[test]
    fn telemetry_run_is_bit_identical_and_collects() {
        let wl = etpp_workloads::intsort::IntSort.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let plain = run(&cfg, PrefetchMode::Manual, &wl).unwrap();
        let spec = TelemetrySpec::full(10_000);
        let (r, rep) = run_telemetry(&cfg, PrefetchMode::Manual, &wl, &spec).unwrap();
        // Pure observation: the run itself must not change at all.
        assert_eq!(plain.cycles, r.cycles);
        assert_eq!(plain.core, r.core);
        assert_eq!(plain.mem, r.mem);
        assert_eq!(plain.visits, r.visits);
        assert_eq!(plain.pf, r.pf);
        // ...while the report actually collected things.
        assert!(
            rep.phases.samples.len() >= 2,
            "expected multiple phase samples, got {}",
            rep.phases.samples.len()
        );
        assert!(rep.registry.hist("mem.load_latency").unwrap().count() > 0);
        assert!(rep.registry.hist("mem.l1_mshr_occupancy").unwrap().count() > 0);
        assert!(rep.registry.hist("engine.req_q_depth").unwrap().count() > 0);
        assert!(rep.lifecycle.issued > 0);
        assert!(rep.lifecycle.classified() > 0);
        assert_eq!(
            rep.lifecycle.late, r.mem.l1.late_prefetch_merges,
            "lifecycle late class must agree with the stats seam"
        );
        assert!(!rep.spans.is_empty());
        let json = rep.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        // Phase samples are cumulative: monotone non-decreasing.
        let col = |i: usize, name: &str| rep.phases.value(i, name).unwrap();
        for i in 1..rep.phases.samples.len() {
            assert!(col(i, "core.insts_retired") >= col(i - 1, "core.insts_retired"));
            assert!(col(i, "pf.issued") >= col(i - 1, "pf.issued"));
        }
    }

    #[test]
    fn blocked_mode_is_no_faster_than_events() {
        let wl = etpp_workloads::hashjoin::Hj8.build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        let manual = run(&cfg, PrefetchMode::Manual, &wl).unwrap().cycles;
        let blocked = run(&cfg, PrefetchMode::Blocked, &wl).unwrap().cycles;
        assert!(
            blocked as f64 >= manual as f64 * 0.95,
            "blocking must not beat events: manual {manual}, blocked {blocked}"
        );
    }
}
