//! Compiler support: generating event programs from loop IR (§6).
//!
//! Two passes, mirroring the paper's LLVM implementation:
//!
//! * [`convert::convert_software_prefetches`] — Algorithm 1: walk backwards
//!   from each software-prefetch's address expression through the SSA
//!   data-dependence graph, splitting at non-loop-invariant loads, until the
//!   loop's induction variable is reached. Each segment becomes one event
//!   kernel; the induction variable is replaced by address arithmetic on the
//!   observed address; loop invariants become global registers; the original
//!   software prefetches are removed (the caller runs the *plain* trace).
//! * [`pragma::generate_from_pragma`] — §6.4: no software prefetches to
//!   start from; instead, find loads with indirection whose address chains
//!   bottom out in an induction-strided load, and build the same event
//!   chains with an EWMA look-ahead. The pass cannot see wrap-around
//!   tricks, data-dependent inner loops, or multi-value cache-line reuse —
//!   exactly the limitations §7.1 reports.
//!
//! The IR ([`ir`]) is a small SSA expression graph per loop: enough to
//! express every Table 2 kernel loop while keeping both passes honest
//! (conversion *fails* on impure calls, non-induction phis and multi-load
//! events, as in the paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codegen;
pub mod convert;
pub mod ir;
pub mod pragma;

pub use convert::{convert_software_prefetches, ConvError};
pub use ir::{ArrayDecl, ArrayId, Expr, KernelLoop, ValueId};
pub use pragma::generate_from_pragma;

use etpp_isa::Program;
use etpp_mem::ConfigOp;

/// A generated prefetch program plus its configuration preamble.
#[derive(Debug, Clone, Default)]
pub struct GeneratedSetup {
    /// Event kernels.
    pub program: Program,
    /// Configuration instructions to execute before the loop.
    pub configs: Vec<ConfigOp>,
}
