//! Algorithm 1: software-prefetch conversion, plus the shared chain
//! analysis used by the pragma pass.
//!
//! The analysis walks backwards from an address expression through the SSA
//! graph (`DFS(p)` in the paper), folding loop-invariant operands into
//! address operations, and splitting the walk at every non-loop-invariant
//! load (`split_on_loads`). The result is a [`Chain`]: the induction-strided
//! *base* array whose demand loads trigger the first event, and one level
//! per dependent load, ending at the prefetch target.
//!
//! Failure cases follow the paper exactly: impure calls, non-induction
//! phis, events that would need two loaded values at once, and arrays whose
//! bounds cannot be inferred.

use crate::ir::{ArrayId, Expr, KernelLoop, ValueId};

/// Why a prefetch could not be converted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// A call with side effects appeared in the address computation.
    ImpureCall,
    /// A control-flow-dependent value (non-induction phi) was reached.
    NonInductionPhi,
    /// An event would need more than one non-invariant loaded value.
    MultipleLoads,
    /// The expression did not bottom out in the induction variable.
    NoInductionVariable,
    /// Array bounds could not be inferred (§6.2).
    UnknownBounds(ArrayId),
    /// The address pattern was not `base + index*size` at the stride level.
    UnsupportedPattern,
    /// No software prefetches / candidate loads in the loop.
    NothingToConvert,
}

/// One address-computation step applied to the incoming value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrOp {
    /// Add a constant.
    AddConst(i64),
    /// Add an array base (global register at runtime).
    AddBase(ArrayId),
    /// Add a loop-invariant scalar.
    AddInvariant(&'static str, u64),
    /// Multiply by a constant.
    MulConst(u64),
    /// AND with a constant.
    AndConst(u64),
    /// AND with a loop-invariant scalar.
    AndInvariant(&'static str, u64),
    /// Shift left.
    Shl(u8),
    /// Shift right.
    Shr(u8),
    /// The HPCC LCG step `v' = (v<<1) ^ ((v>>63)*poly)` — recognised as a
    /// pure pattern so wrap-around prefetches can regenerate next-batch
    /// values (§7.1's RandAcc discussion).
    Lcg(u64),
}

/// One event level: operations turning the observed value into the next
/// address, targeting `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// Value-domain operations.
    pub ops: Vec<AddrOp>,
    /// Array the produced address points into.
    pub target: ArrayId,
    /// Guard against null pointers before prefetching (pointer chains).
    pub null_guard: bool,
}

/// A full prefetch chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Array whose demand loads trigger level 0 (indexed by induction).
    pub base: ArrayId,
    /// Index-domain ops applied at level 0 (look-ahead offset, wrap masks).
    pub index_ops: Vec<AddrOp>,
    /// Dependent-load levels (possibly empty: a pure stride prefetch).
    pub levels: Vec<Level>,
}

/// What a linearised expression bottoms out in.
enum Input {
    IndVar,
    Load(ValueId),
}

/// Reduces a value to a static (loop-invariant) operand if possible.
fn reduce_static(l: &KernelLoop, v: ValueId) -> Option<AddrOp> {
    match l.expr(v) {
        Expr::Const(c) => Some(AddrOp::AddConst(*c as i64)),
        Expr::Base(a) => Some(AddrOp::AddBase(*a)),
        Expr::Invariant(name, val) => Some(AddrOp::AddInvariant(name, *val)),
        _ => None,
    }
}

/// Recognises the LCG step pattern `xor(shl(x,1), mul(shr(x,63), poly))`.
fn match_lcg(l: &KernelLoop, a: ValueId, b: ValueId) -> Option<(ValueId, u64)> {
    let (shl, mul) = match (l.expr(a), l.expr(b)) {
        (Expr::Shl(x, 1), Expr::Mul(m, n)) => (x, (m, n)),
        (Expr::Mul(m, n), Expr::Shl(x, 1)) => (x, (m, n)),
        _ => return None,
    };
    let (m, n) = mul;
    let (shr_v, poly) = match (l.expr(*m), l.expr(*n)) {
        (Expr::Shr(y, 63), Expr::Const(p)) => (y, *p),
        (Expr::Const(p), Expr::Shr(y, 63)) => (y, *p),
        _ => return None,
    };
    (shr_v == shl).then_some((*shl, poly))
}

/// Walks backwards from `v`, collecting ops until a load or the induction
/// variable; ops come out innermost-first (application order).
fn linearize(l: &KernelLoop, v: ValueId) -> Result<(Input, Vec<AddrOp>), ConvError> {
    let mut ops_rev: Vec<AddrOp> = Vec::new();
    let mut cur = v;
    loop {
        match l.expr(cur) {
            Expr::IndVar => {
                ops_rev.reverse();
                return Ok((Input::IndVar, ops_rev));
            }
            Expr::Load { .. } => {
                ops_rev.reverse();
                return Ok((Input::Load(cur), ops_rev));
            }
            Expr::NonIndPhi => return Err(ConvError::NonInductionPhi),
            Expr::Call { arg, pure } => {
                if !pure {
                    return Err(ConvError::ImpureCall);
                }
                cur = *arg;
            }
            Expr::Shl(x, s) => {
                ops_rev.push(AddrOp::Shl(*s));
                cur = *x;
            }
            Expr::Shr(x, s) => {
                ops_rev.push(AddrOp::Shr(*s));
                cur = *x;
            }
            Expr::Add(a, b) => match (reduce_static(l, *a), reduce_static(l, *b)) {
                (_, Some(op)) => {
                    ops_rev.push(op);
                    cur = *a;
                }
                (Some(op), _) => {
                    ops_rev.push(op);
                    cur = *b;
                }
                (None, None) => return Err(ConvError::MultipleLoads),
            },
            Expr::Mul(a, b) => match (reduce_static(l, *a), reduce_static(l, *b)) {
                (_, Some(AddrOp::AddConst(c))) => {
                    ops_rev.push(AddrOp::MulConst(c as u64));
                    cur = *a;
                }
                (Some(AddrOp::AddConst(c)), _) => {
                    ops_rev.push(AddrOp::MulConst(c as u64));
                    cur = *b;
                }
                _ => return Err(ConvError::MultipleLoads),
            },
            Expr::And(a, b) => match (reduce_static(l, *a), reduce_static(l, *b)) {
                (_, Some(AddrOp::AddConst(c))) => {
                    ops_rev.push(AddrOp::AndConst(c as u64));
                    cur = *a;
                }
                (Some(AddrOp::AddConst(c)), _) => {
                    ops_rev.push(AddrOp::AndConst(c as u64));
                    cur = *b;
                }
                (_, Some(AddrOp::AddInvariant(n, val))) => {
                    ops_rev.push(AddrOp::AndInvariant(n, val));
                    cur = *a;
                }
                (Some(AddrOp::AddInvariant(n, val)), _) => {
                    ops_rev.push(AddrOp::AndInvariant(n, val));
                    cur = *b;
                }
                _ => return Err(ConvError::MultipleLoads),
            },
            Expr::Xor(a, b) => match match_lcg(l, *a, *b) {
                Some((x, poly)) => {
                    ops_rev.push(AddrOp::Lcg(poly));
                    cur = x;
                }
                None => return Err(ConvError::MultipleLoads),
            },
            Expr::Const(_) | Expr::Base(_) | Expr::Invariant(..) => {
                return Err(ConvError::NoInductionVariable)
            }
        }
    }
}

/// Builds the full chain for an address expression targeting `target`.
pub(crate) fn build_chain(
    l: &KernelLoop,
    addr: ValueId,
    target: ArrayId,
) -> Result<Chain, ConvError> {
    let (input, ops) = linearize(l, addr)?;
    match input {
        Input::IndVar => {
            // Stride level: the ops must end with `shl(log2 elem); add base`
            // (the canonical `base + i*size` address); everything before is
            // index-domain (distance, wrap masks).
            let arr = &l.arrays[target.0 as usize];
            if !arr.bounds_known {
                return Err(ConvError::UnknownBounds(target));
            }
            let sh = arr.elem_size.trailing_zeros() as u8;
            let n = ops.len();
            if n < 2 {
                return Err(ConvError::UnsupportedPattern);
            }
            match (&ops[n - 2], &ops[n - 1]) {
                (AddrOp::Shl(s), AddrOp::AddBase(a)) if *s == sh && *a == target => {}
                _ => return Err(ConvError::UnsupportedPattern),
            }
            Ok(Chain {
                base: target,
                index_ops: ops[..n - 2].to_vec(),
                levels: Vec::new(),
            })
        }
        Input::Load(load_vid) => {
            let Expr::Load {
                addr: inner_addr,
                array: inner_array,
                ..
            } = *l.expr(load_vid)
            else {
                unreachable!("linearize only returns load inputs for loads");
            };
            let mut chain = build_chain(l, inner_addr, inner_array)?;
            let arr = &l.arrays[target.0 as usize];
            if !arr.bounds_known {
                return Err(ConvError::UnknownBounds(target));
            }
            // A bare pointer dereference (no address arithmetic) guards
            // against null.
            let null_guard = ops.is_empty() || matches!(ops.as_slice(), [AddrOp::AddConst(_)]);
            chain.levels.push(Level {
                ops,
                target,
                null_guard,
            });
            Ok(chain)
        }
    }
}

/// Algorithm 1: converts every convertible software prefetch in `l` into
/// event chains. Distances come from the source (`x + dist`).
///
/// # Errors
/// [`ConvError::NothingToConvert`] if no prefetch converts; individual
/// failures are skipped as in the paper.
pub fn convert_software_prefetches(l: &KernelLoop) -> Result<crate::GeneratedSetup, ConvError> {
    if l.prefetches.is_empty() {
        return Err(ConvError::NothingToConvert);
    }
    let mut chains = Vec::new();
    let mut last_err = ConvError::NothingToConvert;
    for pf in &l.prefetches {
        // The prefetch root is an address; its target array is found by
        // resolving the expression's outermost load/array.
        match root_target(l, pf.addr).and_then(|t| build_chain(l, pf.addr, t)) {
            Ok(c) => chains.push(c),
            Err(e) => last_err = e,
        }
    }
    if chains.is_empty() {
        return Err(last_err);
    }
    drop_prefix_chains(&mut chains);
    Ok(crate::codegen::emit(
        l,
        &chains,
        crate::codegen::Distance::Fixed,
    ))
}

/// Removes chains that are proper prefixes of longer chains: the longer
/// chain's intermediate tag events already fetch every prefix level, so the
/// shorter chain would only duplicate work. This mirrors the paper's event
/// splitting, where one prefetch's analysis restarting "from the load"
/// subsumes shallower prefetches on the same path.
pub(crate) fn drop_prefix_chains(chains: &mut Vec<Chain>) {
    chains.dedup();
    let snapshot = chains.clone();
    chains.retain(|c| {
        !snapshot.iter().any(|other| {
            other.base == c.base
                && other.index_ops == c.index_ops
                && other.levels.len() > c.levels.len()
                && other.levels[..c.levels.len()] == c.levels[..]
        })
    });
}

/// Determines which array an address expression points into.
pub(crate) fn root_target(l: &KernelLoop, addr: ValueId) -> Result<ArrayId, ConvError> {
    // Find the nearest AddBase on the path, or the array of a bare load.
    let mut cur = addr;
    loop {
        match l.expr(cur) {
            Expr::Add(a, b) => {
                if let Expr::Base(arr) = l.expr(*b) {
                    return Ok(*arr);
                }
                if let Expr::Base(arr) = l.expr(*a) {
                    return Ok(*arr);
                }
                // Follow the non-static side.
                cur = if reduce_static(l, *b).is_some() {
                    *a
                } else {
                    *b
                };
            }
            Expr::Load {
                array, points_into, ..
            } => return Ok(points_into.unwrap_or(*array)),
            Expr::Shl(x, _) | Expr::Shr(x, _) => cur = *x,
            Expr::And(a, _) | Expr::Mul(a, _) | Expr::Xor(a, _) => cur = *a,
            Expr::Call { arg, .. } => cur = *arg,
            Expr::NonIndPhi => return Err(ConvError::NonInductionPhi),
            _ => return Err(ConvError::UnsupportedPattern),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, SwPrefetch};

    fn arr(name: &str, base: u64, len: u64, elem: u8, known: bool) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            base,
            end: base + len,
            elem_size: elem,
            bounds_known: known,
        }
    }

    /// Figure 5(a): `swpf(&C[B[A[x+n]]])`.
    fn fig5_loop() -> KernelLoop {
        let mut l = KernelLoop::new("fig5");
        let a = l.array(arr("A", 0x1000, 0x1000, 8, true));
        let b = l.array(arr("B", 0x10000, 0x8000, 8, true));
        let c = l.array(arr("C", 0x40000, 0x8000, 8, true));
        let iv = l.value(Expr::IndVar);
        let dist = l.value(Expr::Const(16));
        let ivd = l.value(Expr::Add(iv, dist));
        let la = l.load_index(a, ivd);
        let lb = l.load_index(b, la);
        let addr_c = l.index_addr(c, lb);
        l.prefetches.push(SwPrefetch {
            addr: addr_c,
            dist: 16,
        });
        // Body: acc += C[B[A[x]]]
        let la0 = l.load_index(a, iv);
        let lb0 = l.load_index(b, la0);
        let lc0 = l.load_index(c, lb0);
        l.body_loads.extend([la0, lb0, lc0]);
        l.pragma = true;
        l
    }

    #[test]
    fn fig5_converts_to_three_level_chain() {
        let l = fig5_loop();
        let target = root_target(&l, l.prefetches[0].addr).unwrap();
        let chain = build_chain(&l, l.prefetches[0].addr, target).unwrap();
        assert_eq!(chain.base, ArrayId(0), "observed array is A");
        assert_eq!(chain.levels.len(), 2, "B and C levels");
        assert_eq!(chain.index_ops, vec![AddrOp::AddConst(16)]);
        assert_eq!(chain.levels[0].target, ArrayId(1));
        assert_eq!(chain.levels[1].target, ArrayId(2));
    }

    #[test]
    fn impure_call_fails() {
        let mut l = KernelLoop::new("bad");
        let a = l.array(arr("A", 0x1000, 0x1000, 8, true));
        let iv = l.value(Expr::IndVar);
        let call = l.value(Expr::Call {
            arg: iv,
            pure: false,
        });
        let addr = l.index_addr(a, call);
        l.prefetches.push(SwPrefetch { addr, dist: 1 });
        assert_eq!(
            convert_software_prefetches(&l).unwrap_err(),
            ConvError::ImpureCall
        );
    }

    #[test]
    fn non_induction_phi_fails() {
        let mut l = KernelLoop::new("listy");
        let a = l.array(arr("N", 0x1000, 0x1000, 16, true));
        let phi = l.value(Expr::NonIndPhi);
        let addr = l.index_addr(a, phi);
        l.prefetches.push(SwPrefetch { addr, dist: 1 });
        assert_eq!(
            convert_software_prefetches(&l).unwrap_err(),
            ConvError::NonInductionPhi
        );
    }

    #[test]
    fn unknown_bounds_fail() {
        let mut l = KernelLoop::new("rawptr");
        let a = l.array(arr("A", 0x1000, 0x1000, 8, false));
        let iv = l.value(Expr::IndVar);
        let addr = l.index_addr(a, iv);
        l.prefetches.push(SwPrefetch { addr, dist: 4 });
        assert!(matches!(
            convert_software_prefetches(&l).unwrap_err(),
            ConvError::UnknownBounds(_)
        ));
    }

    #[test]
    fn lcg_pattern_is_recognised() {
        let mut l = KernelLoop::new("gups");
        let ran = l.array(arr("ran", 0x1000, 1024, 8, true));
        let tab = l.array(arr("tab", 0x10000, 0x8000, 8, true));
        let iv = l.value(Expr::IndVar);
        let d = l.value(Expr::Const(24));
        let ivd = l.value(Expr::Add(iv, d));
        let m = l.value(Expr::Const(127));
        let wrapped = l.value(Expr::And(ivd, m));
        let v = l.load_index(ran, wrapped);
        // lcg(v)
        let s1 = l.value(Expr::Shl(v, 1));
        let s63 = l.value(Expr::Shr(v, 63));
        let poly = l.value(Expr::Const(7));
        let mul = l.value(Expr::Mul(s63, poly));
        let lcg = l.value(Expr::Xor(s1, mul));
        let mask = l.value(Expr::Invariant("mask", 0xfff));
        let idx = l.value(Expr::And(lcg, mask));
        let addr = l.index_addr(tab, idx);
        let chain = build_chain(&l, addr, tab).unwrap();
        assert_eq!(chain.base, ran);
        assert_eq!(
            chain.index_ops,
            vec![AddrOp::AddConst(24), AddrOp::AndConst(127)]
        );
        assert!(chain.levels[0].ops.contains(&AddrOp::Lcg(7)));
    }
}
