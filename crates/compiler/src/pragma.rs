//! `#pragma prefetch` generation (§6.4).
//!
//! With no software prefetches to convert, the pass starts from the loop's
//! *loads that feature indirection*: body loads whose address chains bottom
//! out in an induction-strided load of another array. Each such load yields
//! the same chain shape as conversion, but the look-ahead distance comes
//! from the EWMA calculators, and source-level tricks (wrap-around, "first
//! N" unrolls, multi-value line reuse) are invisible — matching the
//! pragma-mode gaps §7.1 reports.

use crate::convert::{build_chain, root_target, Chain, ConvError};
use crate::ir::KernelLoop;
use crate::GeneratedSetup;

/// Generates an event program for a `#pragma prefetch` loop.
///
/// # Errors
/// [`ConvError::NothingToConvert`] if no indirect load is analysable.
pub fn generate_from_pragma(l: &KernelLoop) -> Result<GeneratedSetup, ConvError> {
    if !l.pragma {
        return Err(ConvError::NothingToConvert);
    }
    let mut chains: Vec<Chain> = Vec::new();
    for &root in &l.body_loads {
        let Ok(target) = root_target(l, addr_of_load(l, root)) else {
            continue;
        };
        let Ok(chain) = build_chain(l, addr_of_load(l, root), target) else {
            continue;
        };
        // Only loads *with indirection* are likely to miss unpredictably; a
        // direct strided load is left to the hardware (§6.4).
        if chain.levels.is_empty() {
            continue;
        }
        if !chains.contains(&chain) {
            chains.push(chain);
        }
    }
    if chains.is_empty() {
        return Err(ConvError::NothingToConvert);
    }
    crate::convert::drop_prefix_chains(&mut chains);
    Ok(crate::codegen::emit(
        l,
        &chains,
        crate::codegen::Distance::Ewma,
    ))
}

fn addr_of_load(l: &KernelLoop, v: crate::ir::ValueId) -> crate::ir::ValueId {
    match l.expr(v) {
        crate::ir::Expr::Load { addr, .. } => *addr,
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, Expr, KernelLoop};

    fn arr(name: &str, base: u64, len: u64, elem: u8) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            base,
            end: base + len,
            elem_size: elem,
            bounds_known: true,
        }
    }

    #[test]
    fn pragma_finds_stride_indirect_pattern() {
        // acc += B[A[i]] under #pragma prefetch.
        let mut l = KernelLoop::new("p");
        let a = l.array(arr("A", 0x1000, 0x1000, 8));
        let b = l.array(arr("B", 0x10000, 0x8000, 8));
        let iv = l.value(Expr::IndVar);
        let la = l.load_index(a, iv);
        let lb = l.load_index(b, la);
        l.body_loads.extend([la, lb]);
        l.pragma = true;
        let setup = generate_from_pragma(&l).unwrap();
        assert_eq!(setup.program.kernels.len(), 2);
        // EWMA distance: the level-0 kernel must read the calculators.
        let k0 = &setup.program.kernels[0];
        assert!(k0
            .insts
            .iter()
            .any(|i| matches!(i, etpp_isa::Inst::LdEwma { .. })));
    }

    #[test]
    fn direct_strided_loads_are_skipped() {
        let mut l = KernelLoop::new("p");
        let a = l.array(arr("A", 0x1000, 0x1000, 8));
        let iv = l.value(Expr::IndVar);
        let la = l.load_index(a, iv);
        l.body_loads.push(la);
        l.pragma = true;
        assert_eq!(
            generate_from_pragma(&l).unwrap_err(),
            ConvError::NothingToConvert
        );
    }

    #[test]
    fn list_walks_are_invisible_to_pragma() {
        let mut l = KernelLoop::new("p");
        let n = l.array(arr("nodes", 0x1000, 0x10000, 16));
        let phi = l.value(Expr::NonIndPhi);
        let ld = l.value(Expr::Load {
            addr: phi,
            array: n,
            points_into: None,
        });
        l.body_loads.push(ld);
        l.pragma = true;
        assert!(generate_from_pragma(&l).is_err());
    }

    #[test]
    fn unmarked_loop_generates_nothing() {
        let l = KernelLoop::new("plain");
        assert!(generate_from_pragma(&l).is_err());
    }
}
