//! The loop IR: an SSA expression graph over one kernel loop.
//!
//! A [`KernelLoop`] holds the data-dependence graph of one loop body in SSA
//! form (values reference earlier values), the arrays it walks, the software
//! prefetches the programmer inserted (roots for Algorithm 1), and the loads
//! of the loop body (roots for the pragma pass).

/// Index of an array declaration within a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub u16);

/// Index of an SSA value within a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueId(pub u32);

/// A (possibly bounds-known) array the loop accesses.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Name (diagnostics).
    pub name: String,
    /// Base virtual address.
    pub base: u64,
    /// One-past-the-end virtual address.
    pub end: u64,
    /// Element size in bytes.
    pub elem_size: u8,
    /// Whether bounds are statically known (§6.2: typed arrays yes; raw
    /// C pointers only if pattern matching/loop-termination analysis
    /// succeeded).
    pub bounds_known: bool,
}

/// An SSA expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// The loop induction variable (in elements).
    IndVar,
    /// A compile-time constant.
    Const(u64),
    /// The base address of an array (loop invariant).
    Base(ArrayId),
    /// A loop-invariant scalar (hash masks, sizes) — becomes a global
    /// register.
    Invariant(&'static str, u64),
    /// A load from memory; `array` is the object the address falls in.
    Load {
        /// Address operand.
        addr: ValueId,
        /// Array the address falls in.
        array: ArrayId,
        /// For pointer-typed loads: the pool the loaded value points into
        /// (e.g. a bucket head pointing at the node pool).
        points_into: Option<ArrayId>,
    },
    /// Addition.
    Add(ValueId, ValueId),
    /// Multiplication.
    Mul(ValueId, ValueId),
    /// Bitwise AND.
    And(ValueId, ValueId),
    /// Bitwise XOR.
    Xor(ValueId, ValueId),
    /// Left shift by a constant.
    Shl(ValueId, u8),
    /// Logical right shift by a constant.
    Shr(ValueId, u8),
    /// A function call; conversion only proceeds if `pure`.
    Call {
        /// Argument.
        arg: ValueId,
        /// Side-effect free?
        pure: bool,
    },
    /// A phi that is not the induction variable (control-flow dependent
    /// value, e.g. a list-walk pointer): conversion fails here (§6.1).
    NonIndPhi,
}

/// A software prefetch inserted by the programmer.
#[derive(Debug, Clone, Copy)]
pub struct SwPrefetch {
    /// The address expression root.
    pub addr: ValueId,
    /// Look-ahead distance in induction elements encoded in the source
    /// (`x + dist`).
    pub dist: u64,
}

/// One kernel loop in SSA form.
#[derive(Debug, Clone, Default)]
pub struct KernelLoop {
    /// Name (diagnostics).
    pub name: String,
    /// Arrays referenced.
    pub arrays: Vec<ArrayDecl>,
    /// SSA values (topologically ordered: operands precede users).
    pub values: Vec<Expr>,
    /// Software prefetches (roots for the conversion pass).
    pub prefetches: Vec<SwPrefetch>,
    /// Loop-body loads (roots for the pragma pass).
    pub body_loads: Vec<ValueId>,
    /// Whether the programmer marked the loop `#pragma prefetch`.
    pub pragma: bool,
}

impl KernelLoop {
    /// Creates an empty loop.
    pub fn new(name: impl Into<String>) -> Self {
        KernelLoop {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an array.
    pub fn array(&mut self, decl: ArrayDecl) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u16);
        self.arrays.push(decl);
        id
    }

    /// Adds an SSA value.
    pub fn value(&mut self, e: Expr) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(e);
        id
    }

    /// Fetches a value's expression.
    pub fn expr(&self, v: ValueId) -> &Expr {
        &self.values[v.0 as usize]
    }

    /// Convenience: `base(array) + index << log2(elem)` address expression.
    pub fn index_addr(&mut self, array: ArrayId, index: ValueId) -> ValueId {
        let sh = self.arrays[array.0 as usize].elem_size.trailing_zeros() as u8;
        let scaled = self.value(Expr::Shl(index, sh));
        let base = self.value(Expr::Base(array));
        self.value(Expr::Add(scaled, base))
    }

    /// Convenience: load `array[index]`.
    pub fn load_index(&mut self, array: ArrayId, index: ValueId) -> ValueId {
        let addr = self.index_addr(array, index);
        self.value(Expr::Load {
            addr,
            array,
            points_into: None,
        })
    }

    /// Convenience: load a pointer `array[index]` that points into `pool`.
    pub fn load_pointer(&mut self, array: ArrayId, index: ValueId, pool: ArrayId) -> ValueId {
        let addr = self.index_addr(array, index);
        self.value(Expr::Load {
            addr,
            array,
            points_into: Some(pool),
        })
    }

    /// Convenience: dereference a pointer value at `offset`, loading from
    /// `pool`, the result pointing into `next_pool` if given.
    pub fn deref(
        &mut self,
        ptr: ValueId,
        offset: i64,
        pool: ArrayId,
        next_pool: Option<ArrayId>,
    ) -> ValueId {
        let addr = if offset == 0 {
            ptr
        } else {
            let c = self.value(Expr::Const(offset as u64));
            self.value(Expr::Add(ptr, c))
        };
        self.value(Expr::Load {
            addr,
            array: pool,
            points_into: next_pool,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_topological_graph() {
        let mut l = KernelLoop::new("t");
        let a = l.array(ArrayDecl {
            name: "A".into(),
            base: 0x1000,
            end: 0x2000,
            elem_size: 8,
            bounds_known: true,
        });
        let iv = l.value(Expr::IndVar);
        let ld = l.load_index(a, iv);
        match l.expr(ld) {
            Expr::Load { addr, array, .. } => {
                assert_eq!(*array, a);
                assert!(addr.0 < ld.0, "operands precede users");
            }
            other => panic!("expected load, got {other:?}"),
        }
    }
}
