//! PPU code generation from analysed chains (§6.3).
//!
//! Emits one `on_load` kernel per chain (triggered by demand loads on the
//! chain's base array) plus one tag kernel per dependent-load level, and the
//! configuration instructions (address bounds, globals, tag bindings) that
//! install them. Distances are either the fixed source-level `dist`
//! (conversion) or the EWMA look-ahead (pragma generation).

use crate::convert::{AddrOp, Chain};
use crate::ir::KernelLoop;
use crate::GeneratedSetup;
use etpp_isa::KernelBuilder;
use etpp_mem::{ConfigOp, FilterFlags, RangeId, TagId};
use std::collections::HashMap;

/// Where the level-0 look-ahead distance comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// The distance encoded in the software prefetch (`x + dist`).
    Fixed,
    /// The EWMA calculators (pragma-generated code).
    Ewma,
}

#[derive(Default)]
struct Globals {
    map: HashMap<(&'static str, u64), u8>,
    configs: Vec<ConfigOp>,
}

impl Globals {
    fn get(&mut self, key: (&'static str, u64)) -> u8 {
        let next = self.map.len() as u8;
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                self.configs.push(ConfigOp::SetGlobal {
                    idx: next,
                    value: key.1,
                });
                next
            }
        }
    }
}

fn emit_value_ops(mut kb: KernelBuilder, ops: &[AddrOp], g: &mut Globals) -> KernelBuilder {
    // Value lives in r0; r5/r6 are scratch.
    for op in ops {
        kb = match *op {
            AddrOp::AddConst(c) => kb.addi(0, 0, c),
            AddrOp::AddBase(_) => unreachable!("bases resolved before emission"),
            AddrOp::AddInvariant(n, v) => {
                let idx = g.get((n, v));
                kb.ld_global(5, idx).add(0, 0, 5)
            }
            AddrOp::MulConst(c) => kb.muli(0, 0, c),
            AddrOp::AndConst(c) => kb.andi(0, 0, c),
            AddrOp::AndInvariant(n, v) => {
                let idx = g.get((n, v));
                kb.ld_global(5, idx).and(0, 0, 5)
            }
            AddrOp::Shl(s) => kb.shli(0, 0, s),
            AddrOp::Shr(s) => kb.shri(0, 0, s),
            AddrOp::Lcg(poly) => kb
                .shri(6, 0, 63)
                .muli(6, 6, poly)
                .shli(0, 0, 1)
                .xor(0, 0, 6),
        };
    }
    kb
}

/// Emits kernels + configuration for a set of chains over one loop.
pub(crate) fn emit(l: &KernelLoop, chains: &[Chain], distance: Distance) -> GeneratedSetup {
    let mut program = etpp_core::PrefetchProgramBuilder::new();
    let mut globals = Globals::default();
    let mut configs: Vec<ConfigOp> = Vec::new();
    let mut next_range = 0u16;
    let mut next_tag = 0u16;

    for (ci, chain) in chains.iter().enumerate() {
        let base_arr = &l.arrays[chain.base.0 as usize];
        let sh = base_arr.elem_size.trailing_zeros() as u8;
        let base_range = next_range;
        next_range += 1;

        // Tags for each dependent level.
        let level_tags: Vec<u16> = (0..chain.levels.len())
            .map(|_| {
                let t = next_tag;
                next_tag += 1;
                t
            })
            .collect();

        // Level 0: on_load kernel — recover the index from the observed
        // address, apply index ops + distance, bounds-check, prefetch.
        let g_base = globals.get(("base", base_arr.base));
        let g_end = globals.get(("end", base_arr.end));
        let mut kb = KernelBuilder::new(format!("gen_{}_c{}_l0", l.name, ci));
        let halt = kb.label();
        kb = kb
            .ld_vaddr(0)
            .ld_global(1, g_base)
            .sub(0, 0, 1)
            .shri(0, 0, sh);
        kb = match distance {
            Distance::Fixed => kb,
            Distance::Ewma => {
                let r = kb.ld_ewma(2, base_range);
                r.add(0, 0, 2)
            }
        };
        kb = emit_value_ops(kb, &chain.index_ops, &mut globals);
        kb = kb
            .shli(0, 0, sh)
            .add(0, 0, 1)
            .ld_global(3, g_end)
            .bgeu(0, 3, halt);
        kb = if let Some(&t) = level_tags.first() {
            kb.prefetch_tag(0, t)
        } else {
            kb.prefetch(0)
        };
        let l0 = program.add_kernel(kb.bind(halt).halt().build());

        configs.push(ConfigOp::SetRange {
            id: RangeId(base_range),
            lo: base_arr.base,
            hi: base_arr.end,
            on_load: Some(l0.0),
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        });

        // Dependent levels: tag kernels.
        for (li, level) in chain.levels.iter().enumerate() {
            let tgt = &l.arrays[level.target.0 as usize];
            let mut kb = KernelBuilder::new(format!("gen_{}_c{}_l{}", l.name, ci, li + 1));
            let halt = kb.label();
            kb = kb.ld_vaddr(1).ld_data(0, 1);
            if level.null_guard {
                kb = kb.li(4, 0).beq(0, 4, halt);
            }
            // Resolve AddBase via globals.
            let mut ops = Vec::new();
            for op in &level.ops {
                match op {
                    AddrOp::AddBase(a) => {
                        let arr = &l.arrays[a.0 as usize];
                        ops.push(AddrOp::AddInvariant("base", arr.base));
                    }
                    other => ops.push(*other),
                }
            }
            kb = emit_value_ops(kb, &ops, &mut globals);
            if tgt.bounds_known {
                let g_lo = globals.get(("base", tgt.base));
                let g_hi = globals.get(("end", tgt.end));
                kb = kb
                    .ld_global(5, g_lo)
                    .bltu(0, 5, halt)
                    .ld_global(5, g_hi)
                    .bgeu(0, 5, halt);
            }
            kb = if let Some(&t) = level_tags.get(li + 1) {
                kb.prefetch_tag(0, t)
            } else {
                kb.prefetch(0)
            };
            let kid = program.add_kernel(kb.bind(halt).halt().build());
            configs.push(ConfigOp::SetTagKernel {
                tag: TagId(level_tags[li]),
                kernel: kid.0,
                chain_end: li + 1 == chain.levels.len(),
            });
        }

        // Final target range: chain-end timing (and nothing else).
        if let Some(last) = chain.levels.last() {
            let tgt = &l.arrays[last.target.0 as usize];
            configs.push(ConfigOp::SetRange {
                id: RangeId(next_range),
                lo: tgt.base,
                hi: tgt.end,
                on_load: None,
                on_prefetch: None,
                flags: FilterFlags {
                    ewma_iteration: false,
                    ewma_chain_start: false,
                    ewma_chain_end: true,
                },
            });
            next_range += 1;
        }
    }

    let mut all = globals.configs;
    all.extend(configs);
    GeneratedSetup {
        program: program.build(),
        configs: all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{build_chain, root_target};
    use crate::ir::{ArrayDecl, Expr, SwPrefetch};
    use etpp_isa::{run_kernel, EventCtx};

    /// Executes generated kernels against a mock prefetcher state, so tests
    /// can verify the *addresses* the generated code computes.
    struct MockCtx {
        vaddr: u64,
        word: u64,
        globals: std::collections::HashMap<u8, u64>,
        ewma: u64,
        emitted: Vec<(u64, Option<u16>)>,
    }

    impl EventCtx for MockCtx {
        fn vaddr(&self) -> u64 {
            self.vaddr
        }
        fn line_word(&self, _off: u8) -> u64 {
            self.word
        }
        fn global(&self, idx: u8) -> u64 {
            *self.globals.get(&idx).unwrap_or(&0)
        }
        fn ewma_lookahead(&self, _r: u16) -> u64 {
            self.ewma
        }
        fn prefetch(&mut self, vaddr: u64, tag: Option<u16>, _at: u64) {
            self.emitted.push((vaddr, tag));
        }
    }

    fn globals_of(setup: &GeneratedSetup) -> std::collections::HashMap<u8, u64> {
        setup
            .configs
            .iter()
            .filter_map(|c| match c {
                ConfigOp::SetGlobal { idx, value } => Some((*idx, *value)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn converted_kernels_compute_correct_addresses() {
        // B[A[i+8]] with A at 0x1000 (8B elements), B at 0x10000.
        let mut l = KernelLoop::new("roundtrip");
        let a = l.array(ArrayDecl {
            name: "A".into(),
            base: 0x1000,
            end: 0x2000,
            elem_size: 8,
            bounds_known: true,
        });
        let b = l.array(ArrayDecl {
            name: "B".into(),
            base: 0x10000,
            end: 0x18000,
            elem_size: 8,
            bounds_known: true,
        });
        let iv = l.value(Expr::IndVar);
        let d = l.value(Expr::Const(8));
        let ivd = l.value(Expr::Add(iv, d));
        let la = l.load_index(a, ivd);
        let addr = l.index_addr(b, la);
        l.prefetches.push(SwPrefetch { addr, dist: 8 });
        let t = root_target(&l, addr).unwrap();
        let chain = build_chain(&l, addr, t).unwrap();
        let setup = emit(&l, &[chain], Distance::Fixed);
        let globals = globals_of(&setup);

        // Level 0: observe a demand load of A[100] -> prefetch A[108], tagged.
        let mut ctx = MockCtx {
            vaddr: 0x1000 + 100 * 8,
            word: 0,
            globals: globals.clone(),
            ewma: 0,
            emitted: vec![],
        };
        let out = run_kernel(&setup.program.kernels[0], &mut ctx, 64);
        assert!(out.completed);
        assert_eq!(ctx.emitted, vec![(0x1000 + 108 * 8, Some(0))]);

        // Level 1: the A-line returns with value 42 -> prefetch B[42], untagged.
        let mut ctx = MockCtx {
            vaddr: 0x1000 + 108 * 8,
            word: 42,
            globals,
            ewma: 0,
            emitted: vec![],
        };
        let out = run_kernel(&setup.program.kernels[1], &mut ctx, 64);
        assert!(out.completed);
        assert_eq!(ctx.emitted, vec![(0x10000 + 42 * 8, None)]);
    }

    #[test]
    fn level0_bounds_check_halts_out_of_range() {
        let mut l = KernelLoop::new("bounds");
        let a = l.array(ArrayDecl {
            name: "A".into(),
            base: 0x1000,
            end: 0x1400, // 128 elements
            elem_size: 8,
            bounds_known: true,
        });
        let b = l.array(ArrayDecl {
            name: "B".into(),
            base: 0x10000,
            end: 0x18000,
            elem_size: 8,
            bounds_known: true,
        });
        let iv = l.value(Expr::IndVar);
        let d = l.value(Expr::Const(16));
        let ivd = l.value(Expr::Add(iv, d));
        let la = l.load_index(a, ivd);
        let addr = l.index_addr(b, la);
        l.prefetches.push(SwPrefetch { addr, dist: 16 });
        let t = root_target(&l, addr).unwrap();
        let chain = build_chain(&l, addr, t).unwrap();
        let setup = emit(&l, &[chain], Distance::Fixed);
        // Observing A[120]: 120+16 = 136 > 128 -> no prefetch.
        let mut ctx = MockCtx {
            vaddr: 0x1000 + 120 * 8,
            word: 0,
            globals: globals_of(&setup),
            ewma: 0,
            emitted: vec![],
        };
        run_kernel(&setup.program.kernels[0], &mut ctx, 64);
        assert!(ctx.emitted.is_empty(), "out-of-bounds prefetch suppressed");
    }

    #[test]
    fn ewma_distance_kernels_query_the_calculators() {
        let mut l = KernelLoop::new("ew");
        let a = l.array(ArrayDecl {
            name: "A".into(),
            base: 0x1000,
            end: 0x4000,
            elem_size: 8,
            bounds_known: true,
        });
        let b = l.array(ArrayDecl {
            name: "B".into(),
            base: 0x10000,
            end: 0x18000,
            elem_size: 8,
            bounds_known: true,
        });
        let iv = l.value(Expr::IndVar);
        let la = l.load_index(a, iv);
        let addr = l.index_addr(b, la);
        let t = root_target(&l, addr).unwrap();
        let chain = build_chain(&l, addr, t).unwrap();
        let setup = emit(&l, &[chain], Distance::Ewma);
        // Observing A[10] with lookahead 24 -> prefetch A[34].
        let mut ctx = MockCtx {
            vaddr: 0x1000 + 10 * 8,
            word: 0,
            globals: globals_of(&setup),
            ewma: 24,
            emitted: vec![],
        };
        run_kernel(&setup.program.kernels[0], &mut ctx, 64);
        assert_eq!(ctx.emitted, vec![(0x1000 + 34 * 8, Some(0))]);
    }

    #[test]
    fn generated_program_is_small_and_configured() {
        let mut l = KernelLoop::new("t");
        let a = l.array(ArrayDecl {
            name: "A".into(),
            base: 0x1000,
            end: 0x2000,
            elem_size: 8,
            bounds_known: true,
        });
        let b = l.array(ArrayDecl {
            name: "B".into(),
            base: 0x10000,
            end: 0x18000,
            elem_size: 8,
            bounds_known: true,
        });
        let iv = l.value(Expr::IndVar);
        let d = l.value(Expr::Const(8));
        let ivd = l.value(Expr::Add(iv, d));
        let la = l.load_index(a, ivd);
        let addr = l.index_addr(b, la);
        l.prefetches.push(SwPrefetch { addr, dist: 8 });
        let t = root_target(&l, addr).unwrap();
        let chain = build_chain(&l, addr, t).unwrap();
        let setup = emit(&l, &[chain], Distance::Fixed);
        assert_eq!(setup.program.kernels.len(), 2, "stride + indirect kernels");
        assert!(setup.program.total_insts() < 48);
        let ranges = setup
            .configs
            .iter()
            .filter(|c| matches!(c, ConfigOp::SetRange { .. }))
            .count();
        assert_eq!(ranges, 2, "base + chain-end ranges");
        let tags = setup
            .configs
            .iter()
            .filter(|c| matches!(c, ConfigOp::SetTagKernel { .. }))
            .count();
        assert_eq!(tags, 1);
    }
}
