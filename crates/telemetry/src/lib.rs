//! Observability primitives for the ETPP simulator.
//!
//! This crate is deliberately dependency-free and simulation-agnostic: it
//! provides the *containers* every other crate publishes into —
//!
//! * [`Hist`] — a fixed-bucket log2 histogram (65 buckets cover the full
//!   `u64` range) with O(1) record, exact count/sum, approximate
//!   quantiles, and loss-free merging across shards;
//! * [`Registry`] — a named snapshot of counters and histograms, with a
//!   deterministic (sorted) layout so merged snapshots are byte-identical
//!   regardless of worker count or insertion order;
//! * [`PhaseSeries`] — an interval time-series of counter snapshots (the
//!   feed phase-adaptive reconfiguration needs), serialisable to JSON;
//! * [`SpanSink`] / [`SpanEvent`] — a bounded event log rendered in the
//!   Chrome trace-event format (`chrome://tracing` / Perfetto).
//!
//! Everything here is *pure observation*: nothing in this crate can feed
//! back into simulation behaviour, which is what lets the equivalence
//! suite pin telemetry-on runs bit-identical to telemetry-off runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of buckets in a [`Hist`]: bucket 0 holds zeros, bucket `b`
/// (1..=64) holds values with `floor(log2(v)) == b - 1`, i.e. the range
/// `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram over `u64` samples.
///
/// Recording is a branch-free bucket increment plus a count/sum update,
/// cheap enough for per-access hot paths. Bucket boundaries are fixed
/// (powers of two), so histograms from different shards merge exactly:
/// `merge` is element-wise addition and loses nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
    pub fn bucket_lo(b: usize) -> u64 {
        if b <= 1 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Exclusive upper bound of bucket `b` (`u64::MAX` for the last).
    pub fn bucket_hi(b: usize) -> u64 {
        if b == 0 {
            1
        } else if b >= 64 {
            u64::MAX
        } else {
            1u64 << b
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0,1]`): the exclusive upper bound
    /// of the bucket in which the `q`-th sample falls, clamped to the
    /// observed maximum. Exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_hi(b).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Per-bucket counts (index = bucket).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Element-wise merge of another histogram into this one. Loss-free:
    /// the result is identical to having recorded both sample streams
    /// into a single histogram, regardless of merge order.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Compact one-line rendering of the non-empty buckets, e.g.
    /// `[64,128):12 [128,256):3` — for tables and debugging.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            let _ = write!(out, "[{},{}):{n}", Self::bucket_lo(b), Self::bucket_hi(b));
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// A named, mergeable snapshot of counters and histograms.
///
/// Keys are sorted (`BTreeMap`), so two registries built from the same
/// data in different orders — or merged from shards scheduled
/// differently — serialise to byte-identical JSON. That property is
/// pinned by the sharded-sweep determinism tests in `etpp-sim`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or overwrites) a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Adds to a counter, creating it at 0 first.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Inserts a histogram snapshot, merging into any existing entry of
    /// the same name.
    pub fn put_hist(&mut self, name: &str, hist: &Hist) {
        self.hists.entry(name.to_string()).or_default().merge(hist);
    }

    /// Reads a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    /// Histogram names in sorted order.
    pub fn hist_names(&self) -> impl Iterator<Item = &str> {
        self.hists.keys().map(|s| s.as_str())
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge bucket-wise. Associative and commutative, so shard order
    /// never shows in the result.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Deterministic JSON rendering (sorted keys; histograms as
    /// `{count, sum, max, p50, p99, buckets: {"lo": n, ...}}` with only
    /// non-empty buckets listed, keyed by inclusive lower bound).
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(j, "\n    \"{}\": {v}", json_escape(k));
        }
        j.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}, \"buckets\": {{",
                json_escape(k),
                h.count(),
                h.sum(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
            let mut first = true;
            for (b, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    j.push_str(", ");
                }
                first = false;
                let _ = write!(j, "\"{}\": {n}", Hist::bucket_lo(b));
            }
            j.push_str("}}");
        }
        j.push_str("\n  }\n}\n");
        j
    }
}

/// One sample of a [`PhaseSeries`]: every column's value at a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSample {
    /// Simulated cycle the snapshot was taken at.
    pub cycle: u64,
    /// Values, aligned with [`PhaseSeries::columns`].
    pub values: Vec<u64>,
}

/// An interval time-series of counter snapshots: the phase-sampler
/// output (cumulative counters sampled every N simulated cycles).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSeries {
    /// Nominal sampling interval in simulated cycles.
    pub interval: u64,
    /// Column names, fixed at construction.
    pub columns: Vec<String>,
    /// Samples in cycle order.
    pub samples: Vec<PhaseSample>,
}

impl PhaseSeries {
    /// Creates an empty series with the given columns.
    pub fn new(interval: u64, columns: Vec<String>) -> Self {
        PhaseSeries {
            interval,
            columns,
            samples: Vec::new(),
        }
    }

    /// Appends a sample. `values.len()` must equal `columns.len()`.
    pub fn push(&mut self, cycle: u64, values: Vec<u64>) {
        assert_eq!(values.len(), self.columns.len(), "column arity mismatch");
        self.samples.push(PhaseSample { cycle, values });
    }

    /// Value of a named column in a given sample (None if absent).
    pub fn value(&self, sample: usize, column: &str) -> Option<u64> {
        let c = self.columns.iter().position(|n| n == column)?;
        Some(self.samples.get(sample)?.values[c])
    }

    /// JSON rendering: `{"interval": N, "columns": [...], "samples":
    /// [{"cycle": N, "values": [...]}, ...]}`. Deterministic.
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"interval\": {},", self.interval);
        j.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(j, "\"{}\"", json_escape(c));
        }
        j.push_str("],\n  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let _ = write!(j, "    {{\"cycle\": {}, \"values\": [", s.cycle);
            for (k, v) in s.values.iter().enumerate() {
                if k > 0 {
                    j.push_str(", ");
                }
                let _ = write!(j, "{v}");
            }
            j.push_str("]}");
            j.push_str(if i + 1 < self.samples.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ]\n}\n");
        j
    }
}

/// A Chrome-trace event: a complete span (`dur > 0`) or an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event name (static so the hot path never allocates).
    pub name: &'static str,
    /// Start, in simulated cycles (exported as microseconds).
    pub ts: u64,
    /// Duration in cycles; 0 renders as an instant event.
    pub dur: u64,
    /// Virtual thread lane (see [`SpanSink::LANES`]).
    pub tid: u32,
}

/// A bounded span log. Recording past the cap drops events (counted),
/// so a pathological run cannot exhaust host memory.
#[derive(Debug, Clone)]
pub struct SpanSink {
    events: Vec<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl SpanSink {
    /// Lane names, indexed by `SpanEvent::tid`.
    pub const LANES: [&'static str; 4] = ["driver visits", "engine", "dram", "fills"];
    /// Lane for driver-visit spans (tagged by horizon source).
    pub const LANE_VISITS: u32 = 0;
    /// Lane for prefetch-engine rounds.
    pub const LANE_ENGINE: u32 = 1;
    /// Lane for DRAM read spans.
    pub const LANE_DRAM: u32 = 2;
    /// Lane for cache-fill events.
    pub const LANE_FILLS: u32 = 3;

    /// A sink holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        SpanSink {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Records an event, dropping it (counted) once the cap is reached.
    #[inline]
    pub fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events dropped after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sink, returning its events.
    pub fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }
}

/// Renders events in the Chrome trace-event JSON format (the
/// `{"traceEvents": [...]}` object form), loadable in `chrome://tracing`
/// and [Perfetto](https://ui.perfetto.dev). One simulated cycle maps to
/// one microsecond of trace time. Events are sorted by `(ts, tid)` so
/// the output is deterministic regardless of recording interleaving.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.ts, e.tid, e.dur, e.name));
    let mut j = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (tid, lane) in SpanSink::LANES.iter().enumerate() {
        let _ = writeln!(
            j,
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}},",
            json_escape(lane)
        );
    }
    for (i, e) in sorted.iter().enumerate() {
        if e.dur > 0 {
            let _ = write!(
                j,
                "  {{\"name\": \"{}\", \"cat\": \"sim\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 0, \"tid\": {}}}",
                json_escape(e.name),
                e.ts,
                e.dur,
                e.tid
            );
        } else {
            let _ = write!(
                j,
                "  {{\"name\": \"{}\", \"cat\": \"sim\", \"ph\": \"i\", \"ts\": {}, \
                 \"s\": \"t\", \"pid\": 0, \"tid\": {}}}",
                json_escape(e.name),
                e.ts,
                e.tid
            );
        }
        j.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    j.push_str("]}\n");
    j
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(255), 8);
        assert_eq!(Hist::bucket_of(256), 9);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let lo = Hist::bucket_lo(b);
            // Every bucket's lower bound maps back to that bucket.
            if b != 1 {
                // bucket 0 and 1 share lo = 0 (0 → b0, 1 → b1)
                assert_eq!(Hist::bucket_of(lo.max(1)), b.max(1), "bucket {b}");
            }
        }
    }

    #[test]
    fn hist_records_and_quantiles() {
        let mut h = Hist::new();
        for v in [1u64, 2, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1108);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1108.0 / 6.0).abs() < 1e-9);
        // p50 falls in the [2,4) bucket → upper bound 4.
        assert_eq!(h.quantile(0.5), 4);
        // p100 clamps to the observed max's bucket bound.
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(Hist::new().quantile(0.5), 0);
    }

    #[test]
    fn hist_merge_is_lossless_and_order_free() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for v in 0..100u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn registry_merge_is_deterministic() {
        let mut h = Hist::new();
        h.record(5);
        let mut a = Registry::new();
        a.set_counter("zz", 1);
        a.set_counter("aa", 2);
        a.put_hist("lat", &h);
        let mut b = Registry::new();
        b.set_counter("aa", 3);
        b.put_hist("lat", &h);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json(), "merge order must not show");
        assert_eq!(ab.counter("aa"), 5);
        assert_eq!(ab.counter("zz"), 1);
        assert_eq!(ab.hist("lat").unwrap().count(), 2);
        // Sorted keys: "aa" renders before "zz".
        let json = ab.to_json();
        assert!(json.find("\"aa\"").unwrap() < json.find("\"zz\"").unwrap());
    }

    #[test]
    fn phase_series_round_trips_columns() {
        let mut s = PhaseSeries::new(1000, vec!["a".into(), "b".into()]);
        s.push(1000, vec![1, 2]);
        s.push(2000, vec![3, 4]);
        assert_eq!(s.value(1, "b"), Some(4));
        assert_eq!(s.value(0, "c"), None);
        let j = s.to_json();
        assert!(j.contains("\"interval\": 1000"));
        assert!(j.contains("{\"cycle\": 2000, \"values\": [3, 4]}"));
    }

    #[test]
    #[should_panic(expected = "column arity mismatch")]
    fn phase_series_rejects_wrong_arity() {
        let mut s = PhaseSeries::new(10, vec!["a".into()]);
        s.push(10, vec![1, 2]);
    }

    #[test]
    fn span_sink_caps_and_counts_drops() {
        let mut s = SpanSink::new(2);
        for i in 0..5 {
            s.push(SpanEvent {
                name: "x",
                ts: i,
                dur: 1,
                tid: 0,
            });
        }
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn chrome_trace_renders_spans_and_instants() {
        let events = vec![
            SpanEvent {
                name: "visit",
                ts: 10,
                dur: 5,
                tid: SpanSink::LANE_VISITS,
            },
            SpanEvent {
                name: "fill",
                ts: 3,
                dur: 0,
                tid: SpanSink::LANE_FILLS,
            },
        ];
        let j = chrome_trace_json(&events);
        assert!(j.contains("\"traceEvents\""));
        // Sorted by ts: the instant (ts=3) renders before the span.
        assert!(j.find("\"fill\"").unwrap() < j.find("\"visit\"").unwrap());
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"ph\": \"i\""));
        assert!(j.contains("\"thread_name\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
