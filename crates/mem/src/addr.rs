//! Address constants and helpers shared across the memory hierarchy.
//!
//! All addresses in the simulator are 64-bit *virtual* addresses. The
//! simulated machine uses an identity virtual→physical mapping (see
//! [`crate::tlb`]), so the same numeric value is used for cache indexing and
//! DRAM bank mapping; translation still costs TLB/walker time.

/// Cache line size in bytes (fixed at 64, as in the paper's configuration).
pub const LINE_SIZE: u64 = 64;

/// Page size in bytes (4 KiB, standard ARMv8 granule).
pub const PAGE_SIZE: u64 = 4096;

/// Returns the line-aligned base address containing `addr`.
///
/// # Example
/// ```
/// assert_eq!(etpp_mem::line_of(0x1234), 0x1200);
/// ```
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_SIZE - 1)
}

/// Returns the byte offset of `addr` within its cache line.
///
/// # Example
/// ```
/// assert_eq!(etpp_mem::offset_in_line(0x1234), 0x34);
/// ```
#[inline]
pub fn offset_in_line(addr: u64) -> u64 {
    addr & (LINE_SIZE - 1)
}

/// Returns the page-aligned base address containing `addr`.
#[inline]
pub fn page_of(addr: u64) -> u64 {
    addr & !(PAGE_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_is_aligned() {
        for a in [0u64, 1, 63, 64, 65, 0xdead_beef] {
            assert_eq!(line_of(a) % LINE_SIZE, 0);
            assert!(line_of(a) <= a);
            assert!(a - line_of(a) < LINE_SIZE);
        }
    }

    #[test]
    fn offset_plus_line_recovers_addr() {
        for a in [0u64, 7, 64, 100, u64::MAX - 63] {
            assert_eq!(line_of(a) + offset_in_line(a), a);
        }
    }

    #[test]
    fn page_of_is_aligned() {
        assert_eq!(page_of(0x1fff), 0x1000);
        assert_eq!(page_of(0x1000), 0x1000);
        assert_eq!(page_of(0xfff), 0);
    }
}
