//! The prefetch-engine attachment point.
//!
//! Every prefetcher in this repository — the event-triggered programmable
//! prefetcher of the paper as well as the stride and GHB baselines — plugs
//! into the L1 data cache through [`PrefetchEngine`]. The memory system:
//!
//! * forwards snooped demand accesses ([`PrefetchEngine::on_demand`]),
//! * forwards prefetched data arriving at L1, with the actual 64-byte line
//!   contents and any request tag ([`PrefetchEngine::on_prefetch_fill`]),
//! * gives the engine a cycle callback ([`PrefetchEngine::tick`]),
//! * pops prefetch requests whenever the L1 has a free MSHR
//!   ([`PrefetchEngine::pop_request`]), per §4.6 of the paper, and
//! * asks for the engine's *event horizon*
//!   ([`PrefetchEngine::next_event_at`]) so tick/pop calls — and, on the
//!   trace-replay fast path, whole stretches of simulated time — can be
//!   skipped while the engine provably has nothing to do.
//!
//! Configuration instructions executed by the main core (address-bounds
//! registration, global registers, tag bindings — §4.2/§5) arrive through
//! [`PrefetchEngine::config`].

use crate::cache::Line;

/// Identifier of a filter-table range entry (paper: "address bounds").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeId(pub u16);

/// Identifier of a memory-request tag (§4.7), naming a linked data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u16);

/// Flags controlling EWMA timing collection for a filter range (§4.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterFlags {
    /// Record the interval between successive demand reads in this range
    /// (e.g. time between FIFO pops in BFS) into the iteration EWMA.
    pub ewma_iteration: bool,
    /// Events triggered from this range start a timed prefetch chain.
    pub ewma_chain_start: bool,
    /// Prefetches completing in this range terminate a timed chain and feed
    /// the load-time EWMA.
    pub ewma_chain_end: bool,
}

/// A demand access snooped at the L1 (paper: "all snooped reads from the
/// main core").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandEvent {
    /// Cycle the access was issued.
    pub at: u64,
    /// Exact virtual address accessed.
    pub vaddr: u64,
    /// Program counter of the access (used by the PC-indexed baselines).
    pub pc: u32,
    /// True for stores.
    pub is_write: bool,
    /// Whether the access hit in L1.
    pub l1_hit: bool,
}

/// A prefetch request produced by an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Virtual address to prefetch (need not be line aligned; kernels use
    /// the offset to locate fields within the returned line).
    pub vaddr: u64,
    /// Memory-request tag; when the data returns, the engine is notified
    /// with this tag so linked-structure kernels can continue the chain.
    pub tag: Option<TagId>,
    /// Opaque metadata returned verbatim in `on_prefetch_fill` (the
    /// programmable prefetcher threads EWMA chain birth-times through here).
    pub meta: u64,
}

/// A prefetcher configuration operation executed by the main core.
///
/// These correspond to the "explicit address bounds configuration
/// instructions" of §4.2 and the global-register setup of §5.2; compiler
/// passes emit them immediately before the loop they serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigOp {
    /// Register (or overwrite) a filter-table range.
    SetRange {
        /// Which filter-table slot to write.
        id: RangeId,
        /// Inclusive lower virtual-address bound.
        lo: u64,
        /// Exclusive upper virtual-address bound.
        hi: u64,
        /// Kernel to run on a demand load in the range (`Load Ptr`).
        on_load: Option<u16>,
        /// Kernel to run when a prefetch into the range returns (`PF Ptr`).
        on_prefetch: Option<u16>,
        /// EWMA timing roles of this range.
        flags: FilterFlags,
    },
    /// Remove a filter-table range.
    ClearRange {
        /// Slot to clear.
        id: RangeId,
    },
    /// Write a global prefetcher register (array bases, hash masks, ...).
    SetGlobal {
        /// Register index.
        idx: u8,
        /// Value.
        value: u64,
    },
    /// Bind a memory-request tag to the kernel run when tagged data returns.
    SetTagKernel {
        /// Tag to bind.
        tag: TagId,
        /// Kernel index.
        kernel: u16,
        /// Tagged fills also terminate a timed EWMA chain.
        chain_end: bool,
    },
    /// Enable or disable the whole engine (power gating; §4.1).
    Enable(bool),
}

/// A prefetch engine attached to the L1 data cache.
///
/// Engines must be cheap to call: `on_demand` fires for every L1 access.
pub trait PrefetchEngine {
    /// A demand access was snooped at the L1.
    fn on_demand(&mut self, now: u64, ev: &DemandEvent);

    /// Prefetched data arrived at the L1 (or was found already resident).
    /// `line` is the actual 64-byte content; `tag`/`meta` echo the request.
    fn on_prefetch_fill(
        &mut self,
        now: u64,
        vaddr: u64,
        line: &Line,
        tag: Option<TagId>,
        meta: u64,
    );

    /// Advance internal state by one core cycle.
    fn tick(&mut self, now: u64);

    /// Pop the next prefetch request, if any. Called only when the L1 has a
    /// free MSHR, so returning `Some` guarantees issue (modulo TLB faults).
    fn pop_request(&mut self, now: u64) -> Option<PrefetchRequest>;

    /// Execute a configuration instruction from the main core.
    fn config(&mut self, now: u64, op: &ConfigOp);

    /// The engine's *event horizon*: the earliest cycle strictly after
    /// `now` at which it can make progress without external stimulus —
    /// a queued request becoming poppable, a scheduled emission falling
    /// due, a busy PPU freeing up for a waiting observation, a blocked
    /// PPU timing out. `None` means the engine is quiescent until the
    /// next `on_demand` / `on_prefetch_fill` / `config` call.
    ///
    /// This is the scheduling contract: callers ([`MemorySystem::tick`]
    /// and trace replay) may skip every cycle strictly before the
    /// returned horizon — the engine guarantees that ticking it at those
    /// cycles would have been a no-op and `pop_request` would have
    /// returned `None`. Engines with pending pops must therefore return
    /// `Some(now + 1)` while their request queue is non-empty. The
    /// default suits stateless engines that only react to stimuli.
    ///
    /// [`MemorySystem::tick`]: crate::MemorySystem::tick
    fn next_event_at(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }

    /// The engine's *internal-work* horizon: like
    /// [`PrefetchEngine::next_event_at`] but excluding the "queued
    /// requests are poppable" component. The memory system switches to
    /// this bound while its prefetch buffer is full — pops cannot issue
    /// until a slot frees (a fill event already on its heap), so a
    /// backlogged pop queue must not pin per-cycle engine rounds.
    /// Engines whose `tick` is a pure no-op may return `None` even with
    /// requests queued; the default conservatively falls back to the
    /// full horizon.
    fn next_tick_at(&self, now: u64) -> Option<u64> {
        self.next_event_at(now)
    }
}

/// An engine that never prefetches (the "no prefetching" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullEngine;

impl PrefetchEngine for NullEngine {
    fn on_demand(&mut self, _now: u64, _ev: &DemandEvent) {}
    fn on_prefetch_fill(
        &mut self,
        _now: u64,
        _vaddr: u64,
        _line: &Line,
        _tag: Option<TagId>,
        _meta: u64,
    ) {
    }
    fn tick(&mut self, _now: u64) {}
    fn pop_request(&mut self, _now: u64) -> Option<PrefetchRequest> {
        None
    }
    fn config(&mut self, _now: u64, _op: &ConfigOp) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_engine_is_inert() {
        let mut e = NullEngine;
        e.on_demand(
            0,
            &DemandEvent {
                at: 0,
                vaddr: 0x40,
                pc: 1,
                is_write: false,
                l1_hit: false,
            },
        );
        e.tick(1);
        assert_eq!(e.pop_request(2), None);
    }
}
