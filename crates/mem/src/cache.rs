//! Set-associative, write-back cache state with prefetch accounting.
//!
//! The cache model holds *presence* state (tags, LRU, dirty/prefetched/used
//! bits); timing is orchestrated by [`crate::system::MemorySystem`]. Each
//! line carries a `prefetched` bit that is cleared on the first demand hit;
//! evicting a line whose bit is still set counts as an *unused* prefetch,
//! which is exactly the denominator of Figure 8(a) in the paper.

use crate::addr::LINE_SIZE;
use crate::stats::CacheStats;

/// A 64-byte cache line's worth of data.
pub type Line = [u8; LINE_SIZE as usize];

/// Static parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
    /// Number of miss status holding registers.
    pub mshrs: usize,
}

impl CacheParams {
    /// The paper's L1D: 32 KB, 2-way, 2-cycle hit, 12 MSHRs.
    pub fn paper_l1() -> Self {
        CacheParams {
            size: 32 * 1024,
            ways: 2,
            hit_latency: 2,
            mshrs: 12,
        }
    }

    /// The paper's L2: 1 MB, 16-way, 12-cycle hit, 16 MSHRs.
    pub fn paper_l2() -> Self {
        CacheParams {
            size: 1024 * 1024,
            ways: 16,
            hit_latency: 12,
            mshrs: 16,
        }
    }

    /// Number of sets implied by size/ways/line-size.
    pub fn sets(&self) -> usize {
        (self.size / LINE_SIZE) as usize / self.ways
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Set when the fill was triggered by a prefetch and no demand access has
    /// touched the line yet.
    prefetched: bool,
    /// LRU stamp; larger is more recent.
    lru: u64,
}

/// What a lookup found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present. `was_prefetched` reports whether this is the first
    /// demand touch of a prefetched line.
    Hit {
        /// True if this demand access is the first use of a prefetched line.
        was_prefetched: bool,
    },
    /// Line absent.
    Miss,
}

/// An evicted line: address and whether it must be written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Victim was dirty and needs a writeback to the next level.
    pub dirty: bool,
    /// Victim still had its prefetched bit set (prefetch was never used).
    pub unused_prefetch: bool,
}

/// Set-associative cache presence state.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: Vec<Way>,
    stamp: u64,
    /// Running statistics (demand/prefetch hits and misses, utilisation).
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert_eq!(
            sets as u64 * params.ways as u64 * LINE_SIZE,
            params.size,
            "size must equal sets*ways*line"
        );
        Cache {
            params,
            sets: vec![Way::default(); sets * params.ways],
            stamp: 1,
            stats: CacheStats::default(),
        }
    }

    /// The parameters this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / LINE_SIZE) as usize) & (self.params.sets() - 1)
    }

    #[inline]
    fn ways_of(&mut self, set: usize) -> &mut [Way] {
        let w = self.params.ways;
        &mut self.sets[set * w..(set + 1) * w]
    }

    /// Probes for `line_addr` without updating statistics. Demand accesses
    /// update LRU and consume the prefetched bit; probe-only lookups (e.g.
    /// from the prefetch path) use [`Cache::contains`].
    pub fn lookup_demand(&mut self, line_addr: u64) -> LookupResult {
        let set = self.set_index(line_addr);
        let stamp = self.bump();
        for way in self.ways_of(set) {
            if way.valid && way.tag == line_addr {
                way.lru = stamp;
                let was_prefetched = way.prefetched;
                way.prefetched = false;
                if was_prefetched {
                    self.stats.prefetches_used += 1;
                }
                return LookupResult::Hit { was_prefetched };
            }
        }
        LookupResult::Miss
    }

    /// Whether the line is present (no LRU or bit side effects).
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        let w = self.params.ways;
        self.sets[set * w..(set + 1) * w]
            .iter()
            .any(|way| way.valid && way.tag == line_addr)
    }

    /// Marks the line dirty (committed store hit). No-op if absent.
    pub fn mark_dirty(&mut self, line_addr: u64) {
        let set = self.set_index(line_addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == line_addr {
                way.dirty = true;
                return;
            }
        }
    }

    /// Inserts `line_addr`, evicting the LRU way if the set is full.
    ///
    /// `prefetched` marks the fill as prefetch-triggered for utilisation
    /// accounting; `dirty` pre-dirties the line (writeback fills).
    pub fn fill(&mut self, line_addr: u64, prefetched: bool, dirty: bool) -> Option<Eviction> {
        let set = self.set_index(line_addr);
        let stamp = self.bump();
        // Already present (e.g. racing fills): refresh bits, no eviction.
        for way in self.ways_of(set) {
            if way.valid && way.tag == line_addr {
                way.lru = stamp;
                way.dirty |= dirty;
                return None;
            }
        }
        let ways = self.ways_of(set);
        let victim = match ways.iter_mut().find(|w| !w.valid) {
            Some(w) => w,
            None => ways.iter_mut().min_by_key(|w| w.lru).expect("ways"),
        };
        let evicted = if victim.valid {
            Some(Eviction {
                line_addr: victim.tag,
                dirty: victim.dirty,
                unused_prefetch: victim.prefetched,
            })
        } else {
            None
        };
        *victim = Way {
            tag: line_addr,
            valid: true,
            dirty,
            prefetched,
            lru: stamp,
        };
        if evicted.is_some_and(|e| e.unused_prefetch) {
            self.stats.prefetches_unused += 1;
        }
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        evicted
    }

    /// Invalidates the line if present, returning its eviction record.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<Eviction> {
        let set = self.set_index(line_addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == line_addr {
                let ev = Eviction {
                    line_addr: way.tag,
                    dirty: way.dirty,
                    unused_prefetch: way.prefetched,
                };
                way.valid = false;
                return Some(ev);
            }
        }
        None
    }

    /// Number of currently valid lines (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }

    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheParams {
            size: 512,
            ways: 2,
            hit_latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup_demand(0x1000), LookupResult::Miss);
        assert!(c.fill(0x1000, false, false).is_none());
        assert!(matches!(c.lookup_demand(0x1000), LookupResult::Hit { .. }));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64 = 256B).
        c.fill(0x0000, false, false);
        c.fill(0x0100, false, false);
        // Touch 0x0000 so 0x0100 becomes LRU.
        c.lookup_demand(0x0000);
        let ev = c.fill(0x0200, false, false).expect("eviction");
        assert_eq!(ev.line_addr, 0x0100);
        assert!(c.contains(0x0000));
        assert!(c.contains(0x0200));
        assert!(!c.contains(0x0100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x0000, false, false);
        c.mark_dirty(0x0000);
        c.fill(0x0100, false, false);
        let ev = c.fill(0x0200, false, false).expect("eviction");
        assert!(ev.dirty, "dirty victim must ask for writeback");
    }

    #[test]
    fn prefetched_bit_consumed_on_first_hit() {
        let mut c = tiny();
        c.fill(0x40, true, false);
        assert_eq!(
            c.lookup_demand(0x40),
            LookupResult::Hit {
                was_prefetched: true
            }
        );
        assert_eq!(
            c.lookup_demand(0x40),
            LookupResult::Hit {
                was_prefetched: false
            }
        );
        assert_eq!(c.stats.prefetches_used, 1);
    }

    #[test]
    fn unused_prefetch_counted_on_eviction() {
        let mut c = tiny();
        c.fill(0x0000, true, false);
        c.fill(0x0100, false, false);
        c.fill(0x0200, false, false); // evicts one of them
        c.fill(0x0300, false, false); // evicts the other
        assert_eq!(c.stats.prefetch_fills, 1);
        assert_eq!(c.stats.prefetches_unused, 1);
        assert_eq!(c.stats.prefetches_used, 0);
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = tiny();
        c.fill(0x0000, false, false);
        assert!(c.fill(0x0000, false, true).is_none());
        let ev = c.invalidate(0x0000).unwrap();
        assert!(ev.dirty, "refill with dirty=true must stick");
    }

    #[test]
    fn paper_geometries_are_valid() {
        let l1 = Cache::new(CacheParams::paper_l1());
        assert_eq!(l1.params().sets(), 256);
        let l2 = Cache::new(CacheParams::paper_l2());
        assert_eq!(l2.params().sets(), 1024);
    }
}
