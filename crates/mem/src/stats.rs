//! Statistics counters for every level of the memory hierarchy.
//!
//! These counters feed the paper's evaluation directly: Figure 8(a) is
//! `prefetches_used / (prefetches_used + prefetches_unused)`, Figure 8(b) is
//! the L1 demand read hit rate, and §7.2's "extra memory accesses" is the
//! ratio of [`DramStats::reads`] between prefetching and non-prefetching
//! runs.

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand read accesses that hit.
    pub read_hits: u64,
    /// Demand read accesses that missed.
    pub read_misses: u64,
    /// Demand write (store) accesses that hit.
    pub write_hits: u64,
    /// Demand write accesses that missed.
    pub write_misses: u64,
    /// Lines filled by prefetch requests.
    pub prefetch_fills: u64,
    /// Prefetched lines touched by a demand access before eviction.
    pub prefetches_used: u64,
    /// Prefetched lines evicted untouched.
    pub prefetches_unused: u64,
    /// Demand misses that merged into an in-flight prefetch (late prefetch:
    /// useful for latency hiding but not a full hit).
    pub late_prefetch_merges: u64,
    /// Prefetch-originated lookups that hit (L2 classification).
    pub pf_lookup_hits: u64,
    /// Prefetch-originated lookups that missed.
    pub pf_lookup_misses: u64,
}

impl CacheStats {
    /// Demand read hit rate in `[0,1]`; 0 if there were no reads.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }

    /// Fraction of prefetched lines used before eviction (Figure 8a).
    ///
    /// Prefetched lines still resident at the end of a run are counted as
    /// neither used nor unused, matching the paper's eviction-based metric.
    pub fn prefetch_utilisation(&self) -> f64 {
        let total = self.prefetches_used + self.prefetches_unused;
        if total == 0 {
            0.0
        } else {
            self.prefetches_used as f64 / total as f64
        }
    }
}

/// DRAM traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Line reads served by DRAM.
    pub reads: u64,
    /// Line writebacks received by DRAM.
    pub writes: u64,
    /// Reads whose row was already open (row-buffer hits).
    pub row_hits: u64,
    /// Reads that required an activate (row-buffer misses).
    pub row_misses: u64,
    /// Total cycles requests spent queued behind bank/bus conflicts.
    pub queue_cycles: u64,
}

impl DramStats {
    /// Total line transfers in either direction.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// TLB counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 TLB hits.
    pub l1_hits: u64,
    /// L1 TLB misses that hit in the L2 TLB.
    pub l2_hits: u64,
    /// Full misses requiring a page-table walk.
    pub walks: u64,
    /// Translations rejected because all walker slots were busy.
    pub walker_busy: u64,
    /// Translation requests for unmapped pages (prefetches to be dropped).
    pub faults: u64,
}

/// Aggregate snapshot of every memory-side counter, taken at end of run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// TLB counters.
    pub tlb: TlbStats,
    /// Prefetch requests dropped for TLB faults or unmapped pages.
    pub prefetch_drops: u64,
    /// Prefetch requests that found their line already in L1.
    pub prefetch_l1_redundant: u64,
    /// Prefetch requests issued to the hierarchy.
    pub prefetches_issued: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().read_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_basic() {
        let s = CacheStats {
            read_hits: 3,
            read_misses: 1,
            ..Default::default()
        };
        assert!((s.read_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilisation_ignores_resident_lines() {
        let s = CacheStats {
            prefetch_fills: 10,
            prefetches_used: 4,
            prefetches_unused: 1,
            ..Default::default()
        };
        assert!((s.prefetch_utilisation() - 0.8).abs() < 1e-12);
    }
}
