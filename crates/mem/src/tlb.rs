//! TLB hierarchy and page-table-walker occupancy model.
//!
//! Matches Table 1 of the paper: a 64-entry fully-associative L1 TLB, a
//! 4096-entry 8-way L2 TLB with an 8-cycle hit latency, and a walker that
//! supports three concurrent walks. The simulated machine uses an identity
//! virtual→physical mapping, so translation affects *timing* (and prefetch
//! droppability on faults), not addresses.
//!
//! The prefetcher shares this TLB (paper §4.6): prefetch translations that
//! fault are dropped, and translations that need a walk while all walker
//! slots are busy are rejected so the caller can retry.

use crate::addr::page_of;
use crate::stats::TlbStats;

/// TLB geometry and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbParams {
    /// L1 TLB entries (fully associative).
    pub l1_entries: usize,
    /// L2 TLB entries.
    pub l2_entries: usize,
    /// L2 TLB associativity.
    pub l2_ways: usize,
    /// L2 TLB hit latency in core cycles.
    pub l2_latency: u64,
    /// Concurrent page-table walks supported.
    pub walkers: usize,
    /// Latency of a full page-table walk in core cycles. A real walk is a
    /// handful of dependent memory accesses; we charge a fixed cost sized to
    /// an L2-resident page table.
    pub walk_latency: u64,
}

impl TlbParams {
    /// Table 1's TLB configuration.
    pub fn paper() -> Self {
        TlbParams {
            l1_entries: 64,
            l2_entries: 4096,
            l2_ways: 8,
            l2_latency: 8,
            walkers: 3,
            walk_latency: 90,
        }
    }
}

impl Default for TlbParams {
    fn default() -> Self {
        TlbParams::paper()
    }
}

/// Result of a translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Translation available after `latency` additional core cycles.
    Ready {
        /// Extra core cycles before the translated access may proceed.
        latency: u64,
    },
    /// All walker slots busy; retry later.
    WalkerBusy,
    /// The page is unmapped. Demand accesses would fault; prefetches drop.
    Fault,
}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    page: u64,
    valid: bool,
    lru: u64,
}

/// Two-level TLB plus walker slots.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    params: TlbParams,
    l1: Vec<TlbEntry>,
    l2: Vec<TlbEntry>,
    walker_busy_until: Vec<u64>,
    stamp: u64,
    /// Host-side shortcut: index of the most recently hit L1 entry,
    /// probed before the fully-associative scan. Purely an access-path
    /// optimisation — hit/miss outcomes and LRU state are unchanged.
    mru: usize,
    /// Hit/miss/walk statistics.
    pub stats: TlbStats,
}

impl TlbHierarchy {
    /// Creates an empty TLB hierarchy.
    pub fn new(params: TlbParams) -> Self {
        assert!(params.l2_entries.is_multiple_of(params.l2_ways));
        assert!((params.l2_entries / params.l2_ways).is_power_of_two());
        TlbHierarchy {
            l1: vec![TlbEntry::default(); params.l1_entries],
            l2: vec![TlbEntry::default(); params.l2_entries],
            walker_busy_until: vec![0; params.walkers],
            stamp: 1,
            mru: 0,
            params,
            stats: TlbStats::default(),
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &TlbParams {
        &self.params
    }

    /// Attempts to translate `vaddr` at time `now`. `mapped` reports whether
    /// the containing page exists in the memory image.
    pub fn translate(&mut self, now: u64, vaddr: u64, mapped: bool) -> Translation {
        let page = page_of(vaddr);
        self.stamp += 1;
        let stamp = self.stamp;

        // L1: fully associative; probe the last-hit entry first (pages
        // repeat run-to-run, so this skips the scan almost always).
        {
            let m = &mut self.l1[self.mru];
            if m.valid && m.page == page {
                m.lru = stamp;
                self.stats.l1_hits += 1;
                return Translation::Ready { latency: 0 };
            }
        }
        if let Some(i) = self.l1.iter().position(|e| e.valid && e.page == page) {
            self.l1[i].lru = stamp;
            self.mru = i;
            self.stats.l1_hits += 1;
            return Translation::Ready { latency: 0 };
        }

        // L2: set associative on page number.
        let sets = self.params.l2_entries / self.params.l2_ways;
        let set = ((page >> 12) as usize) & (sets - 1);
        let ways = &mut self.l2[set * self.params.l2_ways..(set + 1) * self.params.l2_ways];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.page == page) {
            e.lru = stamp;
            self.stats.l2_hits += 1;
            self.fill_l1(page, stamp);
            return Translation::Ready {
                latency: self.params.l2_latency,
            };
        }

        if !mapped {
            self.stats.faults += 1;
            return Translation::Fault;
        }

        // Page-table walk: find a free walker slot.
        match self.walker_busy_until.iter_mut().find(|slot| **slot <= now) {
            Some(slot) => {
                let latency = self.params.l2_latency + self.params.walk_latency;
                *slot = now + self.params.walk_latency;
                self.stats.walks += 1;
                self.fill_l2(page, stamp);
                self.fill_l1(page, stamp);
                Translation::Ready { latency }
            }
            None => {
                self.stats.walker_busy += 1;
                Translation::WalkerBusy
            }
        }
    }

    fn fill_l1(&mut self, page: u64, stamp: u64) {
        let idx = match self.l1.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => self
                .l1
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("l1 tlb"),
        };
        self.l1[idx] = TlbEntry {
            page,
            valid: true,
            lru: stamp,
        };
        self.mru = idx;
    }

    fn fill_l2(&mut self, page: u64, stamp: u64) {
        let sets = self.params.l2_entries / self.params.l2_ways;
        let set = ((page >> 12) as usize) & (sets - 1);
        let ways = &mut self.l2[set * self.params.l2_ways..(set + 1) * self.params.l2_ways];
        let victim = match ways.iter_mut().find(|e| !e.valid) {
            Some(v) => v,
            None => ways.iter_mut().min_by_key(|e| e.lru).expect("l2 tlb"),
        };
        *victim = TlbEntry {
            page,
            valid: true,
            lru: stamp,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_walks_then_hits() {
        let mut t = TlbHierarchy::new(TlbParams::paper());
        let r = t.translate(0, 0x10_0000, true);
        assert!(matches!(r, Translation::Ready { latency } if latency > 0));
        assert_eq!(t.stats.walks, 1);
        let r2 = t.translate(1000, 0x10_0008, true);
        assert_eq!(r2, Translation::Ready { latency: 0 });
        assert_eq!(t.stats.l1_hits, 1);
    }

    #[test]
    fn unmapped_page_faults() {
        let mut t = TlbHierarchy::new(TlbParams::paper());
        assert_eq!(t.translate(0, 0xdead_0000, false), Translation::Fault);
        assert_eq!(t.stats.faults, 1);
    }

    #[test]
    fn walker_slots_bound_concurrency() {
        let mut t = TlbHierarchy::new(TlbParams::paper());
        // Three walks at t=0 occupy all slots...
        for i in 0..3u64 {
            let r = t.translate(0, 0x100_0000 + i * 4096, true);
            assert!(matches!(r, Translation::Ready { .. }));
        }
        // ...the fourth is rejected...
        assert_eq!(
            t.translate(0, 0x100_0000 + 3 * 4096, true),
            Translation::WalkerBusy
        );
        // ...until a slot frees up.
        let later = t.params().walk_latency + 1;
        assert!(matches!(
            t.translate(later, 0x100_0000 + 3 * 4096, true),
            Translation::Ready { .. }
        ));
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut t = TlbHierarchy::new(TlbParams::paper());
        // Touch l1_entries+1 distinct pages; page 0 gets evicted from L1 but
        // stays in L2.
        let n = t.params().l1_entries as u64 + 1;
        for i in 0..n {
            t.translate(i * 1000, 0x200_0000 + i * 4096, true);
        }
        let r = t.translate(1_000_000, 0x200_0000, true);
        assert_eq!(
            r,
            Translation::Ready {
                latency: t.params().l2_latency
            },
            "evicted-from-L1 page should hit in L2"
        );
    }
}
