//! Memory-side observability: histograms, prefetch-lifecycle tracking
//! and trace spans published by [`crate::system::MemorySystem`].
//!
//! Everything in here is *pure observation* — the tracker reads hook
//! arguments and writes only into its own state, never back into the
//! hierarchy — which is what lets the equivalence suite pin
//! telemetry-on runs bit-identical to telemetry-off runs.
//!
//! ## Lifecycle taxonomy
//!
//! Each prefetch that installs a line is followed to one terminal class
//! (the paper's timeliness/accuracy axes, §7):
//!
//! * **accurate** — the first demand touch hit the still-resident
//!   prefetched line (full latency hidden);
//! * **late** — a demand access merged into the prefetch while it was
//!   still in flight (partial latency hidden; extends the
//!   `late_prefetch_merges` counter with per-PC attribution);
//! * **early-evicted** — the line was evicted untouched and a demand
//!   access arrived *afterwards* (right address, wrong time);
//! * **useless** — evicted untouched and never demanded (wrong
//!   address, pure pollution).
//!
//! Prefetches still in flight or still resident-unused at the end of a
//! run are reported separately and belong to no class, matching the
//! eviction-based accounting of Figure 8(a).

use crate::fasthash::{FastHashMap, FastHashSet};
use etpp_telemetry::{Hist, Registry, SpanSink};
use std::collections::BTreeMap;

/// Per-PC lifecycle attribution (keyed by the *demand* PC that touched
/// the prefetched line — prefetch requests themselves carry no PC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcLifecycle {
    /// Demand hits on resident prefetched lines at this PC.
    pub accurate: u64,
    /// Demand merges into in-flight prefetches at this PC.
    pub late: u64,
}

/// Terminal-class counters for every prefetch the hierarchy accepted.
#[derive(Debug, Clone, Default)]
pub struct LifecycleCounts {
    /// Requests popped from the engine (before any filtering).
    pub issued: u64,
    /// Dropped for TLB faults / unmapped pages / busy walkers.
    pub dropped: u64,
    /// Found their line already resident in L1.
    pub redundant: u64,
    /// Merged into a demand miss already fetching the line (the demand
    /// got there first; the prefetch added nothing).
    pub merged_demand: u64,
    /// First demand touch hit the resident prefetched line.
    pub accurate: u64,
    /// Demand merged into the prefetch while still in flight.
    pub late: u64,
    /// Evicted untouched, then demanded later.
    pub early_evicted: u64,
    /// Evicted untouched, never demanded.
    pub useless: u64,
    /// Still in flight when the run ended.
    pub inflight_at_end: u64,
    /// Filled, untouched, still resident when the run ended.
    pub resident_at_end: u64,
}

impl LifecycleCounts {
    /// Total prefetches assigned a terminal class.
    pub fn classified(&self) -> u64 {
        self.accurate + self.late + self.early_evicted + self.useless
    }

    /// Percentage of classified prefetches in a class (0 when none).
    pub fn pct(&self, class: u64) -> f64 {
        let total = self.classified();
        if total == 0 {
            0.0
        } else {
            100.0 * class as f64 / total as f64
        }
    }
}

/// Follows every prefetch from issue to its terminal class.
///
/// Internal maps use [`FastHashMap`]/[`FastHashSet`] (hot path); all
/// *exposed* aggregates are plain counters or [`BTreeMap`]s so
/// publishing is deterministic regardless of hash iteration order.
#[derive(Debug, Clone, Default)]
pub struct LifecycleTracker {
    /// Aggregate terminal-class counters.
    pub counts: LifecycleCounts,
    /// Per-demand-PC attribution for accurate/late (sorted).
    pub per_pc: BTreeMap<u32, PcLifecycle>,
    /// Lines evicted with their prefetched bit still set: candidates
    /// for early-evicted (touched later) vs useless (never touched).
    evicted_unused: FastHashSet<u64>,
}

impl LifecycleTracker {
    /// A prefetch request was popped from the engine.
    pub fn on_issued(&mut self) {
        self.counts.issued += 1;
    }

    /// The request was dropped (fault / walker busy).
    pub fn on_dropped(&mut self) {
        self.counts.dropped += 1;
    }

    /// The request's line was already resident in L1.
    pub fn on_redundant(&mut self) {
        self.counts.redundant += 1;
    }

    /// The request merged into a demand miss already in flight.
    pub fn on_merged_demand(&mut self) {
        self.counts.merged_demand += 1;
    }

    /// A demand access hit a resident line whose prefetched bit was
    /// still set — the prefetch was accurate.
    pub fn on_accurate(&mut self, pc: u32) {
        self.counts.accurate += 1;
        self.per_pc.entry(pc).or_default().accurate += 1;
    }

    /// A demand access merged into an in-flight prefetch — late.
    pub fn on_late(&mut self, pc: u32) {
        self.counts.late += 1;
        self.per_pc.entry(pc).or_default().late += 1;
    }

    /// A line was evicted with its prefetched bit still set.
    pub fn on_evicted_unused(&mut self, line_addr: u64) {
        self.evicted_unused.insert(line_addr);
    }

    /// Every accepted demand access calls this: a touch of a line that
    /// was previously evicted-unused resolves it to *early-evicted*.
    #[inline]
    pub fn on_demand_touch(&mut self, line_addr: u64) {
        if !self.evicted_unused.is_empty() && self.evicted_unused.remove(&line_addr) {
            self.counts.early_evicted += 1;
        }
    }

    /// Ends the run: unresolved evicted-unused lines become *useless*,
    /// and the still-in-flight / still-resident populations are filled
    /// in from the hierarchy's own accounting.
    pub fn finalize(&mut self, inflight: u64, resident_unused: u64) {
        self.counts.useless += self.evicted_unused.len() as u64;
        self.evicted_unused.clear();
        self.counts.inflight_at_end = inflight;
        self.counts.resident_at_end = resident_unused;
    }

    /// Publishes the terminal-class counters into a registry under
    /// `pf.lifecycle.*`.
    pub fn publish(&self, reg: &mut Registry) {
        let c = &self.counts;
        reg.set_counter("pf.lifecycle.issued", c.issued);
        reg.set_counter("pf.lifecycle.dropped", c.dropped);
        reg.set_counter("pf.lifecycle.redundant", c.redundant);
        reg.set_counter("pf.lifecycle.merged_demand", c.merged_demand);
        reg.set_counter("pf.lifecycle.accurate", c.accurate);
        reg.set_counter("pf.lifecycle.late", c.late);
        reg.set_counter("pf.lifecycle.early_evicted", c.early_evicted);
        reg.set_counter("pf.lifecycle.useless", c.useless);
        reg.set_counter("pf.lifecycle.inflight_at_end", c.inflight_at_end);
        reg.set_counter("pf.lifecycle.resident_at_end", c.resident_at_end);
    }
}

/// All memory-side telemetry, attached to a [`crate::MemorySystem`]
/// behind an `Option<Box<..>>` so the disabled path costs one pointer
/// null-check per hook site.
#[derive(Debug)]
pub struct MemTelemetry {
    /// Demand access latency (issue → completion), cycles.
    pub load_latency: Hist,
    /// L1 MSHR occupancy sampled at each accepted demand access.
    pub mshr_occupancy: Hist,
    /// Prefetch-buffer residency (entry insert → fill), cycles.
    pub pf_buf_residency: Hist,
    /// Prefetch-buffer depth sampled at each injected prefetch.
    pub pf_buf_depth: Hist,
    /// Prefetch lifecycle classification.
    pub lifecycle: LifecycleTracker,
    /// DRAM-read spans and fill instants for the Chrome trace.
    pub spans: SpanSink,
    /// Issue cycle of each in-flight demand access (by `AccessId`).
    pub(crate) issue_at: FastHashMap<u64, u64>,
    /// Insert cycle of each live prefetch-buffer entry.
    pub(crate) pf_born: FastHashMap<u64, u64>,
    /// Whether span recording is on (off keeps hooks counter-only).
    pub(crate) record_spans: bool,
}

impl MemTelemetry {
    /// A fresh collector. `record_spans` enables the Chrome-trace
    /// event log (bounded by `span_cap`); counters and histograms are
    /// always collected.
    pub fn new(record_spans: bool, span_cap: usize) -> Self {
        MemTelemetry {
            load_latency: Hist::new(),
            mshr_occupancy: Hist::new(),
            pf_buf_residency: Hist::new(),
            pf_buf_depth: Hist::new(),
            lifecycle: LifecycleTracker::default(),
            spans: SpanSink::new(if record_spans { span_cap } else { 0 }),
            issue_at: FastHashMap::default(),
            pf_born: FastHashMap::default(),
            record_spans,
        }
    }

    /// Publishes every counter and histogram into a registry under the
    /// `mem.*` / `pf.*` namespaces (see README "Observability").
    pub fn publish(&self, reg: &mut Registry) {
        reg.put_hist("mem.load_latency", &self.load_latency);
        reg.put_hist("mem.l1_mshr_occupancy", &self.mshr_occupancy);
        reg.put_hist("pf.buffer_residency", &self.pf_buf_residency);
        reg.put_hist("pf.buffer_depth", &self.pf_buf_depth);
        self.lifecycle.publish(reg);
        reg.set_counter("trace.spans_dropped", self.spans.dropped());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_classes_resolve() {
        let mut t = LifecycleTracker::default();
        t.on_issued();
        t.on_issued();
        t.on_issued();
        t.on_accurate(0x40);
        t.on_late(0x44);
        t.on_evicted_unused(0x1000);
        t.on_evicted_unused(0x2000);
        t.on_demand_touch(0x1000); // early
        t.on_demand_touch(0x3000); // unrelated line: no effect
        t.finalize(1, 2);
        let c = &t.counts;
        assert_eq!(c.accurate, 1);
        assert_eq!(c.late, 1);
        assert_eq!(c.early_evicted, 1);
        assert_eq!(c.useless, 1, "unresolved eviction becomes useless");
        assert_eq!(c.inflight_at_end, 1);
        assert_eq!(c.resident_at_end, 2);
        assert_eq!(c.classified(), 4);
        assert!((c.pct(c.accurate) - 25.0).abs() < 1e-12);
        assert_eq!(t.per_pc.get(&0x40).unwrap().accurate, 1);
        assert_eq!(t.per_pc.get(&0x44).unwrap().late, 1);
    }

    #[test]
    fn publish_is_deterministic() {
        let mut t = MemTelemetry::new(false, 0);
        t.load_latency.record(100);
        t.lifecycle.on_issued();
        let mut a = Registry::new();
        t.publish(&mut a);
        let mut b = Registry::new();
        t.publish(&mut b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.counter("pf.lifecycle.issued"), 1);
        assert_eq!(a.hist("mem.load_latency").unwrap().count(), 1);
    }
}
