//! Simulated memory substrate for the ETPP cycle-level simulator.
//!
//! This crate provides everything below the CPU core:
//!
//! * [`MemoryImage`] — a sparse, byte-addressable virtual memory holding the
//!   *actual data* of the simulated program, so that prefetch kernels observe
//!   real cache-line contents when their prefetches complete.
//! * [`Cache`] — a set-associative, write-back cache model with per-line
//!   prefetch/used bits for utilisation accounting.
//! * [`MshrFile`] — miss status holding registers, including the *memory
//!   request tags* of §4.7 of the paper.
//! * [`Dram`] — a DDR3-1600-style bank/row timing model.
//! * [`TlbHierarchy`] — L1/L2 TLBs plus a page-table-walker occupancy model.
//! * [`MemorySystem`] — the wiring of all of the above into the L1→L2→DRAM
//!   hierarchy that the core and the prefetch engine talk to.
//! * [`PrefetchEngine`] — the attachment point every prefetcher in this
//!   repository implements (the programmable prefetcher as well as the
//!   stride/GHB baselines).
//!
//! # Example
//!
//! ```
//! use etpp_mem::{MemoryImage, MemorySystem, MemParams, NullEngine, AccessKind};
//!
//! let mut image = MemoryImage::new();
//! let array = image.alloc(4096, 64);
//! image.write_u64(array, 42);
//!
//! let mut mem = MemorySystem::new(MemParams::default(), image);
//! let mut engine = NullEngine;
//! let token = mem
//!     .try_access(0, array, AccessKind::Load, 0)
//!     .expect("first access cannot be rejected");
//! let mut now = 0;
//! let done = loop {
//!     mem.tick(now, &mut engine);
//!     if let Some(c) = mem.take_completions().iter().find(|c| c.id == token) {
//!         break c.at;
//!     }
//!     now += 1;
//! };
//! assert!(done > 0, "a cold miss takes time");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod cache;
pub mod cancel;
pub mod dram;
pub mod engine;
pub mod fasthash;
pub mod image;
pub mod mshr;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod tlb;

pub use addr::{line_of, offset_in_line, page_of, LINE_SIZE, PAGE_SIZE};
pub use cache::{Cache, CacheParams, Line};
pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use dram::{Dram, DramParams};
pub use engine::{
    ConfigOp, DemandEvent, FilterFlags, NullEngine, PrefetchEngine, PrefetchRequest, RangeId, TagId,
};
pub use fasthash::{FastBuildHasher, FastHashMap, FastHashSet};
pub use image::{MemoryImage, Region};
pub use mshr::{MshrFile, MshrId};
pub use stats::{CacheStats, DramStats, MemStats, TlbStats};
pub use system::{AccessId, AccessKind, Completion, MemParams, MemorySystem, Rejection};
pub use telemetry::{LifecycleCounts, LifecycleTracker, MemTelemetry, PcLifecycle};
pub use tlb::{TlbHierarchy, TlbParams};
