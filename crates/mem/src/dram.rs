//! DDR3-1600 bank/row timing model.
//!
//! Models the paper's `DDR3-1600 11-11-11-28 @ 800MHz` part: eight banks,
//! open-row policy, a shared data bus, and the CL/tRCD/tRP/tRAS timing
//! constraints. Requests to distinct banks overlap; row-buffer hits pay only
//! CAS latency. All times are converted from DRAM-bus cycles to core cycles
//! so the rest of the simulator runs in a single clock domain.
//!
//! This is intentionally simpler than a full DRAM simulator (no refresh, no
//! rank interleaving, FCFS per bank rather than FR-FCFS) — the behaviour the
//! evaluation depends on is (a) ~tens-of-ns latency, (b) bank-level
//! parallelism that rewards overlapped misses, and (c) finite bandwidth that
//! punishes gross over-fetching.

use crate::stats::DramStats;

/// DDR3 timing and geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramParams {
    /// CAS latency in DRAM cycles.
    pub t_cl: u64,
    /// RAS-to-CAS delay in DRAM cycles.
    pub t_rcd: u64,
    /// Row precharge in DRAM cycles.
    pub t_rp: u64,
    /// Row active time in DRAM cycles.
    pub t_ras: u64,
    /// Column-to-column delay in DRAM cycles (back-to-back CAS to an open
    /// row).
    pub t_ccd: u64,
    /// Number of banks.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// DRAM bus cycles to burst one 64-byte line (BL8 on a 64-bit bus = 4).
    pub burst_cycles: u64,
    /// Core cycles per DRAM cycle (3.2 GHz core / 800 MHz bus = 4).
    pub core_cycles_per_dram_cycle: u64,
    /// Fixed controller + interconnect overhead in core cycles each way.
    pub controller_latency: u64,
}

impl DramParams {
    /// The paper's DDR3-1600 11-11-11-28 with a 3.2 GHz core clock.
    pub fn paper() -> Self {
        DramParams {
            t_cl: 11,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_ccd: 4,
            banks: 8,
            row_bytes: 8192,
            burst_cycles: 4,
            core_cycles_per_dram_cycle: 4,
            controller_latency: 10,
        }
    }
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams::paper()
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM device: accepts line requests and returns their completion time.
#[derive(Debug, Clone)]
pub struct Dram {
    params: DramParams,
    banks: Vec<Bank>,
    bus_free_at: u64,
    /// Traffic and row-buffer statistics.
    pub stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM with all rows closed.
    pub fn new(params: DramParams) -> Self {
        Dram {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                params.banks
            ],
            bus_free_at: 0,
            params,
            stats: DramStats::default(),
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    #[inline]
    fn bank_and_row(&self, line_addr: u64) -> (usize, u64) {
        let row_id = line_addr / self.params.row_bytes;
        let bank = (row_id as usize) % self.params.banks;
        let row = row_id / self.params.banks as u64;
        (bank, row)
    }

    /// Issues a line *read* arriving at core-cycle `now`; returns the core
    /// cycle at which the full line is available at the controller.
    pub fn access_read(&mut self, now: u64, line_addr: u64) -> u64 {
        self.stats.reads += 1;
        self.access(now, line_addr)
    }

    /// Issues a line *writeback* arriving at `now`; returns the core cycle at
    /// which the bank is free again (the requester never waits on it).
    pub fn access_write(&mut self, now: u64, line_addr: u64) -> u64 {
        self.stats.writes += 1;
        self.access(now, line_addr)
    }

    fn access(&mut self, now: u64, line_addr: u64) -> u64 {
        let cpd = self.params.core_cycles_per_dram_cycle;
        let (bank_idx, row) = self.bank_and_row(line_addr);
        let bank = &mut self.banks[bank_idx];

        let arrive = now + self.params.controller_latency;
        let start = arrive.max(bank.busy_until);
        if start > arrive {
            self.stats.queue_cycles += start - arrive;
        }

        let (array_cycles, row_hit) = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                (self.params.t_cl, true)
            }
            Some(_) => {
                self.stats.row_misses += 1;
                (
                    self.params.t_rp + self.params.t_rcd + self.params.t_cl,
                    false,
                )
            }
            None => {
                self.stats.row_misses += 1;
                (self.params.t_rcd + self.params.t_cl, false)
            }
        };
        bank.open_row = Some(row);

        let data_ready = start + array_cycles * cpd;
        // The shared data bus serialises bursts.
        let burst_start = data_ready.max(self.bus_free_at);
        if burst_start > data_ready {
            self.stats.queue_cycles += burst_start - data_ready;
        }
        let burst = self.params.burst_cycles * cpd;
        self.bus_free_at = burst_start + burst;
        // Row hits can pipeline at tCCD; activates hold the bank for tRC.
        bank.busy_until = if row_hit {
            start + self.params.t_ccd * cpd
        } else {
            let ras_done = start + self.params.t_ras.saturating_sub(self.params.t_rcd) * cpd;
            (start + self.params.t_ccd * cpd).max(ras_done)
        };

        burst_start + burst + self.params.controller_latency
    }

    /// Idle single-read latency in core cycles (closed row, empty bus).
    pub fn idle_read_latency(&self) -> u64 {
        let p = &self.params;
        2 * p.controller_latency
            + (p.t_rcd + p.t_cl + p.burst_cycles) * p.core_cycles_per_dram_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_latency_is_tens_of_ns() {
        let d = Dram::new(DramParams::paper());
        let lat = d.idle_read_latency();
        // 3.2GHz: 1 cycle = 0.3125ns. Expect roughly 40-60ns => 130-200 cycles.
        assert!(lat > 100 && lat < 250, "idle latency {lat} out of range");
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = Dram::new(DramParams::paper());
        let first = d.access_read(0, 0);
        // Same row, long after the first access completes.
        let t0 = 10_000;
        let hit = d.access_read(t0, 64) - t0;
        // Different row, same bank.
        let t1 = 20_000;
        let row_stride = d.params().row_bytes * d.params().banks as u64;
        let miss = d.access_read(t1, row_stride) - t1;
        assert!(hit < first, "row hit {hit} should beat cold {first}");
        assert!(hit < miss, "row hit {hit} should beat conflict {miss}");
        assert_eq!(d.stats.row_hits, 1);
        assert_eq!(d.stats.row_misses, 2);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(DramParams::paper());
        let a = d.access_read(0, 0);
        let b = d.access_read(0, d.params().row_bytes); // next bank
                                                        // Bank-parallel: b completes well before 2x the single latency.
        assert!(b < a + d.idle_read_latency() / 2);
    }

    #[test]
    fn same_bank_serialises() {
        let mut d = Dram::new(DramParams::paper());
        let row_stride = d.params().row_bytes * d.params().banks as u64;
        let a = d.access_read(0, 0);
        let b = d.access_read(0, 2 * row_stride); // same bank, different row
        assert!(b > a, "bank conflict must serialise ({a} vs {b})");
        assert!(d.stats.queue_cycles > 0);
    }

    #[test]
    fn bus_bounds_bandwidth() {
        let mut d = Dram::new(DramParams::paper());
        // Saturate with many row hits to different banks.
        let mut last = 0;
        for i in 0..64 {
            last = d.access_read(0, i * 64);
        }
        // 64 lines x 16 core cycles of burst = at least 1024 cycles of bus.
        assert!(last >= 64 * 16, "bus must serialise bursts, got {last}");
    }

    #[test]
    fn reads_and_writes_counted() {
        let mut d = Dram::new(DramParams::paper());
        d.access_read(0, 0);
        d.access_write(0, 64);
        assert_eq!(d.stats.reads, 1);
        assert_eq!(d.stats.writes, 1);
        assert_eq!(d.stats.total_accesses(), 2);
    }
}
