//! Miss status holding registers (MSHRs).
//!
//! MSHRs bound the number of outstanding misses per cache and implement miss
//! merging: a second access to an in-flight line attaches to the existing
//! entry instead of issuing a duplicate request. Each entry can also carry a
//! *memory request tag* (§4.7 of the paper) naming the data structure a
//! prefetch targets, so pointer-linked structures trigger the right event
//! kernel when the data returns.

use crate::engine::TagId;

/// Index of an allocated MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(pub usize);

/// A waiter attached to an in-flight miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiter {
    /// A demand access (load or store) identified by its access token.
    Demand(u64),
    /// A prefetch request; carries the precise requested virtual address and
    /// the optional request tag whose kernel runs when data returns.
    Prefetch {
        /// Exact (non-line-aligned) address the kernel asked for.
        vaddr: u64,
        /// Structure tag for pointer-linked data (None = filter-range match).
        tag: Option<TagId>,
        /// Opaque engine metadata carried through the hierarchy (the
        /// programmable prefetcher stores EWMA chain-timing birth stamps).
        meta: u64,
    },
}

#[derive(Debug, Clone)]
struct Entry {
    line_addr: u64,
    valid: bool,
    waiters: Vec<Waiter>,
    /// True while any demand waiter is attached (affects the prefetched bit).
    has_demand: bool,
    /// A store is waiting: the line must be installed dirty.
    dirty_on_fill: bool,
}

/// A fixed-capacity file of MSHR entries.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    in_use: usize,
}

impl MshrFile {
    /// Creates a file with `n` entries.
    pub fn new(n: usize) -> Self {
        MshrFile {
            entries: vec![
                Entry {
                    line_addr: 0,
                    valid: false,
                    waiters: Vec::new(),
                    has_demand: false,
                    dirty_on_fill: false,
                };
                n
            ],
            in_use: 0,
        }
    }

    /// Number of entries currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Number of free entries.
    pub fn free(&self) -> usize {
        self.entries.len() - self.in_use
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Finds the entry tracking `line_addr`, if any.
    pub fn find(&self, line_addr: u64) -> Option<MshrId> {
        self.entries
            .iter()
            .position(|e| e.valid && e.line_addr == line_addr)
            .map(MshrId)
    }

    /// Allocates a new entry for `line_addr` with one initial waiter.
    /// Returns `None` when the file is full.
    ///
    /// # Panics
    /// Panics (debug) if an entry for the line already exists; callers must
    /// merge via [`MshrFile::merge`] instead.
    pub fn allocate(&mut self, line_addr: u64, waiter: Waiter) -> Option<MshrId> {
        debug_assert!(self.find(line_addr).is_none(), "double allocation");
        let idx = self.entries.iter().position(|e| !e.valid)?;
        let e = &mut self.entries[idx];
        e.line_addr = line_addr;
        e.valid = true;
        e.waiters.clear();
        e.has_demand = matches!(waiter, Waiter::Demand(_));
        e.dirty_on_fill = false;
        e.waiters.push(waiter);
        self.in_use += 1;
        Some(MshrId(idx))
    }

    /// Attaches an additional waiter to an existing entry.
    pub fn merge(&mut self, id: MshrId, waiter: Waiter) {
        let e = &mut self.entries[id.0];
        debug_assert!(e.valid);
        if matches!(waiter, Waiter::Demand(_)) {
            e.has_demand = true;
        }
        e.waiters.push(waiter);
    }

    /// Whether any demand waiter is attached to the entry.
    pub fn has_demand(&self, id: MshrId) -> bool {
        self.entries[id.0].has_demand
    }

    /// Marks the entry as store-bound: the line is installed dirty.
    pub fn set_dirty_on_fill(&mut self, id: MshrId) {
        self.entries[id.0].dirty_on_fill = true;
    }

    /// Whether the line must be installed dirty (a store is waiting).
    pub fn dirty_on_fill(&self, id: MshrId) -> bool {
        self.entries[id.0].dirty_on_fill
    }

    /// Line address tracked by the entry.
    pub fn line_addr(&self, id: MshrId) -> u64 {
        self.entries[id.0].line_addr
    }

    /// Releases the entry, returning its waiters for completion delivery.
    pub fn release(&mut self, id: MshrId) -> Vec<Waiter> {
        let e = &mut self.entries[id.0];
        debug_assert!(e.valid);
        e.valid = false;
        self.in_use -= 1;
        std::mem::take(&mut e.waiters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(0x000, Waiter::Demand(1)).is_some());
        assert!(m.allocate(0x040, Waiter::Demand(2)).is_some());
        assert_eq!(m.free(), 0);
        assert!(m.allocate(0x080, Waiter::Demand(3)).is_none());
    }

    #[test]
    fn merge_tracks_demand_bit() {
        let mut m = MshrFile::new(2);
        let id = m
            .allocate(
                0x40,
                Waiter::Prefetch {
                    vaddr: 0x48,
                    tag: None,
                    meta: 0,
                },
            )
            .unwrap();
        assert!(!m.has_demand(id));
        m.merge(id, Waiter::Demand(7));
        assert!(m.has_demand(id));
        let waiters = m.release(id);
        assert_eq!(waiters.len(), 2);
        assert_eq!(m.free(), 2);
    }

    #[test]
    fn release_frees_slot_for_reuse() {
        let mut m = MshrFile::new(1);
        let id = m.allocate(0x40, Waiter::Demand(1)).unwrap();
        m.release(id);
        assert!(m.allocate(0x80, Waiter::Demand(2)).is_some());
    }

    #[test]
    fn find_locates_by_line() {
        let mut m = MshrFile::new(4);
        m.allocate(0x100, Waiter::Demand(1));
        let id = m.find(0x100).expect("present");
        assert_eq!(m.line_addr(id), 0x100);
        assert!(m.find(0x140).is_none());
    }
}
