//! Sparse byte-addressable virtual memory image.
//!
//! Workloads build their real data structures (graphs, hash tables, sparse
//! matrices) inside a [`MemoryImage`], then walk them to generate the
//! instruction trace. During simulation the image serves two purposes:
//!
//! 1. Cache fills read the *actual bytes* of the touched line, so PPU event
//!    kernels compute follow-on prefetch addresses from real data — a wrong
//!    kernel prefetches the wrong addresses, exactly as in hardware.
//! 2. Committed stores update the image, so data structures that mutate
//!    during execution (FIFO queues, visited arrays, RandomAccess batches)
//!    stay current for the prefetcher.

use crate::addr::{page_of, LINE_SIZE, PAGE_SIZE};
use crate::fasthash::FastHashMap;

/// A contiguous virtual allocation returned by [`MemoryImage::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First byte of the region.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Address one past the last byte of the region.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Whether `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Sparse byte-addressable memory with a bump allocator.
///
/// Pages are materialised on first allocation; reading an unmapped address is
/// a simulator bug and panics (debug builds) or returns zero via the checked
/// accessors. Cloning an image snapshots program state cheaply enough for
/// per-run resets (tens of MiB).
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    pages: FastHashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    /// Next free virtual address for `alloc`.
    brk: u64,
}

/// Base of the allocation arena. Nonzero so that null pointers (0) used by
/// linked structures are never valid data addresses.
const ARENA_BASE: u64 = 0x0001_0000;

impl MemoryImage {
    /// Creates an empty image with the allocator at the arena base.
    pub fn new() -> Self {
        MemoryImage {
            pages: FastHashMap::default(),
            brk: ARENA_BASE,
        }
    }

    /// Allocates `len` bytes aligned to `align` (which must be a power of
    /// two), mapping all touched pages. Returns the region.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        self.brk = base + len.max(1);
        let mut page = page_of(base);
        while page < base + len.max(1) {
            self.pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            page += PAGE_SIZE;
        }
        base
    }

    /// Allocates a region of `len` bytes with cache-line alignment.
    pub fn alloc_region(&mut self, len: u64) -> Region {
        let base = self.alloc(len, LINE_SIZE);
        Region { base, len }
    }

    /// Whether the page containing `addr` is mapped.
    #[inline]
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&page_of(addr))
    }

    /// Total number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte. Unmapped addresses read as zero.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&page_of(addr)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte, mapping the page on demand.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(page_of(addr))
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Reads a little-endian `u64`. The access may straddle pages.
    pub fn read_u64(&self, addr: u64) -> u64 {
        if addr % PAGE_SIZE <= PAGE_SIZE - 8 {
            if let Some(p) = self.pages.get(&page_of(addr)) {
                let off = (addr % PAGE_SIZE) as usize;
                return u64::from_le_bytes(p[off..off + 8].try_into().unwrap());
            }
            return 0;
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u64`, mapping pages on demand.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        if addr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let page = self
                .pages
                .entry(page_of(addr))
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            let off = (addr % PAGE_SIZE) as usize;
            page[off..off + 8].copy_from_slice(&val.to_le_bytes());
            return;
        }
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Copies the 64-byte cache line containing `addr` into `buf`.
    pub fn read_line(&self, addr: u64, buf: &mut [u8; LINE_SIZE as usize]) {
        let base = crate::addr::line_of(addr);
        // A line never straddles a page (64 divides 4096).
        match self.pages.get(&page_of(base)) {
            Some(p) => {
                let off = (base % PAGE_SIZE) as usize;
                buf.copy_from_slice(&p[off..off + LINE_SIZE as usize]);
            }
            None => buf.fill(0),
        }
    }

    /// Writes `n` consecutive little-endian `u64`s starting at `addr`.
    pub fn write_u64_slice(&mut self, addr: u64, vals: &[u64]) {
        for (i, v) in vals.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = MemoryImage::new();
        let a = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        let b = m.alloc(100, 4096);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn null_page_is_never_allocated() {
        let mut m = MemoryImage::new();
        let a = m.alloc(8, 8);
        assert!(a >= 0x0001_0000, "allocations avoid the null page");
        assert!(!m.is_mapped(0));
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = MemoryImage::new();
        let a = m.alloc(64, 64);
        m.write_u64(a, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(a), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u32(a), 0xcafe_f00d);
    }

    #[test]
    fn u64_roundtrip_across_page_boundary() {
        let mut m = MemoryImage::new();
        let base = m.alloc(2 * PAGE_SIZE, PAGE_SIZE);
        let addr = base + PAGE_SIZE - 4;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = MemoryImage::new();
        assert_eq!(m.read_u64(0xffff_0000), 0);
        assert_eq!(m.read_u8(12345), 0);
    }

    #[test]
    fn read_line_matches_bytes() {
        let mut m = MemoryImage::new();
        let a = m.alloc(128, 64);
        for i in 0..64u64 {
            m.write_u8(a + i, i as u8);
        }
        let mut buf = [0u8; 64];
        m.read_line(a + 17, &mut buf);
        for (i, b) in buf.iter().enumerate() {
            assert_eq!(*b, i as u8);
        }
    }

    #[test]
    fn region_contains() {
        let r = Region { base: 100, len: 50 };
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert!(!r.contains(99));
        assert_eq!(r.end(), 150);
    }

    #[test]
    fn clone_snapshots_state() {
        let mut m = MemoryImage::new();
        let a = m.alloc(8, 8);
        m.write_u64(a, 1);
        let snap = m.clone();
        m.write_u64(a, 2);
        assert_eq!(snap.read_u64(a), 1);
        assert_eq!(m.read_u64(a), 2);
    }
}
