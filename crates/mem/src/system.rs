//! The memory hierarchy: L1D → L2 → DRAM with TLBs and a prefetch port.
//!
//! [`MemorySystem`] is the single object the CPU core and the prefetch
//! engine interact with. It owns the [`MemoryImage`] (program data), both
//! cache levels with their MSHR files, the DRAM timing model and the TLBs,
//! and it schedules all inter-level transfers on an internal event heap.
//!
//! ## Demand path
//! The core calls [`MemorySystem::try_access`]. A hit completes after the L1
//! hit latency; a miss allocates (or merges into) an L1 MSHR, performs an L2
//! lookup, possibly goes to DRAM, and completes when the fill reaches L1.
//! Rejections ([`Rejection`]) model structural stalls the LSQ must retry.
//!
//! ## Prefetch path
//! Each cycle, while the L1 has free MSHRs (beyond a small demand reserve),
//! the system pops requests from the attached [`PrefetchEngine`], translates
//! them through the shared TLB (dropping faults, per §5.3 of the paper), and
//! injects them. When prefetched data reaches the L1 — or the line is found
//! already resident — the engine receives the actual line contents plus the
//! request's tag and metadata, which is what makes *event-triggered chains*
//! of dependent prefetches possible.

use crate::addr::line_of;
use crate::cache::{Cache, CacheParams, Line, LookupResult};
use crate::dram::{Dram, DramParams};
use crate::engine::{DemandEvent, PrefetchEngine, TagId};
use crate::fasthash::FastHashMap;
use crate::image::MemoryImage;
use crate::mshr::{MshrFile, MshrId, Waiter};
use crate::stats::MemStats;
use crate::telemetry::MemTelemetry;
use crate::tlb::{TlbHierarchy, TlbParams, Translation};
use etpp_telemetry::{SpanEvent, SpanSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Token identifying an in-flight demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessId(pub u64);

/// Kind of demand access from the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load; completion delivers the data's arrival time.
    Load,
    /// A store (write-allocate; completion frees the store buffer entry).
    Store,
}

/// Why an access could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// All L1 MSHRs are busy; retry next cycle.
    MshrFull,
    /// All page-table walker slots are busy; retry next cycle.
    WalkerBusy,
    /// The page is unmapped. Demand accesses treat this as fatal.
    Fault,
}

/// A completed demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Token returned by [`MemorySystem::try_access`].
    pub id: AccessId,
    /// Cycle at which the access completed.
    pub at: u64,
    /// Whether it was an L1 hit (2-cycle load-to-use).
    pub l1_hit: bool,
}

/// Full-hierarchy parameters (Table 1 of the paper by default).
#[derive(Debug, Clone, Copy)]
pub struct MemParams {
    /// L1 data cache geometry/latency.
    pub l1: CacheParams,
    /// L2 cache geometry/latency.
    pub l2: CacheParams,
    /// DRAM timing.
    pub dram: DramParams,
    /// TLB configuration.
    pub tlb: TlbParams,
    /// Core cycles to move a fill between levels (response wiring).
    pub fill_latency: u64,
    /// L1 MSHRs held back from the prefetcher so demand misses are never
    /// fully starved.
    pub pf_mshr_reserve: usize,
    /// Maximum prefetch requests popped from the engine per cycle.
    pub pf_issue_per_cycle: usize,
    /// Prefetch-buffer entries: in-flight prefetches issued towards L2
    /// (§4.6: requests go to the L2; only the final fill touches the L1, so
    /// prefetches do not pin L1 MSHRs for the DRAM round trip).
    pub pf_buffer_entries: usize,
}

impl MemParams {
    /// The paper's Table 1 configuration.
    pub fn paper() -> Self {
        MemParams {
            l1: CacheParams::paper_l1(),
            l2: CacheParams::paper_l2(),
            dram: DramParams::paper(),
            tlb: TlbParams::paper(),
            fill_latency: 2,
            pf_mshr_reserve: 2,
            pf_issue_per_cycle: 1,
            pf_buffer_entries: 32,
        }
    }
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams::paper()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Look the line up in L2 on behalf of an L1 MSHR.
    L2Lookup { l1_mshr: usize, demand: bool },
    /// Look the line up in L2 on behalf of a prefetch-buffer entry.
    PfL2Lookup { line_addr: u64 },
    /// DRAM returned data for an L2 MSHR; fill L2 and forward.
    DramDone { l2_mshr: usize },
    /// Move a line into L1 and release its MSHR.
    L1Fill { l1_mshr: usize },
    /// A prefetch-buffer line reached L1; fill and notify waiters.
    PfBufFill { line_addr: u64 },
    /// A prefetch found its line already in L1; deliver the fill event.
    PfLocalHit {
        vaddr: u64,
        tag: Option<TagId>,
        meta: u64,
    },
    /// Drain the L2-MSHR waiter queue into freed MSHRs. Scheduled (at
    /// most once at a time) when a DRAM return releases an L2 MSHR
    /// while lookups are parked — the event-driven replacement for the
    /// old retry-every-4-cycles polling, which dominated the event heap
    /// under DRAM backlog (15M of 18M events on a Small IntSort sweep).
    L2RetryWake,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct PfFill {
    vaddr: u64,
    line: Line,
    tag: Option<TagId>,
    meta: u64,
}

/// An in-flight prefetch issued towards L2 (not holding an L1 MSHR).
#[derive(Debug, Clone)]
struct PfBufEntry {
    waiters: Vec<Waiter>,
    has_demand: bool,
    dirty_on_fill: bool,
}

/// The complete simulated memory hierarchy.
#[derive(Debug)]
pub struct MemorySystem {
    params: MemParams,
    image: MemoryImage,
    l1: Cache,
    l2: Cache,
    l1_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    dram: Dram,
    tlb: TlbHierarchy,
    events: BinaryHeap<Reverse<Ev>>,
    pf_buffer: FastHashMap<u64, PfBufEntry>,
    /// Lookups parked because every L2 MSHR was held: woken in FIFO
    /// order by `L2RetryWake` instead of polling on the event heap.
    l2_waiters: std::collections::VecDeque<EvKind>,
    /// Whether an `L2RetryWake` is already on the heap.
    l2_wake_scheduled: bool,
    /// The last engine round found the prefetch buffer full, so the
    /// engine horizon was computed without its pop-queue component
    /// ([`PrefetchEngine::next_tick_at`]); the `PfBufFill` that frees a
    /// slot re-arms the round at its own cycle.
    pf_pop_wait: bool,
    next_seq: u64,
    next_access: u64,
    completions: Vec<Completion>,
    /// Cached `min(completions[..].at)` (`u64::MAX` when empty), so the
    /// per-iteration fast-forward horizon needs no scan.
    completions_min: u64,
    demand_events: Vec<DemandEvent>,
    pf_fills: Vec<PfFill>,
    prefetch_drops: u64,
    prefetch_l1_redundant: u64,
    prefetches_issued: u64,
    /// Cycle at which the attached engine next needs its tick/pop calls
    /// (the engine's event horizon, cached from the last engine round).
    /// `u64::MAX` = quiescent until the next delivery wakes it.
    engine_wake: u64,
    /// When `false`, the engine is called every tick regardless of its
    /// horizon — the pre-batching reference behaviour, used by the
    /// event-horizon equivalence tests.
    engine_batching: bool,
    /// Optional observability collector. `None` (the default) keeps
    /// every hook to a single pointer null-check; when attached, the
    /// collector only *reads* hierarchy state, so simulated timing and
    /// statistics are bit-identical either way (pinned by the
    /// equivalence suite).
    tel: Option<Box<MemTelemetry>>,
    /// Optional cooperative-cancellation token, polled once per
    /// [`MemorySystem::advance_to`] entry (never per internal tick).
    /// `None` (the default) keeps the hook to one null-check; a token
    /// that never fires changes nothing — same discipline as `tel`.
    cancel: Option<crate::cancel::CancelToken>,
    /// `advance_to` entries since attachment, striding the (syscall-
    /// backed) deadline poll to every 64th entry.
    cancel_polls: u64,
}

impl MemorySystem {
    /// Builds the hierarchy around an existing memory image.
    pub fn new(params: MemParams, image: MemoryImage) -> Self {
        MemorySystem {
            l1: Cache::new(params.l1),
            l2: Cache::new(params.l2),
            l1_mshrs: MshrFile::new(params.l1.mshrs),
            l2_mshrs: MshrFile::new(params.l2.mshrs),
            dram: Dram::new(params.dram),
            tlb: TlbHierarchy::new(params.tlb),
            events: BinaryHeap::new(),
            pf_buffer: FastHashMap::default(),
            l2_waiters: std::collections::VecDeque::new(),
            l2_wake_scheduled: false,
            pf_pop_wait: false,
            next_seq: 0,
            next_access: 0,
            completions: Vec::new(),
            completions_min: u64::MAX,
            demand_events: Vec::new(),
            pf_fills: Vec::new(),
            prefetch_drops: 0,
            prefetch_l1_redundant: 0,
            prefetches_issued: 0,
            engine_wake: 0,
            engine_batching: true,
            tel: None,
            cancel: None,
            cancel_polls: 0,
            params,
            image,
        }
    }

    /// Attaches (or detaches, with `None`) a cooperative-cancellation
    /// token. [`MemorySystem::advance_to`] polls it at entry — visit
    /// granularity, never per cycle — and aborts the run by raising the
    /// token's [`crate::cancel::Cancelled`] payload once it fires.
    pub fn set_cancel(&mut self, token: Option<crate::cancel::CancelToken>) {
        self.cancel = token;
        self.cancel_polls = 0;
    }

    /// Attaches an observability collector. See [`MemTelemetry::new`].
    pub fn enable_telemetry(&mut self, record_spans: bool, span_cap: usize) {
        self.tel = Some(Box::new(MemTelemetry::new(record_spans, span_cap)));
    }

    /// The attached collector, if telemetry is enabled.
    pub fn telemetry(&self) -> Option<&MemTelemetry> {
        self.tel.as_deref()
    }

    /// Detaches and finalizes the collector: unresolved evicted-unused
    /// prefetches become *useless*, and the still-in-flight /
    /// still-resident populations are filled in from the hierarchy's
    /// own accounting.
    pub fn take_telemetry(&mut self) -> Option<Box<MemTelemetry>> {
        let mut tel = self.tel.take()?;
        let inflight = self.pf_buffer.len() as u64;
        let s = &self.l1.stats;
        let resident = s
            .prefetch_fills
            .saturating_sub(s.prefetches_used + s.prefetches_unused);
        tel.lifecycle.finalize(inflight, resident);
        Some(tel)
    }

    /// Parameters in use.
    pub fn params(&self) -> &MemParams {
        &self.params
    }

    /// Read-only view of the program's memory image.
    pub fn image(&self) -> &MemoryImage {
        &self.image
    }

    /// Mutable access to the image (the core commits store data here).
    pub fn image_mut(&mut self) -> &mut MemoryImage {
        &mut self.image
    }

    /// Number of free L1 MSHRs.
    pub fn l1_mshrs_free(&self) -> usize {
        self.l1_mshrs.free()
    }

    /// Whether a fetch of `vaddr`'s line is currently in flight (demand
    /// MSHR or prefetch buffer). Trace replay uses this to model the store
    /// buffer: the cycle core drains a store only after the same-line load
    /// that preceded it has completed.
    pub fn line_in_flight(&self, vaddr: u64) -> bool {
        let line = line_of(vaddr);
        self.l1_mshrs.find(line).is_some() || self.pf_buffer.contains_key(&line)
    }

    /// Attempts a demand access at cycle `now`.
    ///
    /// On success the access will appear in [`MemorySystem::take_completions`]
    /// at its completion cycle. On `Err`, the caller must retry (or, for
    /// [`Rejection::Fault`], treat it as a simulated segfault).
    ///
    /// # Errors
    /// [`Rejection::MshrFull`] / [`Rejection::WalkerBusy`] are structural
    /// stalls; [`Rejection::Fault`] means the page is unmapped.
    pub fn try_access(
        &mut self,
        now: u64,
        vaddr: u64,
        kind: AccessKind,
        pc: u32,
    ) -> Result<AccessId, Rejection> {
        let line = line_of(vaddr);
        // Structural check first so rejected accesses have no side effects
        // beyond TLB warming.
        let present = self.l1.contains(line);
        let existing = self.l1_mshrs.find(line);
        if !present
            && existing.is_none()
            && self.l1_mshrs.free() == 0
            && !self.pf_buffer.contains_key(&line)
        {
            return Err(Rejection::MshrFull);
        }
        let mapped = self.image.is_mapped(vaddr);
        let tlb_latency = match self.tlb.translate(now, vaddr, mapped) {
            Translation::Ready { latency } => latency,
            Translation::WalkerBusy => return Err(Rejection::WalkerBusy),
            Translation::Fault => return Err(Rejection::Fault),
        };

        let id = AccessId(self.next_access);
        self.next_access += 1;
        let is_write = kind == AccessKind::Store;

        let result = self.l1.lookup_demand(line);
        let hit = matches!(result, LookupResult::Hit { .. });
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.mshr_occupancy.record(self.l1_mshrs.in_use() as u64);
            tel.issue_at.insert(id.0, now);
            // A touch of a line whose prefetch was evicted unused
            // resolves that prefetch to *early-evicted*.
            tel.lifecycle.on_demand_touch(line);
            if result
                == (LookupResult::Hit {
                    was_prefetched: true,
                })
            {
                tel.lifecycle.on_accurate(pc);
            }
        }
        match kind {
            AccessKind::Load => {
                if hit {
                    self.l1.stats.read_hits += 1;
                } else {
                    self.l1.stats.read_misses += 1;
                }
            }
            AccessKind::Store => {
                if hit {
                    self.l1.stats.write_hits += 1;
                } else {
                    self.l1.stats.write_misses += 1;
                }
            }
        }
        self.demand_events.push(DemandEvent {
            at: now,
            vaddr,
            pc,
            is_write,
            l1_hit: hit,
        });

        if hit {
            if is_write {
                self.l1.mark_dirty(line);
            }
            self.push_completion(Completion {
                id,
                at: now + self.params.l1.hit_latency + tlb_latency,
                l1_hit: true,
            });
            return Ok(id);
        }

        match existing {
            Some(mshr) => {
                if !self.l1_mshrs.has_demand(mshr) {
                    self.l1.stats.late_prefetch_merges += 1;
                    if let Some(tel) = self.tel.as_deref_mut() {
                        tel.lifecycle.on_late(pc);
                    }
                }
                if is_write {
                    self.l1_mshrs.set_dirty_on_fill(mshr);
                }
                self.l1_mshrs.merge(mshr, Waiter::Demand(id.0));
            }
            None => {
                if let Some(entry) = self.pf_buffer.get_mut(&line) {
                    // The line is already on its way thanks to a prefetch:
                    // attach to it (a late but still useful prefetch).
                    if !entry.has_demand {
                        self.l1.stats.late_prefetch_merges += 1;
                        entry.has_demand = true;
                        if let Some(tel) = self.tel.as_deref_mut() {
                            tel.lifecycle.on_late(pc);
                        }
                    }
                    entry.dirty_on_fill |= is_write;
                    entry.waiters.push(Waiter::Demand(id.0));
                    return Ok(id);
                }
                let mshr = self
                    .l1_mshrs
                    .allocate(line, Waiter::Demand(id.0))
                    .expect("free MSHR checked above");
                if is_write {
                    self.l1_mshrs.set_dirty_on_fill(mshr);
                }
                self.schedule(
                    now + self.params.l1.hit_latency + tlb_latency,
                    EvKind::L2Lookup {
                        l1_mshr: mshr.0,
                        demand: true,
                    },
                );
            }
        }
        Ok(id)
    }

    /// Issues a software-prefetch instruction from the core. Completes
    /// immediately from the core's point of view; fills are marked as
    /// prefetches for utilisation accounting. Faults are silently dropped
    /// (software prefetch semantics).
    ///
    /// # Errors
    /// [`Rejection::MshrFull`] when the prefetch cannot allocate an MSHR;
    /// the LSQ may retry or drop it.
    pub fn try_software_prefetch(&mut self, now: u64, vaddr: u64) -> Result<(), Rejection> {
        let line = line_of(vaddr);
        if self.l1.contains(line) {
            if let Some(tel) = self.tel.as_deref_mut() {
                tel.lifecycle.on_issued();
                tel.lifecycle.on_redundant();
            }
            return Ok(()); // already present: no-op
        }
        if self.l1_mshrs.find(line).is_some() {
            return Ok(()); // already in flight: merge is free for swpf
        }
        if self.l1_mshrs.free() == 0 {
            return Err(Rejection::MshrFull);
        }
        let mapped = self.image.is_mapped(vaddr);
        let tlb_latency = match self.tlb.translate(now, vaddr, mapped) {
            Translation::Ready { latency } => latency,
            Translation::WalkerBusy => return Err(Rejection::WalkerBusy),
            Translation::Fault => {
                if let Some(tel) = self.tel.as_deref_mut() {
                    tel.lifecycle.on_issued();
                    tel.lifecycle.on_dropped();
                }
                return Ok(()); // dropped silently
            }
        };
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.lifecycle.on_issued();
        }
        let mshr = self
            .l1_mshrs
            .allocate(
                line,
                Waiter::Prefetch {
                    vaddr,
                    tag: None,
                    meta: u64::MAX, // sentinel: software prefetch, no engine callback
                },
            )
            .expect("free MSHR checked above");
        self.schedule(
            now + self.params.l1.hit_latency + tlb_latency,
            EvKind::L2Lookup {
                l1_mshr: mshr.0,
                demand: false,
            },
        );
        Ok(())
    }

    #[inline]
    fn push_completion(&mut self, c: Completion) {
        if let Some(tel) = self.tel.as_deref_mut() {
            if let Some(t0) = tel.issue_at.remove(&c.id.0) {
                tel.load_latency.record(c.at - t0);
            }
        }
        self.completions_min = self.completions_min.min(c.at);
        self.completions.push(c);
    }

    /// Drains demand accesses whose completion time has been reached.
    pub fn take_completions_due(&mut self, now: u64) -> Vec<Completion> {
        let mut due = Vec::new();
        self.drain_completions_due(now, &mut due);
        due
    }

    /// Like [`Self::take_completions_due`], but appends into a
    /// caller-owned buffer so per-cycle drivers avoid the allocation.
    pub fn drain_completions_due(&mut self, now: u64, due: &mut Vec<Completion>) {
        if now < self.completions_min {
            return;
        }
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.completions.len() {
            if self.completions[i].at <= now {
                due.push(self.completions.swap_remove(i));
            } else {
                min = min.min(self.completions[i].at);
                i += 1;
            }
        }
        self.completions_min = min;
    }

    /// Drains all completions regardless of time (tests only).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        self.completions_min = u64::MAX;
        std::mem::take(&mut self.completions)
    }

    /// Advances the hierarchy to cycle `now`: processes due transfers, then
    /// feeds the engine (fills first, then snooped demand events, then its
    /// tick), then issues engine prefetch requests into free MSHRs.
    ///
    /// The engine round is *batched by event horizon*: it only runs when
    /// there is something to deliver or the engine's own
    /// [`PrefetchEngine::next_event_at`] says it has pending work. At
    /// every skipped cycle the engine's contract guarantees tick would
    /// be a no-op and `pop_request` would return `None`, so the skip is
    /// behaviour-preserving (enforced by the equivalence test suite).
    pub fn tick(&mut self, now: u64, engine: &mut dyn PrefetchEngine) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > now {
                break;
            }
            let ev = self.events.pop().expect("peeked").0;
            self.process(ev, engine);
        }

        if self.engine_batching
            && now < self.engine_wake
            && self.pf_fills.is_empty()
            && self.demand_events.is_empty()
        {
            return;
        }

        self.record_span("engine_round", now, 0, SpanSink::LANE_ENGINE);

        // Deliver by draining in place (the engine cannot reach back
        // into these queues), keeping each buffer's capacity instead of
        // reallocating it on every delivery round.
        let mut fills = std::mem::take(&mut self.pf_fills);
        for f in fills.drain(..) {
            engine.on_prefetch_fill(now, f.vaddr, &f.line, f.tag, f.meta);
        }
        self.pf_fills = fills;
        let mut demands = std::mem::take(&mut self.demand_events);
        for d in demands.drain(..) {
            engine.on_demand(now, &d);
        }
        self.demand_events = demands;
        engine.tick(now);

        for _ in 0..self.params.pf_issue_per_cycle {
            if self.pf_buffer.len() >= self.params.pf_buffer_entries {
                break;
            }
            let Some(req) = engine.pop_request(now) else {
                break;
            };
            self.inject_prefetch(now, req.vaddr, req.tag, req.meta);
        }

        // A full prefetch buffer gates pops no matter what the engine
        // holds, so its pop-queue component must not pin the horizon to
        // the next cycle: only genuinely internal engine work needs
        // rounds until a slot frees. The `PfBufFill` that frees one is
        // already on the event heap and re-arms the round at its exact
        // cycle via `pf_pop_wait` — wake-on-slot-free instead of the
        // old per-cycle pop polling under backlog.
        let pf_buffer_full = self.pf_buffer.len() >= self.params.pf_buffer_entries;
        self.pf_pop_wait = pf_buffer_full;
        self.engine_wake = if pf_buffer_full {
            engine.next_tick_at(now)
        } else {
            engine.next_event_at(now)
        }
        .unwrap_or(u64::MAX);
    }

    fn inject_prefetch(&mut self, now: u64, vaddr: u64, tag: Option<TagId>, meta: u64) {
        self.prefetches_issued += 1;
        let line = line_of(vaddr);
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.lifecycle.on_issued();
            tel.pf_buf_depth.record(self.pf_buffer.len() as u64);
        }
        let mapped = self.image.is_mapped(vaddr);
        let tlb_latency = match self.tlb.translate(now, vaddr, mapped) {
            Translation::Ready { latency } => latency,
            Translation::WalkerBusy | Translation::Fault => {
                self.prefetch_drops += 1;
                if let Some(tel) = self.tel.as_deref_mut() {
                    tel.lifecycle.on_dropped();
                }
                return;
            }
        };
        if self.l1.contains(line) {
            // Already resident: the chain must still continue, so deliver
            // the fill event with the resident data after a short delay.
            self.prefetch_l1_redundant += 1;
            if let Some(tel) = self.tel.as_deref_mut() {
                tel.lifecycle.on_redundant();
            }
            self.schedule(
                now + self.params.l1.hit_latency + tlb_latency,
                EvKind::PfLocalHit { vaddr, tag, meta },
            );
            return;
        }
        if let Some(mshr) = self.l1_mshrs.find(line) {
            // A demand miss is already fetching this line; ride along so the
            // engine still sees the fill (chains must continue).
            if self.l1_mshrs.has_demand(mshr) {
                if let Some(tel) = self.tel.as_deref_mut() {
                    tel.lifecycle.on_merged_demand();
                }
            }
            self.l1_mshrs
                .merge(mshr, Waiter::Prefetch { vaddr, tag, meta });
            return;
        }
        if let Some(entry) = self.pf_buffer.get_mut(&line) {
            entry.waiters.push(Waiter::Prefetch { vaddr, tag, meta });
            return;
        }
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.pf_born.insert(line, now);
        }
        self.pf_buffer.insert(
            line,
            PfBufEntry {
                waiters: vec![Waiter::Prefetch { vaddr, tag, meta }],
                has_demand: false,
                dirty_on_fill: false,
            },
        );
        self.schedule(
            now + self.params.l1.hit_latency + tlb_latency,
            EvKind::PfL2Lookup { line_addr: line },
        );
    }

    fn process(&mut self, ev: Ev, _engine: &mut dyn PrefetchEngine) {
        let now = ev.at;
        match ev.kind {
            EvKind::L2Lookup { l1_mshr, demand } => {
                let line = self.l1_mshrs.line_addr(MshrId(l1_mshr));
                let hit = matches!(self.l2.lookup_demand(line), LookupResult::Hit { .. });
                if demand {
                    if hit {
                        self.l2.stats.read_hits += 1;
                    } else {
                        self.l2.stats.read_misses += 1;
                    }
                } else if hit {
                    self.l2.stats.pf_lookup_hits += 1;
                } else {
                    self.l2.stats.pf_lookup_misses += 1;
                }
                if hit {
                    self.schedule(now + self.params.l2.hit_latency, EvKind::L1Fill { l1_mshr });
                } else if let Some(l2_mshr) = self.l2_mshrs.find(line) {
                    self.l2_mshrs.merge(l2_mshr, Waiter::Demand(l1_mshr as u64));
                } else if let Some(l2_mshr) =
                    self.l2_mshrs.allocate(line, Waiter::Demand(l1_mshr as u64))
                {
                    let start = now + self.params.l2.hit_latency;
                    let done = self.dram.access_read(start, line);
                    self.record_span("dram:demand", start, done - start, SpanSink::LANE_DRAM);
                    self.schedule(done, EvKind::DramDone { l2_mshr: l2_mshr.0 });
                } else {
                    // L2 MSHRs exhausted: park until a DRAM return
                    // frees one (no polling).
                    self.l2_waiters
                        .push_back(EvKind::L2Lookup { l1_mshr, demand });
                }
            }
            EvKind::PfL2Lookup { line_addr } => {
                let hit = matches!(self.l2.lookup_demand(line_addr), LookupResult::Hit { .. });
                if hit {
                    self.l2.stats.pf_lookup_hits += 1;
                    self.schedule(
                        now + self.params.l2.hit_latency,
                        EvKind::PfBufFill { line_addr },
                    );
                } else {
                    self.l2.stats.pf_lookup_misses += 1;
                    if let Some(l2_mshr) = self.l2_mshrs.find(line_addr) {
                        self.l2_mshrs.merge(
                            l2_mshr,
                            Waiter::Prefetch {
                                vaddr: line_addr,
                                tag: None,
                                meta: 0,
                            },
                        );
                    } else if let Some(l2_mshr) = self.l2_mshrs.allocate(
                        line_addr,
                        Waiter::Prefetch {
                            vaddr: line_addr,
                            tag: None,
                            meta: 0,
                        },
                    ) {
                        let start = now + self.params.l2.hit_latency;
                        let done = self.dram.access_read(start, line_addr);
                        self.record_span("dram:pf", start, done - start, SpanSink::LANE_DRAM);
                        self.schedule(done, EvKind::DramDone { l2_mshr: l2_mshr.0 });
                    } else {
                        self.l2_waiters.push_back(EvKind::PfL2Lookup { line_addr });
                    }
                }
            }
            EvKind::DramDone { l2_mshr } => {
                if !self.l2_waiters.is_empty() && !self.l2_wake_scheduled {
                    // The release below frees an MSHR: wake parked
                    // lookups next cycle (one wake drains greedily).
                    self.l2_wake_scheduled = true;
                    self.schedule(now + 1, EvKind::L2RetryWake);
                }
                let line = self.l2_mshrs.line_addr(MshrId(l2_mshr));
                if let Some(evicted) = self.l2.fill(line, false, false) {
                    if evicted.dirty {
                        self.dram.access_write(now, evicted.line_addr);
                    }
                }
                for w in self.l2_mshrs.release(MshrId(l2_mshr)) {
                    match w {
                        Waiter::Demand(l1_mshr) => {
                            self.schedule(
                                now + self.params.fill_latency,
                                EvKind::L1Fill {
                                    l1_mshr: l1_mshr as usize,
                                },
                            );
                        }
                        // Prefetch-buffer origin: `vaddr` holds the line.
                        Waiter::Prefetch { vaddr, .. } => {
                            self.schedule(
                                now + self.params.fill_latency,
                                EvKind::PfBufFill { line_addr: vaddr },
                            );
                        }
                    }
                }
            }
            EvKind::L1Fill { l1_mshr } => {
                let id = MshrId(l1_mshr);
                let line = self.l1_mshrs.line_addr(id);
                let prefetched = !self.l1_mshrs.has_demand(id);
                let dirty = self.l1_mshrs.dirty_on_fill(id);
                self.record_span(
                    if prefetched { "fill:pf" } else { "fill:demand" },
                    now,
                    0,
                    SpanSink::LANE_FILLS,
                );
                if let Some(evicted) = self.l1.fill(line, prefetched, dirty) {
                    if evicted.unused_prefetch {
                        if let Some(tel) = self.tel.as_deref_mut() {
                            tel.lifecycle.on_evicted_unused(evicted.line_addr);
                        }
                    }
                    if evicted.dirty {
                        // Write back into L2 (allocate on writeback miss).
                        if self.l2.contains(evicted.line_addr) {
                            self.l2.mark_dirty(evicted.line_addr);
                        } else if let Some(l2_ev) = self.l2.fill(evicted.line_addr, false, true) {
                            if l2_ev.dirty {
                                self.dram.access_write(now, l2_ev.line_addr);
                            }
                        }
                    }
                }
                let mut line_data: Option<Line> = None;
                for w in self.l1_mshrs.release(id) {
                    match w {
                        Waiter::Demand(token) => {
                            self.push_completion(Completion {
                                id: AccessId(token),
                                at: now + 1,
                                l1_hit: false,
                            });
                        }
                        Waiter::Prefetch { vaddr, tag, meta } => {
                            if meta == u64::MAX && tag.is_none() {
                                continue; // software prefetch: no callback
                            }
                            let data = *line_data.get_or_insert_with(|| {
                                let mut buf = [0u8; 64];
                                self.image.read_line(line, &mut buf);
                                buf
                            });
                            self.pf_fills.push(PfFill {
                                vaddr,
                                line: data,
                                tag,
                                meta,
                            });
                        }
                    }
                }
            }
            EvKind::PfBufFill { line_addr } => {
                let Some(entry) = self.pf_buffer.remove(&line_addr) else {
                    return; // dropped (e.g. context switch)
                };
                if self.pf_pop_wait {
                    // A slot just freed while a backlogged engine was
                    // parked on the full buffer: resume the pop round
                    // at this very cycle, as per-cycle ticking would.
                    self.pf_pop_wait = false;
                    self.engine_wake = now;
                }
                let prefetched = !entry.has_demand;
                if let Some(tel) = self.tel.as_deref_mut() {
                    if let Some(born) = tel.pf_born.remove(&line_addr) {
                        tel.pf_buf_residency.record(now - born);
                    }
                }
                self.record_span(
                    if prefetched { "fill:pf" } else { "fill:demand" },
                    now,
                    0,
                    SpanSink::LANE_FILLS,
                );
                if let Some(evicted) = self.l1.fill(line_addr, prefetched, entry.dirty_on_fill) {
                    if evicted.unused_prefetch {
                        if let Some(tel) = self.tel.as_deref_mut() {
                            tel.lifecycle.on_evicted_unused(evicted.line_addr);
                        }
                    }
                    if evicted.dirty {
                        if self.l2.contains(evicted.line_addr) {
                            self.l2.mark_dirty(evicted.line_addr);
                        } else if let Some(l2_ev) = self.l2.fill(evicted.line_addr, false, true) {
                            if l2_ev.dirty {
                                self.dram.access_write(now, l2_ev.line_addr);
                            }
                        }
                    }
                }
                let mut line_data: Option<Line> = None;
                for w in entry.waiters {
                    match w {
                        Waiter::Demand(token) => {
                            self.push_completion(Completion {
                                id: AccessId(token),
                                at: now + 1,
                                l1_hit: false,
                            });
                        }
                        Waiter::Prefetch { vaddr, tag, meta } => {
                            if meta == u64::MAX && tag.is_none() {
                                continue; // software prefetch: no callback
                            }
                            let data = *line_data.get_or_insert_with(|| {
                                let mut buf = [0u8; 64];
                                self.image.read_line(line_addr, &mut buf);
                                buf
                            });
                            self.pf_fills.push(PfFill {
                                vaddr,
                                line: data,
                                tag,
                                meta,
                            });
                        }
                    }
                }
            }
            EvKind::PfLocalHit { vaddr, tag, meta } => {
                let mut buf = [0u8; 64];
                self.image.read_line(line_of(vaddr), &mut buf);
                self.pf_fills.push(PfFill {
                    vaddr,
                    line: buf,
                    tag,
                    meta,
                });
            }
            EvKind::L2RetryWake => {
                self.l2_wake_scheduled = false;
                // Re-run parked lookups while MSHRs are free. A lookup
                // that hits (or merges) consumes no MSHR, so the drain
                // is greedy; anything still parked when MSHRs run out
                // again is woken by the next DRAM return.
                while !self.l2_waiters.is_empty() && self.l2_mshrs.free() > 0 {
                    let kind = self.l2_waiters.pop_front().expect("checked non-empty");
                    self.next_seq += 1;
                    let ev = Ev {
                        at: now,
                        seq: self.next_seq,
                        kind,
                    };
                    self.process(ev, _engine);
                }
            }
        }
    }

    #[inline]
    fn record_span(&mut self, name: &'static str, ts: u64, dur: u64, tid: u32) {
        if let Some(tel) = self.tel.as_deref_mut() {
            if tel.record_spans {
                tel.spans.push(SpanEvent { name, ts, dur, tid });
            }
        }
    }

    fn schedule(&mut self, at: u64, kind: EvKind) {
        self.next_seq += 1;
        self.events.push(Reverse(Ev {
            at,
            seq: self.next_seq,
            kind,
        }));
    }

    /// The core writes committed store data straight into the image so that
    /// prefetch kernels observe current program state.
    pub fn commit_store_data(&mut self, vaddr: u64, value: u64, size: u8) {
        match size {
            1 => self.image.write_u8(vaddr, value as u8),
            4 => self.image.write_u32(vaddr, value as u32),
            _ => self.image.write_u64(vaddr, value),
        }
    }

    /// Earliest pending internal event, for idle fast-forwarding.
    pub fn next_event_at(&self) -> Option<u64> {
        self.events.peek().map(|Reverse(e)| e.at)
    }

    /// Whether a demand access to `vaddr` would be rejected with
    /// [`Rejection::MshrFull`] right now: the line is not resident, no
    /// MSHR or prefetch-buffer entry is already fetching it, and the
    /// L1 MSHR file has no free slot. This mirrors the structural check
    /// [`MemorySystem::try_access`] performs *before* any side effect
    /// (the TLB is not touched), so while it holds — and it can only
    /// change at an internal event, engine round or delivery — retrying
    /// the access is a provable no-op the core may park on a wake
    /// instead of re-polling every cycle.
    pub fn demand_would_bounce(&self, vaddr: u64) -> bool {
        let line = line_of(vaddr);
        !self.l1.contains(line)
            && self.l1_mshrs.find(line).is_none()
            && self.l1_mshrs.free() == 0
            && !self.pf_buffer.contains_key(&line)
    }

    /// The hierarchy's *top-level event horizon*: the earliest cycle at
    /// which anything inside it can change — a scheduled transfer (DRAM
    /// return, cache fill, MSHR wake), a demand completion falling due,
    /// the attached engine's cached horizon, or a pending engine
    /// delivery (which lands at the very next tick). `None` means the
    /// hierarchy is quiescent until the next demand access or config.
    ///
    /// Drivers fold this with the core's horizon
    /// (`etpp_cpu::Core::next_event_at`) and jump the clock to the min;
    /// skipping every cycle strictly before it is behaviour-preserving.
    pub fn next_horizon(&self, now: u64) -> Option<u64> {
        let mut next = u64::MAX;
        if let Some(Reverse(e)) = self.events.peek() {
            next = next.min(e.at);
        }
        next = next.min(self.completions_min);
        if self.engine_batching {
            next = next.min(self.engine_wake);
        } else {
            next = next.min(now + 1);
        }
        if self.deliveries_pending() {
            next = next.min(now + 1);
        }
        (next != u64::MAX).then(|| next.max(now + 1))
    }

    /// Advances the hierarchy from `now` up to (at most) cycle `to`,
    /// running every intermediate engine round and internal transfer at
    /// its exact cycle — precisely as per-cycle [`MemorySystem::tick`]
    /// calls would — without handing control back to the caller.
    /// Prefetch pops are *bulk-injected*: a backlogged engine drains
    /// `pf_issue_per_cycle` requests at each intermediate cycle with
    /// correct per-cycle timestamps, so driver-level fast-forward jumps
    /// are no longer capped to one visited cycle per pop.
    ///
    /// Returns the next cycle the caller must visit: `to`, or earlier
    /// if a demand completion fell due first (the core must absorb it
    /// the moment it lands), or `last + 1` once the hierarchy goes
    /// fully quiescent with no bound in sight (`to == u64::MAX`). The
    /// caller's precondition is that *it* has nothing to do before `to`
    /// and has already ticked cycle `now`.
    pub fn advance_to(&mut self, now: u64, to: u64, engine: &mut dyn PrefetchEngine) -> u64 {
        if let Some(token) = &self.cancel {
            self.cancel_polls += 1;
            if self.cancel_polls & 63 == 0 {
                token.check(now);
            }
        }
        let mut t = now;
        loop {
            // A demand completion hands control straight back: the core
            // absorbs it at exactly the cycle it falls due.
            let stop = to.min(self.completions_min);
            let mut next = u64::MAX;
            if let Some(Reverse(e)) = self.events.peek() {
                next = next.min(e.at);
            }
            if self.engine_batching {
                next = next.min(self.engine_wake);
            } else {
                next = next.min(t + 1);
            }
            if self.deliveries_pending() {
                next = next.min(t + 1);
            }
            if next == u64::MAX {
                // Fully quiescent: nothing mem-side before `stop`.
                return if stop == u64::MAX {
                    (t + 1).max(now + 1)
                } else {
                    stop.max(now + 1)
                };
            }
            let next = next.max(t + 1);
            if next >= stop {
                return stop.max(now + 1);
            }
            t = next;
            self.tick(t, engine);
        }
    }

    /// The attached engine's cached event horizon: the earliest cycle
    /// at which the engine needs its tick/pop round. Valid until the
    /// engine is mutated behind the system's back (call
    /// [`MemorySystem::wake_engine`] after doing that). `None` =
    /// quiescent until the next delivery.
    pub fn engine_next_at(&self) -> Option<u64> {
        (self.engine_wake != u64::MAX).then_some(self.engine_wake)
    }

    /// Whether snooped demand events or prefetch fills are waiting to be
    /// delivered to the engine at the next tick. Fast-forwarding callers
    /// must not skip past that delivery cycle: the engine reacts to it
    /// (enqueuing observations or requests) exactly one cycle after the
    /// access, as it would under per-cycle ticking.
    pub fn deliveries_pending(&self) -> bool {
        !self.demand_events.is_empty() || !self.pf_fills.is_empty()
    }

    /// Invalidates the cached engine horizon. Must be called after the
    /// engine is mutated outside [`MemorySystem::tick`] — e.g. when the
    /// core executes a configuration instruction directly — so the next
    /// tick re-runs the engine round unconditionally.
    pub fn wake_engine(&mut self) {
        self.engine_wake = 0;
    }

    /// Disables engine-horizon batching: the engine round runs on every
    /// tick, as before the event-horizon scheduler. Reference behaviour
    /// for the equivalence tests; measurably slower.
    pub fn set_engine_batching(&mut self, on: bool) {
        self.engine_batching = on;
        if !on {
            self.engine_wake = 0;
        }
    }

    /// Earliest pending demand completion, for idle fast-forwarding.
    pub fn next_completion_at(&self) -> Option<u64> {
        (self.completions_min != u64::MAX).then_some(self.completions_min)
    }

    /// Consumes the hierarchy, returning the final memory image (used by
    /// trace replay to validate post-run checksums).
    pub fn into_image(self) -> MemoryImage {
        self.image
    }

    /// Whether any transfer is still in flight.
    pub fn busy(&self) -> bool {
        !self.events.is_empty()
            || !self.completions.is_empty()
            || !self.pf_fills.is_empty()
            || !self.pf_buffer.is_empty()
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1: self.l1.stats,
            l2: self.l2.stats,
            dram: self.dram.stats,
            tlb: self.tlb.stats,
            prefetch_drops: self.prefetch_drops,
            prefetch_l1_redundant: self.prefetch_l1_redundant,
            prefetches_issued: self.prefetches_issued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullEngine;

    fn setup() -> (MemorySystem, u64) {
        let mut image = MemoryImage::new();
        let base = image.alloc(1 << 20, 64);
        for i in 0..(1 << 17) {
            image.write_u64(base + 8 * i, i);
        }
        (MemorySystem::new(MemParams::paper(), image), base)
    }

    fn run_until_complete(mem: &mut MemorySystem, id: AccessId, start: u64) -> Completion {
        let mut engine = NullEngine;
        for now in start..start + 10_000 {
            mem.tick(now, &mut engine);
            if let Some(c) = mem.take_completions().into_iter().find(|c| c.id == id) {
                return c;
            }
        }
        panic!("access never completed");
    }

    #[test]
    fn cold_miss_then_warm_hit() {
        let (mut mem, base) = setup();
        let id = mem.try_access(0, base, AccessKind::Load, 0).unwrap();
        let c = run_until_complete(&mut mem, id, 0);
        assert!(!c.l1_hit);
        assert!(c.at > 100, "cold miss should take DRAM time, got {}", c.at);

        let id2 = mem.try_access(c.at, base, AccessKind::Load, 0).unwrap();
        let c2 = run_until_complete(&mut mem, id2, c.at);
        assert!(c2.l1_hit);
        assert_eq!(c2.at, c.at + 2, "L1 hit latency is 2 cycles");
    }

    #[test]
    fn mshr_full_rejects_distinct_lines() {
        let (mut mem, base) = setup();
        for i in 0..12u64 {
            mem.try_access(0, base + 64 * i, AccessKind::Load, 0)
                .unwrap();
        }
        assert_eq!(
            mem.try_access(0, base + 64 * 100, AccessKind::Load, 0),
            Err(Rejection::MshrFull)
        );
        // Same line as an in-flight miss still merges fine.
        assert!(mem.try_access(0, base + 8, AccessKind::Load, 0).is_ok());
    }

    #[test]
    fn merged_loads_complete_together() {
        let (mut mem, base) = setup();
        let a = mem.try_access(0, base, AccessKind::Load, 0).unwrap();
        let b = mem.try_access(0, base + 8, AccessKind::Load, 0).unwrap();
        let ca = run_until_complete(&mut mem, a, 0);
        // b should already be completed at the same cycle.
        let mut engine = NullEngine;
        mem.tick(ca.at, &mut engine);
        // completions were drained in run_until_complete; b was in the same
        // batch, so re-run: simplest is to check b completed no later.
        // (run_until_complete drained it; so just assert ca exists.)
        assert!(ca.at > 0);
        let _ = b;
    }

    #[test]
    fn store_miss_write_allocates_and_dirties() {
        let (mut mem, base) = setup();
        let id = mem.try_access(0, base, AccessKind::Store, 0).unwrap();
        let c = run_until_complete(&mut mem, id, 0);
        assert!(!c.l1_hit);
        let s = mem.stats();
        assert_eq!(s.l1.write_misses, 1);
    }

    #[test]
    fn demand_fault_is_reported() {
        let (mut mem, _base) = setup();
        assert_eq!(
            mem.try_access(0, 0xdead_dead_0000, AccessKind::Load, 0),
            Err(Rejection::Fault)
        );
    }

    #[test]
    fn software_prefetch_turns_miss_into_hit() {
        let (mut mem, base) = setup();
        let target = base + 4096;
        mem.try_software_prefetch(0, target).unwrap();
        let mut engine = NullEngine;
        for now in 0..2000 {
            mem.tick(now, &mut engine);
        }
        let id = mem.try_access(2000, target, AccessKind::Load, 0).unwrap();
        let c = run_until_complete(&mut mem, id, 2000);
        assert!(c.l1_hit, "prefetched line should hit");
        let s = mem.stats();
        assert_eq!(s.l1.prefetch_fills, 1);
        assert_eq!(s.l1.prefetches_used, 1);
    }

    #[test]
    fn software_prefetch_to_unmapped_is_dropped() {
        let (mut mem, _) = setup();
        assert!(mem.try_software_prefetch(0, 0xbad0_0000_0000).is_ok());
        let mut engine = NullEngine;
        for now in 0..100 {
            mem.tick(now, &mut engine);
        }
        assert_eq!(mem.stats().l1.prefetch_fills, 0);
    }

    #[test]
    fn l2_keeps_lines_evicted_from_l1() {
        let (mut mem, base) = setup();
        // Fill L1 (32KB = 512 lines) far beyond capacity, then re-touch the
        // first line: it should be an L1 miss but L2 hit (fast-ish).
        let mut now = 0;
        for i in 0..2048u64 {
            let id = loop {
                match mem.try_access(now, base + 64 * i, AccessKind::Load, 0) {
                    Ok(id) => break id,
                    Err(_) => {
                        let mut e = NullEngine;
                        mem.tick(now, &mut e);
                        now += 1;
                    }
                }
            };
            let c = run_until_complete(&mut mem, id, now);
            now = c.at;
        }
        let l2_hits_before = mem.stats().l2.read_hits;
        let id = mem.try_access(now, base, AccessKind::Load, 0).unwrap();
        let c = run_until_complete(&mut mem, id, now);
        assert!(!c.l1_hit);
        assert!(
            c.at - now < 100,
            "L2 hit should be much faster than DRAM: {}",
            c.at - now
        );
        assert_eq!(mem.stats().l2.read_hits, l2_hits_before + 1);
    }

    /// A queued engine that produces the requests it is given.
    struct Queued(Vec<crate::engine::PrefetchRequest>);
    impl PrefetchEngine for Queued {
        fn on_demand(&mut self, _n: u64, _e: &DemandEvent) {}
        fn on_prefetch_fill(&mut self, _n: u64, _v: u64, _l: &Line, _t: Option<TagId>, _m: u64) {}
        fn tick(&mut self, _n: u64) {}
        fn pop_request(&mut self, _n: u64) -> Option<crate::engine::PrefetchRequest> {
            self.0.pop()
        }
        fn config(&mut self, _n: u64, _o: &crate::engine::ConfigOp) {}
        fn next_event_at(&self, now: u64) -> Option<u64> {
            (!self.0.is_empty()).then_some(now + 1)
        }
    }

    #[test]
    fn prefetch_buffer_does_not_hold_l1_mshrs() {
        let (mut mem, base) = setup();
        // Queue more prefetches than there are L1 MSHRs; demand loads must
        // still be accepted while they are all in flight.
        let reqs = (0..24u64)
            .map(|i| crate::engine::PrefetchRequest {
                vaddr: base + 64 * i,
                tag: None,
                meta: 0,
            })
            .collect();
        let mut engine = Queued(reqs);
        for now in 0..30 {
            mem.tick(now, &mut engine);
        }
        assert!(mem.stats().prefetches_issued >= 12);
        assert_eq!(mem.l1_mshrs_free(), 12, "prefetches must not pin L1 MSHRs");
        // A demand load to an untouched line is accepted immediately.
        assert!(mem
            .try_access(30, base + (1 << 19), AccessKind::Load, 0)
            .is_ok());
    }

    #[test]
    fn demand_merges_into_inflight_buffered_prefetch() {
        let (mut mem, base) = setup();
        let target = base + 8192;
        let mut engine = Queued(vec![crate::engine::PrefetchRequest {
            vaddr: target,
            tag: None,
            meta: 0,
        }]);
        mem.tick(0, &mut engine);
        // Demand load arrives while the prefetch is still in flight.
        let id = mem.try_access(5, target, AccessKind::Load, 0).unwrap();
        let c = run_until_complete(&mut mem, id, 5);
        assert!(!c.l1_hit);
        let s = mem.stats();
        assert_eq!(s.l1.late_prefetch_merges, 1, "late prefetch counted");
        // The line was claimed by demand: not a `prefetched` fill.
        assert_eq!(s.l1.prefetch_fills, 0);
    }

    #[test]
    fn store_merging_into_prefetch_dirties_the_line() {
        let (mut mem, base) = setup();
        let target = base + 16384;
        let mut engine = Queued(vec![crate::engine::PrefetchRequest {
            vaddr: target,
            tag: None,
            meta: 0,
        }]);
        mem.tick(0, &mut engine);
        let id = mem.try_access(3, target, AccessKind::Store, 0).unwrap();
        let _ = run_until_complete(&mut mem, id, 3);
        // Evict everything in the set by filling conflicting lines; the
        // dirty line must produce an L2 writeback (observable as L2 growth),
        // here we just assert the line is present and was installed.
        assert!(mem.stats().l1.write_misses == 1);
    }

    #[test]
    fn buffered_prefetch_fill_is_marked_prefetched_and_used() {
        let (mut mem, base) = setup();
        let target = base + 32768;
        let mut engine = Queued(vec![crate::engine::PrefetchRequest {
            vaddr: target,
            tag: None,
            meta: 0,
        }]);
        for now in 0..2000 {
            mem.tick(now, &mut engine);
        }
        assert_eq!(mem.stats().l1.prefetch_fills, 1);
        let id = mem.try_access(2000, target, AccessKind::Load, 0).unwrap();
        let c = run_until_complete(&mut mem, id, 2000);
        assert!(c.l1_hit, "buffered prefetch landed in L1");
        assert_eq!(mem.stats().l1.prefetches_used, 1);
    }

    #[test]
    fn pf_buffer_capacity_gates_pops() {
        let (mut mem, base) = setup();
        let n = 200u64;
        let reqs = (0..n)
            .map(|i| crate::engine::PrefetchRequest {
                vaddr: base + 64 * i,
                tag: None,
                meta: 0,
            })
            .collect();
        let mut engine = Queued(reqs);
        mem.tick(0, &mut engine);
        // Only pf_issue_per_cycle pops happen per tick, and never beyond the
        // buffer capacity.
        let cap = mem.params().pf_buffer_entries as u64;
        for now in 1..1000 {
            mem.tick(now, &mut engine);
            assert!(mem.stats().prefetches_issued <= cap + now);
        }
        // Eventually everything drains.
        for now in 1000..40_000 {
            mem.tick(now, &mut engine);
        }
        assert_eq!(mem.stats().prefetches_issued, n);
    }

    /// Prefetch `target`, let the fill land, then drive the taxonomy from
    /// hand-built demand sequences (see `telemetry::LifecycleTracker`).
    fn prefetch_and_fill(mem: &mut MemorySystem, target: u64, start: u64) -> u64 {
        let mut engine = Queued(vec![crate::engine::PrefetchRequest {
            vaddr: target,
            tag: None,
            meta: 0,
        }]);
        // The engine is swapped in behind the system's back.
        mem.wake_engine();
        for now in start..start + 2000 {
            mem.tick(now, &mut engine);
        }
        start + 2000
    }

    #[test]
    fn lifecycle_accurate_on_first_demand_hit() {
        let (mut mem, base) = setup();
        mem.enable_telemetry(false, 0);
        let target = base + 8192;
        let now = prefetch_and_fill(&mut mem, target, 0);
        let id = mem.try_access(now, target, AccessKind::Load, 0x44).unwrap();
        let _ = run_until_complete(&mut mem, id, now);
        let tel = mem.take_telemetry().expect("telemetry attached");
        let c = &tel.lifecycle.counts;
        assert_eq!(c.issued, 1);
        assert_eq!(c.accurate, 1);
        assert_eq!(c.late, 0);
        assert_eq!(tel.lifecycle.per_pc.get(&0x44).unwrap().accurate, 1);
        assert!(tel.load_latency.count() >= 1);
        assert!(tel.pf_buf_residency.count() >= 1);
    }

    #[test]
    fn lifecycle_late_on_inflight_merge() {
        let (mut mem, base) = setup();
        mem.enable_telemetry(false, 0);
        let target = base + 8192;
        let mut engine = Queued(vec![crate::engine::PrefetchRequest {
            vaddr: target,
            tag: None,
            meta: 0,
        }]);
        mem.tick(0, &mut engine);
        // Demand arrives while the prefetch is still in flight.
        let id = mem.try_access(5, target, AccessKind::Load, 0x48).unwrap();
        let _ = run_until_complete(&mut mem, id, 5);
        let tel = mem.take_telemetry().expect("telemetry attached");
        let c = &tel.lifecycle.counts;
        assert_eq!(c.late, 1, "in-flight merge is a late prefetch");
        assert_eq!(c.accurate, 0);
        assert_eq!(tel.lifecycle.per_pc.get(&0x48).unwrap().late, 1);
    }

    #[test]
    fn lifecycle_early_vs_useless_after_unused_eviction() {
        let (mut mem, base) = setup();
        mem.enable_telemetry(false, 0);
        // Prefetch two lines that map to the same L1 set (set stride for
        // the paper L1 = 256 sets * 64B = 16KB), then evict both with
        // demand fills of two more conflicting lines (2-way).
        let early = base; // will be demanded after eviction
        let useless = base + 16384; // never demanded
        let mut now = prefetch_and_fill(&mut mem, early, 0);
        now = prefetch_and_fill(&mut mem, useless, now);
        for i in 2..4u64 {
            let id = mem
                .try_access(now, base + 16384 * i, AccessKind::Load, 0)
                .unwrap();
            let c = run_until_complete(&mut mem, id, now);
            now = c.at;
        }
        // Touch the early line again: its prefetch was right, just too early.
        let id = mem.try_access(now, early, AccessKind::Load, 0).unwrap();
        let _ = run_until_complete(&mut mem, id, now);
        let tel = mem.take_telemetry().expect("telemetry attached");
        let c = &tel.lifecycle.counts;
        assert_eq!(c.issued, 2);
        assert_eq!(c.early_evicted, 1, "demanded after eviction");
        assert_eq!(c.useless, 1, "never demanded");
        assert_eq!(c.accurate, 0);
        assert_eq!(c.classified(), 2);
    }

    #[test]
    fn telemetry_does_not_change_timing_or_stats() {
        let run = |telemetry: bool| {
            let (mut mem, base) = setup();
            if telemetry {
                mem.enable_telemetry(true, 1024);
            }
            let mut completions = Vec::new();
            let mut now = 0;
            for i in 0..64u64 {
                let id = loop {
                    match mem.try_access(now, base + 64 * i, AccessKind::Load, i as u32) {
                        Ok(id) => break id,
                        Err(_) => {
                            let mut e = NullEngine;
                            mem.tick(now, &mut e);
                            now += 1;
                        }
                    }
                };
                let c = run_until_complete(&mut mem, id, now);
                now = c.at;
                completions.push((id, c.at, c.l1_hit));
            }
            (completions, mem.stats())
        };
        let (c_off, s_off) = run(false);
        let (c_on, s_on) = run(true);
        assert_eq!(c_off, c_on, "telemetry must not perturb completions");
        assert_eq!(s_off, s_on, "telemetry must not perturb stats");
    }

    #[test]
    fn engine_prefetch_fill_delivers_line_data() {
        struct Capture {
            seen: Vec<(u64, u64)>,
            queued: Vec<crate::engine::PrefetchRequest>,
        }
        impl PrefetchEngine for Capture {
            fn on_demand(&mut self, _n: u64, _e: &DemandEvent) {}
            fn on_prefetch_fill(
                &mut self,
                _n: u64,
                vaddr: u64,
                line: &Line,
                _t: Option<TagId>,
                _m: u64,
            ) {
                let off = (vaddr % 64) as usize & !7;
                let val = u64::from_le_bytes(line[off..off + 8].try_into().unwrap());
                self.seen.push((vaddr, val));
            }
            fn tick(&mut self, _n: u64) {}
            fn pop_request(&mut self, _n: u64) -> Option<crate::engine::PrefetchRequest> {
                self.queued.pop()
            }
            fn config(&mut self, _n: u64, _o: &crate::engine::ConfigOp) {}
            fn next_event_at(&self, now: u64) -> Option<u64> {
                (!self.queued.is_empty()).then_some(now + 1)
            }
        }
        let (mut mem, base) = setup();
        // Element index 5 holds value 5 (see setup()).
        let mut engine = Capture {
            seen: vec![],
            queued: vec![crate::engine::PrefetchRequest {
                vaddr: base + 8 * 5,
                tag: None,
                meta: 7,
            }],
        };
        for now in 0..2000 {
            mem.tick(now, &mut engine);
        }
        assert_eq!(engine.seen, vec![(base + 40, 5)]);
        assert_eq!(mem.stats().prefetches_issued, 1);
    }
}
