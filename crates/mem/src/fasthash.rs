//! A fast non-cryptographic hasher for the simulator's address-keyed
//! maps.
//!
//! The memory image, prefetch buffer and replay bookkeeping all key
//! `HashMap`s by page or line addresses — millions of lookups per
//! simulated second. The standard library's SipHash is DoS-resistant
//! but needlessly slow for trusted `u64` keys; this Fibonacci-mix
//! hasher (the same multiplier the GHB index table uses) cuts the
//! per-lookup cost to a multiply and a shift. Host-side only: hash
//! choice never affects simulated timing or statistics.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the address-keyed maps): fold
        // 8-byte chunks through the integer path.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`FastHasher`]-backed maps.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by addresses (or other trusted integers).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` of addresses (or other trusted integers).
pub type FastHashSet<K> = std::collections::HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 4096, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let b = FastBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(b.hash_one(i * 64));
        }
        assert_eq!(seen.len(), 100_000, "64-bit hashes of distinct keys");
    }
}
