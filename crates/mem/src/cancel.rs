//! Cooperative cancellation for bounded-runtime simulation.
//!
//! A [`CancelToken`] is a cheap, clonable handle combining an external
//! cancel request (a shared atomic flag) with an optional wall-clock
//! deadline fixed at construction. Execution layers poll it at *coarse*
//! boundaries — one driver visit, one replay iteration, one
//! `advance_to` entry — never per simulated cycle, so an armed token
//! costs a single null-check plus (strided) one atomic load on the hot
//! paths and a cancelled run aborts within a bounded number of visits.
//!
//! Firing is expressed as a typed panic payload ([`Cancelled`]) raised
//! by [`CancelToken::check`]: the sweep farm's panic-isolation layer
//! (`etpp_sim::faults`) catches it, classifies the failure (deadline
//! vs. request), and quarantines the cell instead of crashing the
//! worker. A token that never fires is pure observation — watched runs
//! are bit-identical to unwatched ones (pinned by the equivalence
//! suite).

use std::fmt;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (external request).
    Requested,
    /// The token's wall-clock deadline passed (budget exhausted).
    Deadline,
}

impl CancelReason {
    /// Stable lower-case key (`"requested"` / `"deadline"`).
    pub fn key(self) -> &'static str {
        match self {
            CancelReason::Requested => "requested",
            CancelReason::Deadline => "deadline",
        }
    }
}

/// Typed panic payload raised by [`CancelToken::check`] when the token
/// has fired. Carried through `catch_unwind` so the isolation layer can
/// classify the abort (timeout vs. cancellation) instead of seeing an
/// opaque string.
#[derive(Debug, Clone, Copy)]
pub struct Cancelled {
    /// Simulated cycle at which the cancellation was observed (0 when
    /// the aborting layer has no cycle clock, e.g. a spin loop).
    pub at_cycle: u64,
    /// What fired the token.
    pub reason: CancelReason,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            CancelReason::Requested => {
                write!(f, "cancelled on request at cycle {}", self.at_cycle)
            }
            CancelReason::Deadline => {
                write!(f, "wall-clock budget exhausted at cycle {}", self.at_cycle)
            }
        }
    }
}

/// A clonable cancellation handle: a shared request flag plus an
/// optional deadline fixed at construction. Clones observe the same
/// flag (cancel one, cancel all) and the same immutable deadline, so
/// [`CancelToken::is_cancelled`] is lock-free.
///
/// Escalated retries do not extend a token — they build a *new* one
/// with a later deadline, keeping every token's lifetime decision
/// immutable and race-free.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline: fires only on [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token whose deadline is `budget` from now. A budget too large
    /// to represent degrades to no deadline (request-only).
    pub fn with_budget(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::default(),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Why the token has fired, if it has. An explicit request wins
    /// over a passed deadline so an external abort is never
    /// misclassified as a timeout.
    pub fn fired(&self) -> Option<CancelReason> {
        if self.flag.load(Ordering::Acquire) {
            return Some(CancelReason::Requested);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::Deadline),
            _ => None,
        }
    }

    /// Whether the token has fired (request or deadline).
    pub fn is_cancelled(&self) -> bool {
        self.fired().is_some()
    }

    /// Aborts the current computation with a [`Cancelled`] payload if
    /// the token has fired. `at_cycle` stamps the diagnostic.
    pub fn check(&self, at_cycle: u64) {
        if let Some(reason) = self.fired() {
            panic_any(Cancelled { at_cycle, reason });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn request_fires_every_clone() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert_eq!(a.fired(), Some(CancelReason::Requested));
        assert_eq!(b.fired(), Some(CancelReason::Requested));
    }

    #[test]
    fn deadline_fires_as_deadline_and_check_panics_typed() {
        let t = CancelToken::with_budget(Duration::from_millis(0));
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
        let err = catch_unwind(AssertUnwindSafe(|| t.check(42))).unwrap_err();
        let c = err.downcast_ref::<Cancelled>().expect("typed payload");
        assert_eq!(c.at_cycle, 42);
        assert_eq!(c.reason, CancelReason::Deadline);
    }

    #[test]
    fn request_outranks_deadline() {
        let t = CancelToken::with_budget(Duration::from_millis(0));
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Requested));
    }

    #[test]
    fn generous_budget_never_fires() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.check(0); // must not panic
    }
}
