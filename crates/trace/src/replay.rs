//! Trace-driven replay: the fast front end for prefetcher sweeps.
//!
//! [`replay`] feeds a captured demand-access stream through a fresh
//! [`MemorySystem`] and any [`PrefetchEngine`]. The memory hierarchy,
//! DRAM timing, TLBs and the prefetcher all simulate at full fidelity;
//! only the out-of-order core is replaced by a simple in-order issue
//! window. Recorded store data is committed as stores issue, so prefetch
//! kernels observe real program state and the post-replay image checksum
//! still validates.
//!
//! Timing is *re-simulated*, not replayed: recorded cycle stamps are
//! ignored (they embed the capture run's stall time, which would mask any
//! prefetcher benefit). Instead the front end issues up to one access per
//! cycle, `window` outstanding, and the replayed cycle count reflects how
//! the memory system — including the prefetcher under test — services the
//! stream. Relative speedups between prefetchers are preserved.
//!
//! With a format-v2 trace the front end is additionally
//! *dependence-aware* ([`ReplayParams::dependence_aware`]): a load whose
//! recorded address producer is still in flight waits for that producer's
//! fill before issuing, exactly the serialisation that makes pointer
//! chases slow on the real core. This replaces the purely optimistic
//! fixed-window model for traversal workloads and brings replay's
//! *absolute* cycle counts within a pinned tolerance of the cycle-level
//! core (see `tests/replay_fidelity.rs`); v1 traces carry no edges and
//! replay exactly as before.
//!
//! The clock never ticks through dead cycles: each iteration jumps
//! straight to the earliest *event horizon* across the memory system
//! (pending transfer or completion), the prefetch engine
//! ([`PrefetchEngine::next_event_at`] — a due emission, a PPU freeing
//! up, a queued request awaiting its pop), the issue window, and the
//! store buffer. Engines that once forced per-cycle ticking whenever
//! they held any state (the old `is_idle` gate) now fast-forward
//! through PPU execution and release delays too, which is where the
//! order-of-magnitude host speedup on programmable modes comes from.
//! Setting [`ReplayParams::per_cycle_reference`] restores the unit-tick
//! loop; the equivalence tests pin both paths to identical cycle
//! counts, statistics and request streams.

use crate::format::TraceRecord;
use etpp_mem::{
    AccessKind, MemParams, MemStats, MemoryImage, MemorySystem, PrefetchEngine, Rejection,
};

/// Replay front-end parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplayParams {
    /// Maximum outstanding demand accesses (the capture core's load-queue
    /// depth is the natural choice).
    pub window: usize,
    /// Minimum cycles between successive issues (models front-end width).
    pub issue_gap: u64,
    /// Store-buffer entries: stores whose cache access has not drained
    /// yet. Mirrors the cycle core's store queue — stores never block the
    /// load window.
    pub store_buffer: usize,
    /// Upper clip on the *recorded* inter-access gap honoured between
    /// issues. Recorded gaps embed both compute time (which replay should
    /// keep — it determines how much look-ahead a prefetcher needs) and
    /// memory-stall time (which replay must discard — it is exactly what a
    /// prefetcher removes). Clipping at a small bound keeps the former and
    /// drops the latter. `0` ignores recorded gaps entirely — the default,
    /// because a baseline capture cannot distinguish the two and charging
    /// clipped stalls to every miss masks prefetcher benefit.
    pub gap_cap: u64,
    /// Runaway guard.
    pub max_cycles: u64,
    /// Disable all event-horizon batching: advance the clock one cycle
    /// at a time and run the engine round every tick, exactly as the
    /// pre-batching simulator did. Slow; exists so the equivalence
    /// tests can pin the fast path against a unit-tick reference.
    pub per_cycle_reference: bool,
    /// Honour recorded load→load dependence edges (trace format v2): a
    /// load whose address producer's fill has not completed does not
    /// issue, modelling pointer-chase serialisation instead of the
    /// optimistic fixed window. No-op on v1 streams (no edges
    /// recorded); `false` replays a v2 stream as if it were v1.
    pub dependence_aware: bool,
}

impl Default for ReplayParams {
    fn default() -> Self {
        ReplayParams {
            window: 16,
            issue_gap: 1,
            store_buffer: 32,
            gap_cap: 0,
            max_cycles: 20_000_000_000,
            per_cycle_reference: false,
            dependence_aware: true,
        }
    }
}

/// Outcome of one replay run.
#[derive(Debug)]
pub struct ReplayResult {
    /// Replayed cycles (re-simulated; see module docs).
    pub cycles: u64,
    /// Host loop iterations — simulated cycles actually *visited*. The
    /// ratio `cycles / host_iters` is the event-horizon fast-forward
    /// factor; per-cycle reference runs have `host_iters == cycles + 1`.
    pub host_iters: u64,
    /// Demand accesses issued.
    pub accesses: u64,
    /// Configuration records applied to the engine.
    pub configs: u64,
    /// Loads whose issue was serialised by a recorded dependence edge:
    /// they issued at exactly the cycle their address producer's fill
    /// completed (dependence-aware replay only; 0 on v1 streams).
    /// Deterministic and identical between the fast path and the
    /// per-cycle reference.
    pub dep_stalls: u64,
    /// Memory-side statistics (hits, misses, DRAM traffic, prefetch
    /// accounting) — directly comparable with a cycle-level run over the
    /// same stream.
    pub mem: MemStats,
    /// Post-replay memory image, for checksum validation.
    pub image: MemoryImage,
}

impl ReplayResult {
    /// L1 read hit rate over the replayed stream.
    pub fn l1_read_hit_rate(&self) -> f64 {
        self.mem.l1.read_hit_rate()
    }
}

/// Completed-load ring for dependence tracking. Sized for the common
/// case (in-ROB producers sit tens of load records back); distances
/// beyond the ring — a base pointer loaded once feeding addresses much
/// later — fall back to an exact scan of the (window-bounded) in-flight
/// set, so the ring size never changes scheduling semantics.
const DEP_RING: usize = 1024;

/// Ring slot value while the load's fill is still in flight.
const DEP_INFLIGHT: u64 = u64::MAX;

/// When the load `dep` load-records before the next ordinal
/// (`issued_loads + 1`) completed its fill: `Some(cycle)` if complete,
/// `None` if still in flight. Distances of 0 or pointing before the
/// stream start are trivially satisfied; producers beyond the ring are
/// complete unless the in-flight set still holds their ordinal (the
/// ring slot has been reused, so their completion cycle is reported as
/// the distant past — fine, any issue after it is then window-gated,
/// not dependence-gated).
#[inline]
fn dep_completed_at(
    load_done_at: &[u64],
    inflight_ord: &etpp_mem::FastHashMap<u64, u64>,
    issued_loads: u64,
    dep: u32,
) -> Option<u64> {
    let dep = dep as u64;
    if dep == 0 {
        return Some(0);
    }
    let next_ord = issued_loads + 1;
    if dep >= next_ord {
        return Some(0);
    }
    let producer = next_ord - dep;
    if dep >= DEP_RING as u64 {
        if inflight_ord.values().any(|&o| o == producer) {
            return None;
        }
        return Some(0);
    }
    match load_done_at[(producer as usize) & (DEP_RING - 1)] {
        DEP_INFLIGHT => None,
        at => Some(at),
    }
}

/// Replays `records` through a fresh hierarchy attached to `engine`.
///
/// # Panics
/// Panics on demand accesses to unmapped addresses (a corrupt trace or
/// wrong memory image) and when `params.max_cycles` is exceeded.
pub fn replay(
    params: &ReplayParams,
    mem_params: MemParams,
    image: MemoryImage,
    records: &[TraceRecord],
    engine: &mut dyn PrefetchEngine,
) -> ReplayResult {
    replay_cancellable(params, mem_params, image, records, engine, None)
}

/// [`replay`] under a cooperative-cancellation token, polled once per
/// replay host iteration (never per simulated cycle) and at each
/// memory-system `advance_to` entry. A quiet token is pure observation
/// — the result is bit-identical to [`replay`]; a fired token aborts by
/// panicking with its typed [`etpp_mem::Cancelled`] payload, which the
/// sweep farm quarantines as a timeout/cancellation.
///
/// # Panics
/// As [`replay`], plus the token's payload once it fires.
pub fn replay_cancellable(
    params: &ReplayParams,
    mem_params: MemParams,
    image: MemoryImage,
    records: &[TraceRecord],
    engine: &mut dyn PrefetchEngine,
    cancel: Option<&etpp_mem::CancelToken>,
) -> ReplayResult {
    let mut mem = MemorySystem::new(mem_params, image);
    if params.per_cycle_reference {
        mem.set_engine_batching(false);
    }
    if let Some(token) = cancel {
        mem.set_cancel(Some(token.clone()));
    }
    let mut now: u64 = 0;
    let mut inflight: usize = 0;
    let mut next_issue_at: u64 = 0;
    let mut prev_rec_cycle: Option<u64> = None;
    let mut accesses: u64 = 0;
    let mut configs: u64 = 0;
    let mut host_iters: u64 = 0;
    let mut i = 0usize;
    // Store buffer: data is committed when the record is reached (as the
    // cycle core commits at retire), but the cache access drains later —
    // one per cycle, FIFO, and only once the line is no longer being
    // fetched. This keeps load-modify-store pairs from counting spurious
    // write misses while never blocking the load window behind a store.
    let mut store_q: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut stores_in_mem: etpp_mem::FastHashSet<u64> = etpp_mem::FastHashSet::default();
    let mut due: Vec<etpp_mem::Completion> = Vec::new();
    // Dependence tracking (v2 streams only — a pure-v1 stream carries no
    // edges, so the per-load bookkeeping is skipped entirely and replay
    // behaves bit-for-bit as before): load records get 1-based issue
    // ordinals, `load_done` rings their completion state, and
    // `inflight_ord` maps an in-flight access id back to its ordinal.
    let track_deps = params.dependence_aware
        && records
            .iter()
            .any(|r| matches!(r, TraceRecord::Access { dep, .. } if *dep > 0));
    let mut load_done_at = vec![0u64; if track_deps { DEP_RING } else { 0 }];
    let mut issued_loads: u64 = 0;
    let mut inflight_ord: etpp_mem::FastHashMap<u64, u64> = etpp_mem::FastHashMap::default();
    let mut dep_stalls: u64 = 0;

    loop {
        host_iters += 1;
        // Cooperative cancellation at host-iteration granularity; the
        // stride keeps the wall-clock poll off the per-iteration path.
        if let Some(token) = cancel {
            if host_iters & 63 == 0 {
                token.check(now);
            }
        }
        mem.tick(now, engine);
        due.clear();
        mem.drain_completions_due(now, &mut due);
        for c in &due {
            if !stores_in_mem.remove(&c.id.0) {
                inflight -= 1;
                if track_deps {
                    if let Some(o) = inflight_ord.remove(&c.id.0) {
                        load_done_at[(o as usize) & (DEP_RING - 1)] = now;
                    }
                }
            }
        }

        // Drain at most one buffered store per cycle, oldest first.
        let mut structural_stall = false;
        if let Some(&vaddr) = store_q.front() {
            if !mem.line_in_flight(vaddr) {
                match mem.try_access(now, vaddr, AccessKind::Store, 0) {
                    Ok(id) => {
                        store_q.pop_front();
                        stores_in_mem.insert(id.0);
                    }
                    Err(Rejection::Fault) => {
                        panic!("replay: store to unmapped address {vaddr:#x}")
                    }
                    Err(_) => structural_stall = true,
                }
            }
        }

        // Issue phase: apply configs immediately, issue accesses while the
        // window and the hierarchy accept them.
        while i < records.len() {
            match &records[i] {
                TraceRecord::Config { op, .. } => {
                    engine.config(now, op);
                    // The config may have armed the engine (or re-enabled
                    // it with queued state); drop the cached horizon.
                    mem.wake_engine();
                    configs += 1;
                    i += 1;
                }
                TraceRecord::Access {
                    cycle,
                    pc,
                    vaddr,
                    kind,
                    value,
                    size,
                    dep,
                } => {
                    if now < next_issue_at {
                        break;
                    }
                    let rec_gap = prev_rec_cycle
                        .map(|p| cycle.saturating_sub(p).min(params.gap_cap))
                        .unwrap_or(0);
                    match kind {
                        AccessKind::Store => {
                            if store_q.len() >= params.store_buffer {
                                break;
                            }
                            // Eager path: a store whose line is present (or
                            // absent but not being fetched) drains inline;
                            // only stores racing an in-flight fill queue up,
                            // so the buffer is empty most of the time and
                            // idle fast-forwarding stays effective.
                            if store_q.is_empty() && !mem.line_in_flight(*vaddr) {
                                match mem.try_access(now, *vaddr, AccessKind::Store, 0) {
                                    Ok(id) => {
                                        stores_in_mem.insert(id.0);
                                    }
                                    Err(Rejection::Fault) => {
                                        panic!("replay: store to unmapped address {vaddr:#x}")
                                    }
                                    Err(_) => {
                                        structural_stall = true;
                                        break;
                                    }
                                }
                            } else {
                                store_q.push_back(*vaddr);
                            }
                            mem.commit_store_data(*vaddr, *value, *size);
                            accesses += 1;
                            prev_rec_cycle = Some(*cycle);
                            next_issue_at = now + params.issue_gap.max(rec_gap);
                            i += 1;
                        }
                        AccessKind::Load => {
                            if inflight >= params.window {
                                break;
                            }
                            // Dependence gate: the recorded address
                            // producer's fill must have completed, as
                            // the real core cannot compute this address
                            // before its feeding load returns. The wake
                            // is that producer's completion, on which
                            // `advance_to` hands control back.
                            let producer_done_at = if track_deps {
                                match dep_completed_at(
                                    &load_done_at,
                                    &inflight_ord,
                                    issued_loads,
                                    *dep,
                                ) {
                                    Some(at) => at,
                                    None => break,
                                }
                            } else {
                                0
                            };
                            match mem.try_access(now, *vaddr, AccessKind::Load, *pc) {
                                Ok(id) => {
                                    inflight += 1;
                                    accesses += 1;
                                    if track_deps {
                                        // Issued the very cycle the producer's
                                        // fill returned: the dependence edge,
                                        // not the window, gated this issue.
                                        if *dep > 0 && producer_done_at == now {
                                            dep_stalls += 1;
                                        }
                                        issued_loads += 1;
                                        load_done_at[(issued_loads as usize) & (DEP_RING - 1)] =
                                            DEP_INFLIGHT;
                                        inflight_ord.insert(id.0, issued_loads);
                                    }
                                    // Charge the recorded compute gap to the
                                    // next issue, clipped so capture-run
                                    // stalls do not leak into replayed time.
                                    prev_rec_cycle = Some(*cycle);
                                    next_issue_at = now + params.issue_gap.max(rec_gap);
                                    i += 1;
                                }
                                Err(Rejection::Fault) => {
                                    panic!("replay: access to unmapped address {vaddr:#x}")
                                }
                                Err(_) => {
                                    structural_stall = true;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }

        if i >= records.len()
            && inflight == 0
            && store_q.is_empty()
            && stores_in_mem.is_empty()
            && !mem.busy()
        {
            break;
        }

        // Advance time: jump to the next moment the *front end* can act
        // — an issue slot opening or a drainable store — and let
        // `MemorySystem::advance_to` run every intermediate transfer and
        // engine round (bulk prefetch pops included) at its exact cycle,
        // handing control back early when a demand completion falls due.
        // Structural stalls retry next cycle, as the LSQ would.
        if params.per_cycle_reference || structural_stall {
            now += 1;
        } else {
            let mut front_at = u64::MAX;
            if i < records.len() {
                // Only a record that can actually issue pins the issue
                // horizon: the phase above leaves `i` at an access (it
                // applies configs inline), so ask whether *that* access
                // has capacity — a load needs a window slot (and, with
                // dependence edges, its producer's fill), a store a
                // buffer slot. A blocked head record wakes with the
                // demand completion that frees its resource, on which
                // `advance_to` stops.
                let can_issue = match &records[i] {
                    TraceRecord::Config { .. } => true,
                    TraceRecord::Access { kind, dep, .. } => match kind {
                        AccessKind::Load => {
                            inflight < params.window
                                && (!track_deps
                                    || dep_completed_at(
                                        &load_done_at,
                                        &inflight_ord,
                                        issued_loads,
                                        *dep,
                                    )
                                    .is_some())
                        }
                        AccessKind::Store => store_q.len() < params.store_buffer,
                    },
                };
                if can_issue {
                    front_at = front_at.min(next_issue_at);
                }
            }
            let mut blocked_store = false;
            if let Some(&v) = store_q.front() {
                if mem.line_in_flight(v) {
                    // The store wakes with its line's fill — a memory
                    // event the driver must witness itself, so it cannot
                    // be advanced through.
                    blocked_store = true;
                } else {
                    // A drainable store goes next cycle.
                    front_at = front_at.min(now + 1);
                }
            }
            // Once the front end has fully drained, the run ends at the
            // first cycle the hierarchy goes idle — even if the engine
            // still holds a live prefetch chain (`MemorySystem::busy`
            // does not count engine state, exactly as the per-cycle
            // reference terminates). The driver must therefore witness
            // every horizon cycle itself rather than let `advance_to`
            // run the chain to exhaustion behind its back.
            let front_done = i >= records.len()
                && inflight == 0
                && store_q.is_empty()
                && stores_in_mem.is_empty();
            now = if blocked_store || front_done {
                // Classic fold: the wake event (a parked store's fill,
                // or any residual hierarchy/engine activity before the
                // termination check) is in the memory horizon.
                let next = front_at.min(mem.next_horizon(now).unwrap_or(u64::MAX));
                if next == u64::MAX {
                    now + 1
                } else {
                    next.max(now + 1)
                }
            } else {
                mem.advance_to(now, front_at, engine).max(now + 1)
            };
        }
        assert!(
            now < params.max_cycles,
            "replay exceeded {} cycles",
            params.max_cycles
        );
    }

    let stats = mem.stats();
    let image = mem.into_image();
    ReplayResult {
        cycles: now,
        host_iters,
        accesses,
        configs,
        dep_stalls,
        mem: stats,
        image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_mem::NullEngine;

    fn mk_records(n: u64, stride: u64, base: u64) -> Vec<TraceRecord> {
        mk_dep_records(n, stride, base, 0)
    }

    fn mk_dep_records(n: u64, stride: u64, base: u64, dep: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::Access {
                cycle: i,
                pc: 0x40,
                vaddr: base + i * stride,
                kind: AccessKind::Load,
                value: 0,
                size: 0,
                dep: if i == 0 { 0 } else { dep },
            })
            .collect()
    }

    fn image_with(bytes: u64) -> (MemoryImage, u64) {
        let mut image = MemoryImage::new();
        let base = image.alloc(bytes, 4096);
        (image, base)
    }

    #[test]
    fn replays_all_accesses_and_counts_hits() {
        let (image, base) = image_with(1 << 20);
        // Two passes over a small array: second pass must hit.
        let mut recs = mk_records(64, 64, base);
        recs.extend(mk_records(64, 64, base));
        let mut engine = NullEngine;
        let r = replay(
            &ReplayParams::default(),
            MemParams::paper(),
            image,
            &recs,
            &mut engine,
        );
        assert_eq!(r.accesses, 128);
        // Every line misses once; a few pass-2 accesses can arrive while
        // the tail of pass 1 is still in flight and merge into those MSHRs
        // (counted as misses), exactly as in the cycle-level core.
        assert!(
            (64..=84).contains(&r.mem.l1.read_misses),
            "read misses {}",
            r.mem.l1.read_misses
        );
        assert_eq!(r.mem.l1.read_hits + r.mem.l1.read_misses, 128);
        assert!(r.cycles > 0);
    }

    #[test]
    fn stores_commit_their_data() {
        let (image, base) = image_with(4096);
        let recs = vec![TraceRecord::Access {
            cycle: 0,
            pc: 4,
            vaddr: base + 128,
            kind: AccessKind::Store,
            value: 0xdead_beef,
            size: 8,
            dep: 0,
        }];
        let mut engine = NullEngine;
        let r = replay(
            &ReplayParams::default(),
            MemParams::paper(),
            image,
            &recs,
            &mut engine,
        );
        assert_eq!(r.image.read_u64(base + 128), 0xdead_beef);
    }

    #[test]
    fn window_limits_outstanding_misses() {
        let (image, base) = image_with(1 << 22);
        // 64 independent miss lines; a window of 2 must take far longer
        // than a window of 16.
        let recs = mk_records(64, 4096, base);
        let mut e1 = NullEngine;
        let narrow = replay(
            &ReplayParams {
                window: 2,
                ..ReplayParams::default()
            },
            MemParams::paper(),
            {
                let (img, _) = image_with(1 << 22);
                img
            },
            &recs,
            &mut e1,
        );
        let mut e2 = NullEngine;
        let wide = replay(
            &ReplayParams {
                window: 16,
                ..ReplayParams::default()
            },
            MemParams::paper(),
            image,
            &recs,
            &mut e2,
        );
        let _ = base;
        assert!(
            narrow.cycles > wide.cycles * 2,
            "window 2 ({}) should be much slower than window 16 ({})",
            narrow.cycles,
            wide.cycles
        );
    }

    #[test]
    fn beyond_ring_producers_consult_the_inflight_set() {
        // A producer more than DEP_RING load-records back has lost its
        // ring slot; satisfaction must fall back to the exact in-flight
        // scan rather than assume completion (issue_gap 0 + cache hits
        // can run through >1024 ordinals while a DRAM miss is pending).
        let ring = vec![0u64; DEP_RING];
        let mut inflight: etpp_mem::FastHashMap<u64, u64> = Default::default();
        let issued: u64 = 3000;
        let dep = (DEP_RING + 100) as u32; // producer ordinal 3001 - 1124 = 1877
        assert_eq!(dep_completed_at(&ring, &inflight, issued, dep), Some(0));
        inflight.insert(42, 1877);
        assert_eq!(
            dep_completed_at(&ring, &inflight, issued, dep),
            None,
            "an in-flight beyond-ring producer must still gate issue"
        );
        inflight.remove(&42);
        inflight.insert(42, 1878);
        assert_eq!(dep_completed_at(&ring, &inflight, issued, dep), Some(0));
        // Distances past the stream start are trivially satisfied.
        assert_eq!(dep_completed_at(&ring, &inflight, 5, 9), Some(0));
    }

    #[test]
    fn dependence_edges_serialise_pointer_chases() {
        // 64 loads to distinct DRAM lines. Independent (dep 0) they
        // overlap up to the window; as a recorded chase (dep 1 each)
        // every load must wait for the previous fill — replay must
        // approach 64 serial round trips.
        let (image, base) = image_with(1 << 22);
        let indep = mk_records(64, 4096, base);
        let chase = mk_dep_records(64, 4096, base, 1);
        let mut e1 = NullEngine;
        let overlapped = replay(
            &ReplayParams::default(),
            MemParams::paper(),
            image.clone(),
            &indep,
            &mut e1,
        );
        let mut e2 = NullEngine;
        let serialised = replay(
            &ReplayParams::default(),
            MemParams::paper(),
            image,
            &chase,
            &mut e2,
        );
        assert_eq!(serialised.accesses, 64);
        assert!(serialised.dep_stalls > 32, "chase must stall on producers");
        assert_eq!(overlapped.dep_stalls, 0);
        assert!(
            serialised.cycles > overlapped.cycles * 3,
            "dependent chase ({}) must be much slower than independent loads ({})",
            serialised.cycles,
            overlapped.cycles
        );
    }

    #[test]
    fn dependence_edges_are_ignored_when_disabled() {
        let (image, base) = image_with(1 << 22);
        let chase = mk_dep_records(64, 4096, base, 1);
        let mut e1 = NullEngine;
        let v1_like = replay(
            &ReplayParams {
                dependence_aware: false,
                ..ReplayParams::default()
            },
            MemParams::paper(),
            image.clone(),
            &chase,
            &mut e1,
        );
        let mut e2 = NullEngine;
        let indep = replay(
            &ReplayParams::default(),
            MemParams::paper(),
            image,
            &mk_records(64, 4096, base),
            &mut e2,
        );
        assert_eq!(v1_like.dep_stalls, 0);
        assert_eq!(
            v1_like.cycles, indep.cycles,
            "dependence_aware=false must replay a v2 stream exactly like v1"
        );
    }

    #[test]
    fn dependence_aware_fast_path_matches_per_cycle_reference() {
        // Mixed dep distances + interleaved stores: the event-horizon
        // fast-forward must stay bit-identical to unit ticking when the
        // front end parks on producer fills.
        let (image, base) = image_with(1 << 22);
        let mut recs = Vec::new();
        for i in 0..200u64 {
            recs.push(TraceRecord::Access {
                cycle: i,
                pc: 0x40,
                vaddr: base + (i * 2657) % (1 << 21),
                kind: AccessKind::Load,
                value: 0,
                size: 0,
                dep: match i % 5 {
                    0 => 0,
                    1 => 1,
                    2 => 2,
                    _ => (i % 4) as u32,
                },
            });
            if i % 7 == 0 {
                recs.push(TraceRecord::Access {
                    cycle: i,
                    pc: 0x44,
                    vaddr: base + (i * 389) % (1 << 21),
                    kind: AccessKind::Store,
                    value: i,
                    size: 8,
                    dep: 0,
                });
            }
        }
        let run = |per_cycle_reference: bool, image: MemoryImage| {
            let mut engine = NullEngine;
            replay(
                &ReplayParams {
                    per_cycle_reference,
                    ..ReplayParams::default()
                },
                MemParams::paper(),
                image,
                &recs,
                &mut engine,
            )
        };
        let fast = run(false, image.clone());
        let reference = run(true, image);
        assert_eq!(fast.cycles, reference.cycles, "cycle counts must match");
        assert_eq!(fast.mem, reference.mem, "memory stats must match");
        assert_eq!(fast.dep_stalls, reference.dep_stalls);
        assert!(
            fast.host_iters < reference.host_iters,
            "fast path must skip cycles ({} vs {})",
            fast.host_iters,
            reference.host_iters
        );
    }

    #[test]
    fn empty_trace_terminates() {
        let (image, _) = image_with(4096);
        let mut engine = NullEngine;
        let r = replay(
            &ReplayParams::default(),
            MemParams::paper(),
            image,
            &[],
            &mut engine,
        );
        assert_eq!(r.accesses, 0);
        assert!(r.cycles < 10);
    }
}
