//! Demand-access trace capture and replay — the fast evaluation path.
//!
//! The paper's evaluation re-runs identical workloads through the
//! cycle-level out-of-order core for every prefetcher configuration, so
//! most simulation time is spent regenerating the same demand-access
//! stream. This crate removes that redundancy, ChampSim-style:
//!
//! * [`format`] — a compact, versioned, delta-encoded binary record format
//!   for retired demand accesses (PC, vaddr, kind, cycle, store data) and
//!   prefetcher-configuration operations, with workload metadata; version
//!   2 additionally records load→load dependence edges and the capture
//!   run's cycle count (v1 traces stay readable);
//! * [`io`] — a streaming [`TraceWriter`]/[`TraceReader`] pair over any
//!   `Write`/`Read`, with an integrity hash covering every record;
//! * [`capture`] — an in-memory capture buffer fed by the hooks in
//!   `etpp_cpu::Core` (retired memory ops, program order) and the
//!   retired-configuration stream;
//! * [`replay`] — a trace-driven front end that feeds recorded accesses
//!   through the full `etpp_mem` hierarchy and any
//!   [`etpp_mem::PrefetchEngine`] *without* re-executing the out-of-order
//!   core, an order-of-magnitude faster path for prefetcher sweeps.
//!
//! Replay re-simulates *timing* (caches, MSHRs, DRAM, TLBs and the
//! prefetcher all run for real) but takes the access stream as given, so it
//! measures how a prefetcher changes memory behaviour, not how the core
//! reorders instructions. Store data is recorded and committed during
//! replay, so the post-replay image checksum still validates against the
//! workload's reference output.
//!
//! # Example
//!
//! ```
//! use etpp_trace::{CaptureBuffer, ReplayParams, TraceMeta, TraceReader, TraceWriter};
//! use etpp_mem::{AccessKind, MemParams, MemoryImage, NullEngine};
//!
//! // Record two accesses, round-trip them through the binary format...
//! let mut image = MemoryImage::new();
//! let base = image.alloc(4096, 64);
//! let mut cap = CaptureBuffer::new(TraceMeta::new("demo", "tiny"));
//! cap.access(10, 0x400, base, AccessKind::Load, 0, 0, 0);
//! cap.access(14, 0x404, base + 64, AccessKind::Load, 0, 0, 1); // fed by the first load
//! assert_eq!(cap.len(), 2);
//! let trace = cap.finish();
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf, &trace.meta).unwrap();
//! for r in &trace.records { w.record(r).unwrap(); }
//! w.finish().unwrap();
//! let mut r = TraceReader::new(buf.as_slice()).unwrap();
//! let records: Vec<_> = r.by_ref().map(|x| x.unwrap()).collect();
//! assert_eq!(records, trace.records);
//!
//! // ...and replay them against a fresh memory hierarchy.
//! let mut engine = NullEngine;
//! let res = etpp_trace::replay(
//!     &ReplayParams::default(), MemParams::paper(), image, &records, &mut engine,
//! );
//! assert_eq!(res.accesses, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capture;
pub mod format;
pub mod io;
pub mod replay;

pub use capture::CaptureBuffer;
pub use format::{
    content_hash, content_hash_versioned, CapturedTrace, TraceMeta, TraceRecord, FORMAT_VERSION,
    MIN_FORMAT_VERSION,
};
pub use io::{TraceReader, TraceWriter};
pub use replay::{replay, replay_cancellable, ReplayParams, ReplayResult};
