//! Streaming trace file IO.
//!
//! [`TraceWriter`] encodes records as they arrive — nothing is buffered
//! beyond one record — so multi-gigabyte captures stream straight to disk.
//! [`TraceReader`] is an iterator over records and verifies the footer's
//! record count and content hash when the stream ends, so truncated or
//! corrupted trace files fail loudly rather than replaying garbage.

use crate::format::{
    fnv1a, ByteCursor, CapturedTrace, Decoder, Encoder, FormatError, TraceMeta, TraceRecord,
    FNV_OFFSET, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION, TAG_END,
};
use std::io::{self, Read, Write};

/// Errors produced while reading a trace stream.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structurally invalid stream.
    Format(FormatError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io error: {e}"),
            TraceIoError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<FormatError> for TraceIoError {
    fn from(e: FormatError) -> Self {
        TraceIoError::Format(e)
    }
}

fn fmt_err<T>(msg: impl Into<String>) -> Result<T, TraceIoError> {
    Err(TraceIoError::Format(FormatError(msg.into())))
}

/// Seed of the footer hash. Version 2 folds the header metadata
/// (version, workload, scale, capture-cycle count) into the seed, so a
/// corrupted header field fails the same loud check as a flipped
/// record byte; version 1 keeps the legacy records-only hash so files
/// written by older builds stay readable.
fn header_seed(version: u16, meta: &TraceMeta) -> u64 {
    if version < 2 {
        return FNV_OFFSET;
    }
    let mut bytes = Vec::with_capacity(meta.workload.len() + meta.scale.len() + 16);
    bytes.extend_from_slice(&version.to_le_bytes());
    for s in [&meta.workload, &meta.scale] {
        bytes.extend_from_slice(&(s.len() as u16).to_le_bytes());
        bytes.extend_from_slice(s.as_bytes());
    }
    crate::format::write_varint(&mut bytes, meta.capture_cycles);
    fnv1a(&bytes, FNV_OFFSET)
}

/// Streaming writer for the versioned trace format.
pub struct TraceWriter<W: Write> {
    out: W,
    enc: Encoder,
    buf: Vec<u8>,
    /// Records-only content hash (seed [`FNV_OFFSET`]): the value
    /// [`TraceWriter::finish`] returns, comparable with
    /// [`crate::format::content_hash_versioned`].
    hash: u64,
    /// Footer hash: records folded over [`header_seed`], so v2 headers
    /// are integrity-checked too.
    file_hash: u64,
    count: u64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Writes a [`FORMAT_VERSION`] header and returns a writer ready
    /// for records.
    pub fn new(out: W, meta: &TraceMeta) -> io::Result<Self> {
        Self::with_version(out, meta, FORMAT_VERSION)
    }

    /// Writes the header at a specific format version.
    ///
    /// Version [`MIN_FORMAT_VERSION`] (1) drops the dependence edges
    /// and the capture-cycle count — it exists so consumers without
    /// dependence-aware replay can still be fed.
    ///
    /// # Panics
    /// Panics when `version` is outside
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    pub fn with_version(mut out: W, meta: &TraceMeta, version: u16) -> io::Result<Self> {
        assert!(
            (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version),
            "cannot write trace version {version} (this build writes \
             {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
        );
        out.write_all(&MAGIC)?;
        out.write_all(&version.to_le_bytes())?;
        write_str(&mut out, &meta.workload)?;
        write_str(&mut out, &meta.scale)?;
        if version >= 2 {
            let mut buf = Vec::with_capacity(10);
            crate::format::write_varint(&mut buf, meta.capture_cycles);
            out.write_all(&buf)?;
        }
        Ok(TraceWriter {
            out,
            enc: Encoder::new(version),
            buf: Vec::with_capacity(32),
            hash: FNV_OFFSET,
            file_hash: header_seed(version, meta),
            count: 0,
            finished: false,
        })
    }

    /// Appends one record.
    pub fn record(&mut self, r: &TraceRecord) -> io::Result<()> {
        debug_assert!(!self.finished, "record() after finish()");
        self.buf.clear();
        self.enc.encode(r, &mut self.buf);
        self.hash = fnv1a(&self.buf, self.hash);
        self.file_hash = fnv1a(&self.buf, self.file_hash);
        self.count += 1;
        self.out.write_all(&self.buf)
    }

    /// Number of records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the footer (end marker, count, header-seeded file hash)
    /// and returns the underlying writer plus the records-only content
    /// hash (the cache-key value; identical to the footer's on v1).
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.finished = true;
        self.out.write_all(&[TAG_END])?;
        self.buf.clear();
        crate::format::write_varint(&mut self.buf, self.count);
        let buf = std::mem::take(&mut self.buf);
        self.out.write_all(&buf)?;
        self.out.write_all(&self.file_hash.to_le_bytes())?;
        self.out.flush()?;
        Ok((self.out, self.hash))
    }
}

fn write_str<W: Write>(out: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "metadata string too long");
    out.write_all(&(bytes.len() as u16).to_le_bytes())?;
    out.write_all(bytes)
}

fn read_str<R: Read>(src: &mut R) -> Result<String, TraceIoError> {
    let mut len = [0u8; 2];
    src.read_exact(&mut len)?;
    let mut bytes = vec![0u8; u16::from_le_bytes(len) as usize];
    src.read_exact(&mut bytes)?;
    match String::from_utf8(bytes) {
        Ok(s) => Ok(s),
        Err(_) => fmt_err("metadata string is not utf-8"),
    }
}

/// Reads one LEB128 varint directly off the stream (header fields only;
/// record varints decode from the buffered bytes).
fn read_varint<R: Read>(src: &mut R) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        src.read_exact(&mut b)?;
        if shift >= 64 {
            return fmt_err("varint overflow in header");
        }
        v |= ((b[0] & 0x7F) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Streaming reader: parses the header eagerly, then iterates records.
///
/// The reader slurps the remaining stream into memory in 64 KiB chunks as
/// needed; records decode lazily from the buffer. (Traces compress to a
/// few bytes per access, so even paper-scale captures fit comfortably.)
pub struct TraceReader<R: Read> {
    src: R,
    meta: TraceMeta,
    version: u16,
    bytes: Vec<u8>,
    pos: usize,
    dec: Decoder,
    hash: u64,
    count: u64,
    done: bool,
    src_exhausted: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parses the header; fails on bad magic or unsupported version.
    /// Any version in [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`] is
    /// accepted — the record decoder dispatches on the header version,
    /// so v1 traces stay readable (their dependence distances and
    /// capture-cycle count decode as zero).
    pub fn new(mut src: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic)?;
        if magic != MAGIC {
            return fmt_err("bad magic (not an ETPT trace)");
        }
        let mut ver = [0u8; 2];
        src.read_exact(&mut ver)?;
        let version = u16::from_le_bytes(ver);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return fmt_err(format!(
                "unsupported trace version {version} (this build reads versions \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            ));
        }
        let workload = read_str(&mut src)?;
        let scale = read_str(&mut src)?;
        let capture_cycles = if version >= 2 {
            read_varint(&mut src)?
        } else {
            0
        };
        let meta = TraceMeta {
            workload,
            scale,
            capture_cycles,
        };
        // Footer hash accumulator, seeded so v2 header corruption
        // fails verification exactly like a flipped record byte.
        let hash = header_seed(version, &meta);
        Ok(TraceReader {
            src,
            meta,
            version,
            bytes: Vec::new(),
            pos: 0,
            dec: Decoder::new(version),
            hash,
            count: 0,
            done: false,
            src_exhausted: false,
        })
    }

    /// Header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The file's format version (within
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Reads every remaining record, verifying the footer.
    pub fn read_to_end(mut self) -> Result<CapturedTrace, TraceIoError> {
        let mut records = Vec::new();
        for r in self.by_ref() {
            records.push(r?);
        }
        Ok(CapturedTrace {
            meta: self.meta,
            records,
        })
    }

    /// Ensures at least `n` unconsumed bytes are buffered (or the source is
    /// exhausted).
    fn fill(&mut self, n: usize) -> io::Result<()> {
        while !self.src_exhausted && self.bytes.len() - self.pos < n {
            let mut chunk = [0u8; 65536];
            let got = self.src.read(&mut chunk)?;
            if got == 0 {
                self.src_exhausted = true;
            } else {
                self.bytes.extend_from_slice(&chunk[..got]);
            }
        }
        Ok(())
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        if self.done {
            return Ok(None);
        }
        // A record is at most ~40 bytes; buffer generously.
        self.fill(64)?;
        if self.pos >= self.bytes.len() {
            return fmt_err("truncated trace: missing end marker");
        }
        let tag = self.bytes[self.pos];
        if tag == TAG_END {
            self.pos += 1;
            self.done = true;
            self.verify_footer()?;
            return Ok(None);
        }
        let start = self.pos + 1;
        let mut cur = ByteCursor {
            bytes: &self.bytes,
            pos: start,
        };
        // Name the failing record ordinal so a corrupt trace diagnoses
        // as "record N of file X", not a bare decoder error.
        // Name the failing record ordinal so a corrupt trace diagnoses
        // as "record N: ...", not a bare decoder error.
        let rec = self
            .dec
            .decode(tag, &mut cur)
            .map_err(|FormatError(msg)| FormatError(format!("record {}: {msg}", self.count)))?;
        let end = cur.pos;
        self.hash = fnv1a(&self.bytes[self.pos..end], self.hash);
        self.pos = end;
        self.count += 1;
        // Drop consumed bytes occasionally so memory stays bounded.
        if self.pos > 1 << 20 {
            self.bytes.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(rec))
    }

    fn verify_footer(&mut self) -> Result<(), TraceIoError> {
        self.fill(20)?;
        let mut cur = ByteCursor {
            bytes: &self.bytes,
            pos: self.pos,
        };
        let count = cur.varint()?;
        let pos = cur.pos;
        if self.bytes.len() < pos + 8 {
            return fmt_err("truncated trace footer");
        }
        let hash = u64::from_le_bytes(self.bytes[pos..pos + 8].try_into().expect("8 bytes"));
        if count != self.count {
            return fmt_err(format!(
                "record count mismatch: footer {count}, stream {}",
                self.count
            ));
        }
        if hash != self.hash {
            return fmt_err("content hash mismatch: trace corrupted (header or records)");
        }
        self.pos = pos + 8;
        Ok(())
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpp_mem::{AccessKind, ConfigOp};

    fn sample_records() -> Vec<TraceRecord> {
        let mut v = Vec::new();
        v.push(TraceRecord::Config {
            cycle: 0,
            op: ConfigOp::SetGlobal { idx: 1, value: 42 },
        });
        for i in 0..100u64 {
            v.push(TraceRecord::Access {
                cycle: 5 + i * 7,
                pc: 0x40 + (i as u32 % 3) * 4,
                vaddr: 0x1_0000 + i * 64,
                kind: if i % 5 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                value: if i % 5 == 0 { i * 3 } else { 0 },
                size: if i % 5 == 0 { 8 } else { 0 },
                dep: if i % 5 == 0 { 0 } else { (i % 4) as u32 },
            });
        }
        v
    }

    #[test]
    fn roundtrip_with_meta_and_footer() {
        let records = sample_records();
        let meta = TraceMeta::new("HJ-8", "tiny").with_capture_cycles(123_456);
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &meta).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        let (_, hash) = w.finish().unwrap();
        assert_eq!(hash, crate::format::content_hash(&records));

        let r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.meta().workload, "HJ-8");
        assert_eq!(r.version(), crate::format::FORMAT_VERSION);
        let back = r.read_to_end().unwrap();
        assert_eq!(back.records, records);
        assert_eq!(back.meta, meta);
    }

    #[test]
    fn v1_roundtrip_drops_deps_and_capture_cycles() {
        let records = sample_records();
        let meta = TraceMeta::new("HJ-8", "tiny").with_capture_cycles(99);
        let mut buf = Vec::new();
        let mut w = TraceWriter::with_version(&mut buf, &meta, 1).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        let (_, hash) = w.finish().unwrap();
        assert_eq!(hash, crate::format::content_hash_versioned(&records, 1));

        let r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.version(), 1);
        let back = r.read_to_end().unwrap();
        assert_eq!(back.meta.capture_cycles, 0, "v1 headers carry no cycles");
        let stripped: Vec<TraceRecord> = records
            .iter()
            .map(|r| match r.clone() {
                TraceRecord::Access {
                    cycle,
                    pc,
                    vaddr,
                    kind,
                    value,
                    size,
                    ..
                } => TraceRecord::Access {
                    cycle,
                    pc,
                    vaddr,
                    kind,
                    value,
                    size,
                    dep: 0,
                },
                c => c,
            })
            .collect();
        assert_eq!(back.records, stripped);
    }

    #[test]
    fn corrupted_v2_header_field_is_detected() {
        // capture_cycles = 777 encodes as the 2-byte varint [0x89,
        // 0x06] right after the two header strings. Flip its low bits
        // so it still parses as a valid varint (to 649): the footer
        // hash is seeded with the header metadata, so the corruption
        // must fail verification like any flipped record byte.
        let records = sample_records();
        let meta = TraceMeta::new("HJ-8", "tiny").with_capture_cycles(777);
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &meta).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        w.finish().unwrap();
        let field_at = MAGIC.len() + 2 + (2 + "HJ-8".len()) + (2 + "tiny".len());
        assert_eq!(&buf[field_at..field_at + 2], &[0x89, 0x06]);
        buf[field_at + 1] = 0x05;
        let r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.meta().capture_cycles, 649, "corrupted field parses");
        let res = r.read_to_end();
        assert!(
            res.is_err(),
            "header corruption must not produce a validated trace"
        );
    }

    #[test]
    fn unsupported_version_names_accepted_range() {
        // MAGIC + version 99 + empty workload/scale strings.
        let mut buf = Vec::new();
        buf.extend_from_slice(&crate::format::MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0]);
        let Err(err) = TraceReader::new(buf.as_slice()) else {
            panic!("version 99 must be rejected");
        };
        let msg = err.to_string();
        assert!(
            msg.contains("unsupported trace version 99"),
            "message must name the file's version: {msg}"
        );
        assert!(
            msg.contains(&format!(
                "{}..={}",
                crate::format::MIN_FORMAT_VERSION,
                crate::format::FORMAT_VERSION
            )),
            "message must name the accepted range: {msg}"
        );
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let records = sample_records();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &TraceMeta::new("x", "tiny")).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        w.finish().unwrap();
        // Flip a byte in the middle of the record stream.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x55;
        let res = TraceReader::new(buf.as_slice()).and_then(|r| r.read_to_end());
        assert!(res.is_err(), "corruption must not round-trip silently");
    }

    #[test]
    fn truncation_is_detected() {
        let records = sample_records();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &TraceMeta::new("x", "tiny")).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        w.finish().unwrap();
        buf.truncate(buf.len() - 4);
        let res = TraceReader::new(buf.as_slice()).and_then(|r| r.read_to_end());
        assert!(res.is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let res = TraceReader::new(&b"NOPE\x01\x00"[..]);
        assert!(res.is_err());
    }
}
