//! In-memory capture buffer fed by the simulator's capture hooks.
//!
//! The cycle-level simulator records retired memory operations (via
//! [`etpp_cpu::Core`]'s retirement capture hook) and retired
//! prefetcher-configuration instructions into a [`CaptureBuffer`]; the
//! result is a [`CapturedTrace`] ready for [`crate::replay`] or for
//! streaming to disk with [`crate::TraceWriter`].

use crate::format::{CapturedTrace, TraceMeta, TraceRecord};
use etpp_mem::{AccessKind, ConfigOp};

/// Accumulates capture-hook events in retirement order.
#[derive(Debug, Clone)]
pub struct CaptureBuffer {
    meta: TraceMeta,
    records: Vec<TraceRecord>,
    last_cycle: u64,
}

impl CaptureBuffer {
    /// Creates an empty buffer for the given workload metadata.
    pub fn new(meta: TraceMeta) -> Self {
        CaptureBuffer {
            meta,
            records: Vec::new(),
            last_cycle: 0,
        }
    }

    /// Records a retired demand access. `value`/`size` carry store data
    /// and are ignored for loads; `dep` is the load→load dependence
    /// distance (captured-load ordinals back to the address producer,
    /// 0 = none) and is ignored for stores.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        cycle: u64,
        pc: u32,
        vaddr: u64,
        kind: AccessKind,
        value: u64,
        size: u8,
        dep: u32,
    ) {
        debug_assert!(
            cycle >= self.last_cycle,
            "capture stream must be in time order"
        );
        self.last_cycle = cycle;
        let (value, size, dep) = match kind {
            AccessKind::Load => (0, 0, dep),
            AccessKind::Store => (value, size, 0),
        };
        self.records.push(TraceRecord::Access {
            cycle,
            pc,
            vaddr,
            kind,
            value,
            size,
            dep,
        });
    }

    /// Records a retired prefetcher-configuration instruction.
    pub fn config(&mut self, cycle: u64, op: &ConfigOp) {
        debug_assert!(
            cycle >= self.last_cycle,
            "capture stream must be in time order"
        );
        self.last_cycle = cycle;
        self.records.push(TraceRecord::Config {
            cycle,
            op: op.clone(),
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finalises the capture.
    pub fn finish(self) -> CapturedTrace {
        CapturedTrace {
            meta: self.meta,
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_drop_store_payload() {
        let mut c = CaptureBuffer::new(TraceMeta::new("t", "tiny"));
        c.access(1, 4, 0x40, AccessKind::Load, 999, 8, 0);
        let t = c.finish();
        match &t.records[0] {
            TraceRecord::Access { value, size, .. } => {
                assert_eq!((*value, *size), (0, 0));
            }
            _ => panic!("expected access"),
        }
    }

    #[test]
    fn stores_drop_dep_edges() {
        let mut c = CaptureBuffer::new(TraceMeta::new("t", "tiny"));
        c.access(1, 4, 0x40, AccessKind::Store, 7, 8, 3);
        c.access(2, 8, 0x80, AccessKind::Load, 0, 0, 3);
        let t = c.finish();
        match (&t.records[0], &t.records[1]) {
            (TraceRecord::Access { dep: st_dep, .. }, TraceRecord::Access { dep: ld_dep, .. }) => {
                assert_eq!(*st_dep, 0, "dependence edges are a load concept");
                assert_eq!(*ld_dep, 3);
            }
            _ => panic!("expected accesses"),
        }
    }

    #[test]
    fn interleaves_configs_in_order() {
        let mut c = CaptureBuffer::new(TraceMeta::new("t", "tiny"));
        c.access(1, 4, 0x40, AccessKind::Load, 0, 0, 0);
        c.config(2, &ConfigOp::Enable(true));
        c.access(3, 8, 0x80, AccessKind::Store, 7, 8, 0);
        let t = c.finish();
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.access_count(), 2);
        assert!(t.records.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
    }
}
