//! The trace record model and its delta-encoded binary layout.
//!
//! ## Layout (version 1)
//!
//! ```text
//! magic  "ETPT"                       4 bytes
//! version u16 LE                      2 bytes
//! workload-name  len:u16 LE + utf8
//! scale          len:u16 LE + utf8
//! records        tagged, delta-encoded (see below)
//! end marker     0xFF
//! record count   varint
//! content hash   u64 LE  (FNV-1a over every encoded record byte)
//! ```
//!
//! Each record starts with a tag byte (`0` load, `1` store, `2` config).
//! Cycles are encoded as varint deltas from the previous record (the
//! stream is non-decreasing in time); PCs and virtual addresses as
//! zigzag-varint deltas from the previous record's values, which turns
//! the regular strides of these workloads into single-byte deltas.
//! Store records additionally carry the access size and the store data
//! (so replay can commit real values and still validate checksums);
//! config records carry a compact [`ConfigOp`] encoding.

use etpp_mem::{AccessKind, ConfigOp, FilterFlags, RangeId, TagId};

/// On-disk format version written and accepted by this build.
pub const FORMAT_VERSION: u16 = 1;

/// Magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"ETPT";

/// Record tags (also the end-of-stream marker).
pub(crate) const TAG_LOAD: u8 = 0;
pub(crate) const TAG_STORE: u8 = 1;
pub(crate) const TAG_CONFIG: u8 = 2;
pub(crate) const TAG_END: u8 = 0xFF;

/// Workload metadata stored in the trace header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark name (Table 2 spelling, e.g. `"HJ-8"`).
    pub workload: String,
    /// Input scale the trace was captured at (`"tiny"`, `"small"`, ...).
    pub scale: String,
}

impl TraceMeta {
    /// Convenience constructor.
    pub fn new(workload: impl Into<String>, scale: impl Into<String>) -> Self {
        TraceMeta {
            workload: workload.into(),
            scale: scale.into(),
        }
    }
}

/// One captured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A retired demand access.
    Access {
        /// Retirement cycle in the capture run.
        cycle: u64,
        /// Static program counter.
        pc: u32,
        /// Virtual address accessed.
        vaddr: u64,
        /// Load or store.
        kind: AccessKind,
        /// Store data (stores only; 0 for loads).
        value: u64,
        /// Access size in bytes (stores only; 0 for loads).
        size: u8,
    },
    /// A retired prefetcher-configuration instruction.
    Config {
        /// Retirement cycle in the capture run.
        cycle: u64,
        /// The operation to forward to the attached engine.
        op: ConfigOp,
    },
}

impl TraceRecord {
    /// The record's capture-run cycle.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceRecord::Access { cycle, .. } | TraceRecord::Config { cycle, .. } => *cycle,
        }
    }
}

/// A fully-captured trace: metadata plus records in retirement order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedTrace {
    /// Header metadata.
    pub meta: TraceMeta,
    /// Records in non-decreasing cycle order.
    pub records: Vec<TraceRecord>,
}

impl CapturedTrace {
    /// Number of demand accesses (excluding config records).
    pub fn access_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Access { .. }))
            .count() as u64
    }
}

// ---------------------------------------------------------------------------
// varint / zigzag primitives (LEB128)
// ---------------------------------------------------------------------------

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a over a byte slice — the integrity/content hash of the format.
pub fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Content hash of an encoded record stream (what the footer stores).
///
/// Exposed so callers can key disk caches by trace content without
/// re-reading files: encode, hash, compare.
pub fn content_hash(records: &[TraceRecord]) -> u64 {
    let mut enc = Encoder::new();
    let mut buf = Vec::new();
    let mut h = FNV_OFFSET;
    for r in records {
        buf.clear();
        enc.encode(r, &mut buf);
        h = fnv1a(&buf, h);
    }
    h
}

// ---------------------------------------------------------------------------
// record encoder/decoder with delta state
// ---------------------------------------------------------------------------

/// Streaming encoder state: previous cycle/pc/vaddr for delta coding.
#[derive(Debug, Default, Clone)]
pub(crate) struct Encoder {
    prev_cycle: u64,
    prev_pc: u32,
    prev_vaddr: u64,
}

impl Encoder {
    pub(crate) fn new() -> Self {
        Encoder::default()
    }

    /// Appends the encoding of `r` to `out`.
    pub(crate) fn encode(&mut self, r: &TraceRecord, out: &mut Vec<u8>) {
        match r {
            TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind,
                value,
                size,
            } => {
                out.push(match kind {
                    AccessKind::Load => TAG_LOAD,
                    AccessKind::Store => TAG_STORE,
                });
                write_varint(out, cycle.wrapping_sub(self.prev_cycle));
                write_varint(out, zigzag(*pc as i64 - self.prev_pc as i64));
                write_varint(out, zigzag(vaddr.wrapping_sub(self.prev_vaddr) as i64));
                if *kind == AccessKind::Store {
                    out.push(*size);
                    write_varint(out, *value);
                }
                self.prev_cycle = *cycle;
                self.prev_pc = *pc;
                self.prev_vaddr = *vaddr;
            }
            TraceRecord::Config { cycle, op } => {
                out.push(TAG_CONFIG);
                write_varint(out, cycle.wrapping_sub(self.prev_cycle));
                encode_config(op, out);
                self.prev_cycle = *cycle;
            }
        }
    }
}

/// Streaming decoder state mirroring [`Encoder`].
#[derive(Debug, Default, Clone)]
pub(crate) struct Decoder {
    prev_cycle: u64,
    prev_pc: u32,
    prev_vaddr: u64,
}

/// A malformed trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace format error: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

pub(crate) struct ByteCursor<'a> {
    pub bytes: &'a [u8],
    pub pos: usize,
}

impl ByteCursor<'_> {
    pub(crate) fn u8(&mut self) -> Result<u8, FormatError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| FormatError("unexpected end of record".into()))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, FormatError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(FormatError("varint overflow".into()));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

impl Decoder {
    pub(crate) fn new() -> Self {
        Decoder::default()
    }

    /// Decodes one record starting at `cur` (tag already consumed).
    pub(crate) fn decode(
        &mut self,
        tag: u8,
        cur: &mut ByteCursor<'_>,
    ) -> Result<TraceRecord, FormatError> {
        match tag {
            TAG_LOAD | TAG_STORE => {
                let cycle = self.prev_cycle.wrapping_add(cur.varint()?);
                let pc = (self.prev_pc as i64 + unzigzag(cur.varint()?)) as u32;
                let vaddr = self.prev_vaddr.wrapping_add(unzigzag(cur.varint()?) as u64);
                let (kind, value, size) = if tag == TAG_STORE {
                    let size = cur.u8()?;
                    let value = cur.varint()?;
                    (AccessKind::Store, value, size)
                } else {
                    (AccessKind::Load, 0, 0)
                };
                self.prev_cycle = cycle;
                self.prev_pc = pc;
                self.prev_vaddr = vaddr;
                Ok(TraceRecord::Access {
                    cycle,
                    pc,
                    vaddr,
                    kind,
                    value,
                    size,
                })
            }
            TAG_CONFIG => {
                let cycle = self.prev_cycle.wrapping_add(cur.varint()?);
                let op = decode_config(cur)?;
                self.prev_cycle = cycle;
                Ok(TraceRecord::Config { cycle, op })
            }
            other => Err(FormatError(format!("unknown record tag {other:#x}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// ConfigOp encoding
// ---------------------------------------------------------------------------

const CFG_SET_RANGE: u8 = 0;
const CFG_CLEAR_RANGE: u8 = 1;
const CFG_SET_GLOBAL: u8 = 2;
const CFG_SET_TAG_KERNEL: u8 = 3;
const CFG_ENABLE: u8 = 4;

fn write_opt_u16(out: &mut Vec<u8>, v: Option<u16>) {
    match v {
        None => write_varint(out, 0),
        Some(x) => write_varint(out, x as u64 + 1),
    }
}

fn read_opt_u16(cur: &mut ByteCursor<'_>) -> Result<Option<u16>, FormatError> {
    let v = cur.varint()?;
    Ok(if v == 0 { None } else { Some((v - 1) as u16) })
}

fn encode_config(op: &ConfigOp, out: &mut Vec<u8>) {
    match op {
        ConfigOp::SetRange {
            id,
            lo,
            hi,
            on_load,
            on_prefetch,
            flags,
        } => {
            out.push(CFG_SET_RANGE);
            write_varint(out, id.0 as u64);
            write_varint(out, *lo);
            write_varint(out, *hi);
            write_opt_u16(out, *on_load);
            write_opt_u16(out, *on_prefetch);
            out.push(
                (flags.ewma_iteration as u8)
                    | (flags.ewma_chain_start as u8) << 1
                    | (flags.ewma_chain_end as u8) << 2,
            );
        }
        ConfigOp::ClearRange { id } => {
            out.push(CFG_CLEAR_RANGE);
            write_varint(out, id.0 as u64);
        }
        ConfigOp::SetGlobal { idx, value } => {
            out.push(CFG_SET_GLOBAL);
            out.push(*idx);
            write_varint(out, *value);
        }
        ConfigOp::SetTagKernel {
            tag,
            kernel,
            chain_end,
        } => {
            out.push(CFG_SET_TAG_KERNEL);
            write_varint(out, tag.0 as u64);
            write_varint(out, *kernel as u64);
            out.push(*chain_end as u8);
        }
        ConfigOp::Enable(on) => {
            out.push(CFG_ENABLE);
            out.push(*on as u8);
        }
    }
}

fn decode_config(cur: &mut ByteCursor<'_>) -> Result<ConfigOp, FormatError> {
    match cur.u8()? {
        CFG_SET_RANGE => {
            let id = RangeId(cur.varint()? as u16);
            let lo = cur.varint()?;
            let hi = cur.varint()?;
            let on_load = read_opt_u16(cur)?;
            let on_prefetch = read_opt_u16(cur)?;
            let f = cur.u8()?;
            Ok(ConfigOp::SetRange {
                id,
                lo,
                hi,
                on_load,
                on_prefetch,
                flags: FilterFlags {
                    ewma_iteration: f & 1 != 0,
                    ewma_chain_start: f & 2 != 0,
                    ewma_chain_end: f & 4 != 0,
                },
            })
        }
        CFG_CLEAR_RANGE => Ok(ConfigOp::ClearRange {
            id: RangeId(cur.varint()? as u16),
        }),
        CFG_SET_GLOBAL => {
            let idx = cur.u8()?;
            let value = cur.varint()?;
            Ok(ConfigOp::SetGlobal { idx, value })
        }
        CFG_SET_TAG_KERNEL => {
            let tag = TagId(cur.varint()? as u16);
            let kernel = cur.varint()? as u16;
            let chain_end = cur.u8()? != 0;
            Ok(ConfigOp::SetTagKernel {
                tag,
                kernel,
                chain_end,
            })
        }
        CFG_ENABLE => Ok(ConfigOp::Enable(cur.u8()? != 0)),
        other => Err(FormatError(format!("unknown config tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut cur = ByteCursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cur.varint().unwrap(), v);
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn sequential_accesses_encode_small() {
        // A 64-byte-strided stream should cost only a few bytes per record.
        let mut enc = Encoder::new();
        let mut out = Vec::new();
        for i in 0..1000u64 {
            enc.encode(
                &TraceRecord::Access {
                    cycle: i * 3,
                    pc: 0x400,
                    vaddr: 0x10000 + i * 64,
                    kind: AccessKind::Load,
                    value: 0,
                    size: 0,
                },
                &mut out,
            );
        }
        // tag + 1-byte cycle delta + 1-byte pc delta + 2-byte vaddr delta.
        assert!(
            out.len() <= 1000 * 5 + 8,
            "strided loads should be ~5 bytes each, got {} total",
            out.len()
        );
    }

    #[test]
    fn config_ops_roundtrip() {
        let ops = vec![
            ConfigOp::SetRange {
                id: RangeId(3),
                lo: 0x1000,
                hi: 0x2000,
                on_load: Some(7),
                on_prefetch: None,
                flags: FilterFlags {
                    ewma_iteration: true,
                    ewma_chain_start: false,
                    ewma_chain_end: true,
                },
            },
            ConfigOp::ClearRange { id: RangeId(9) },
            ConfigOp::SetGlobal {
                idx: 5,
                value: u64::MAX,
            },
            ConfigOp::SetTagKernel {
                tag: TagId(2),
                kernel: 11,
                chain_end: true,
            },
            ConfigOp::Enable(false),
        ];
        for op in ops {
            let mut buf = Vec::new();
            encode_config(&op, &mut buf);
            let mut cur = ByteCursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(decode_config(&mut cur).unwrap(), op);
        }
    }

    #[test]
    fn content_hash_is_order_sensitive() {
        let a = TraceRecord::Access {
            cycle: 1,
            pc: 1,
            vaddr: 0x40,
            kind: AccessKind::Load,
            value: 0,
            size: 0,
        };
        let b = TraceRecord::Access {
            cycle: 2,
            pc: 2,
            vaddr: 0x80,
            kind: AccessKind::Load,
            value: 0,
            size: 0,
        };
        assert_ne!(content_hash(&[a.clone(), b.clone()]), content_hash(&[b, a]));
    }
}
