//! The trace record model and its delta-encoded binary layout.
//!
//! ## Layout (versions 1 and 2)
//!
//! ```text
//! magic  "ETPT"                       4 bytes
//! version u16 LE                      2 bytes
//! workload-name  len:u16 LE + utf8
//! scale          len:u16 LE + utf8
//! capture-cycles varint               (v2 only: capture-run cycle count)
//! records        tagged, delta-encoded (see below)
//! end marker     0xFF
//! record count   varint
//! content hash   u64 LE  (FNV-1a over every encoded record byte)
//! ```
//!
//! Each record starts with a tag byte (`0` load, `1` store, `2` config).
//! Cycles are encoded as varint deltas from the previous record (the
//! stream is non-decreasing in time); PCs and virtual addresses as
//! zigzag-varint deltas from the previous record's values, which turns
//! the regular strides of these workloads into single-byte deltas.
//! Store records additionally carry the access size and the store data
//! (so replay can commit real values and still validate checksums);
//! config records carry a compact [`ConfigOp`] encoding.
//!
//! ## Version 2: load→load dependence edges
//!
//! Version 2 load records additionally carry the record's *dependence
//! distance*: how many captured load records back the load sits whose
//! result feeds this load's address (0 = address independent of any
//! in-flight load). The capture hooks in `etpp_cpu::Core` track
//! register producers through the ALU dataflow, so a pointer chase
//! `p = p->next` records distance 1 per hop while streaming loops
//! record none. Distances are zigzag-delta coded against the previous
//! load's distance — chases encode as runs of zero bytes. Replay uses
//! the edges to model pointer-chase serialisation instead of a fixed
//! issue window (see [`crate::replay`]).
//!
//! Readers accept [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`] and
//! dispatch on the header version; a version-1 stream decodes with
//! every dependence distance (and the capture-cycle count) zero.

use etpp_mem::{AccessKind, ConfigOp, FilterFlags, RangeId, TagId};

/// On-disk format version written by default by this build.
pub const FORMAT_VERSION: u16 = 2;

/// Oldest on-disk format version this build still reads (and can be
/// asked to write, for consumers without dependence-aware replay).
pub const MIN_FORMAT_VERSION: u16 = 1;

/// Magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"ETPT";

/// Record tags (also the end-of-stream marker).
pub(crate) const TAG_LOAD: u8 = 0;
pub(crate) const TAG_STORE: u8 = 1;
pub(crate) const TAG_CONFIG: u8 = 2;
pub(crate) const TAG_END: u8 = 0xFF;

/// Workload metadata stored in the trace header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark name (Table 2 spelling, e.g. `"HJ-8"`).
    pub workload: String,
    /// Input scale the trace was captured at (`"tiny"`, `"small"`, ...).
    pub scale: String,
    /// Total cycles of the capture run (v2 headers; 0 = unknown/v1).
    /// Lets replay consumers report absolute-cycle agreement against
    /// the cycle core without re-running the capture.
    pub capture_cycles: u64,
}

impl TraceMeta {
    /// Convenience constructor (capture-cycle count unknown).
    pub fn new(workload: impl Into<String>, scale: impl Into<String>) -> Self {
        TraceMeta {
            workload: workload.into(),
            scale: scale.into(),
            capture_cycles: 0,
        }
    }

    /// Attaches the capture run's total cycle count (stored in v2
    /// headers).
    pub fn with_capture_cycles(mut self, cycles: u64) -> Self {
        self.capture_cycles = cycles;
        self
    }
}

/// One captured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A retired demand access.
    Access {
        /// Retirement cycle in the capture run.
        cycle: u64,
        /// Static program counter.
        pc: u32,
        /// Virtual address accessed.
        vaddr: u64,
        /// Load or store.
        kind: AccessKind,
        /// Store data (stores only; 0 for loads).
        value: u64,
        /// Access size in bytes (stores only; 0 for loads).
        size: u8,
        /// Load→load dependence distance in captured-load ordinals:
        /// this load's address is fed by the load `dep` load records
        /// earlier in the stream. 0 = no recorded producer (always 0
        /// for stores and for streams decoded from version-1 traces).
        dep: u32,
    },
    /// A retired prefetcher-configuration instruction.
    Config {
        /// Retirement cycle in the capture run.
        cycle: u64,
        /// The operation to forward to the attached engine.
        op: ConfigOp,
    },
}

impl TraceRecord {
    /// The record's capture-run cycle.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceRecord::Access { cycle, .. } | TraceRecord::Config { cycle, .. } => *cycle,
        }
    }
}

/// A fully-captured trace: metadata plus records in retirement order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedTrace {
    /// Header metadata.
    pub meta: TraceMeta,
    /// Records in non-decreasing cycle order.
    pub records: Vec<TraceRecord>,
}

impl CapturedTrace {
    /// Number of demand accesses (excluding config records).
    pub fn access_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Access { .. }))
            .count() as u64
    }
}

// ---------------------------------------------------------------------------
// varint / zigzag primitives (LEB128)
// ---------------------------------------------------------------------------

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a over a byte slice — the integrity/content hash of the format.
pub fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Content hash of an encoded record stream (what the footer stores),
/// under the default [`FORMAT_VERSION`] encoding.
///
/// Exposed so callers can key disk caches by trace content without
/// re-reading files: encode, hash, compare.
pub fn content_hash(records: &[TraceRecord]) -> u64 {
    content_hash_versioned(records, FORMAT_VERSION)
}

/// [`content_hash`] under a specific format version's encoding (the
/// footer of a version-`v` file stores the version-`v` hash).
pub fn content_hash_versioned(records: &[TraceRecord], version: u16) -> u64 {
    let mut enc = Encoder::new(version);
    let mut buf = Vec::new();
    let mut h = FNV_OFFSET;
    for r in records {
        buf.clear();
        enc.encode(r, &mut buf);
        h = fnv1a(&buf, h);
    }
    h
}

// ---------------------------------------------------------------------------
// record encoder/decoder with delta state
// ---------------------------------------------------------------------------

/// Streaming encoder state: previous cycle/pc/vaddr (and, for v2, the
/// previous load's dependence distance) for delta coding.
#[derive(Debug, Clone)]
pub(crate) struct Encoder {
    version: u16,
    prev_cycle: u64,
    prev_pc: u32,
    prev_vaddr: u64,
    prev_dep: u32,
}

impl Encoder {
    pub(crate) fn new(version: u16) -> Self {
        debug_assert!((MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version));
        Encoder {
            version,
            prev_cycle: 0,
            prev_pc: 0,
            prev_vaddr: 0,
            prev_dep: 0,
        }
    }

    /// Appends the encoding of `r` to `out`. Encoding a v2 record
    /// stream at version 1 silently drops the dependence edges (the
    /// v1 layout has nowhere to put them).
    pub(crate) fn encode(&mut self, r: &TraceRecord, out: &mut Vec<u8>) {
        match r {
            TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind,
                value,
                size,
                dep,
            } => {
                out.push(match kind {
                    AccessKind::Load => TAG_LOAD,
                    AccessKind::Store => TAG_STORE,
                });
                write_varint(out, cycle.wrapping_sub(self.prev_cycle));
                write_varint(out, zigzag(*pc as i64 - self.prev_pc as i64));
                write_varint(out, zigzag(vaddr.wrapping_sub(self.prev_vaddr) as i64));
                match kind {
                    AccessKind::Store => {
                        out.push(*size);
                        write_varint(out, *value);
                    }
                    AccessKind::Load if self.version >= 2 => {
                        write_varint(out, zigzag(*dep as i64 - self.prev_dep as i64));
                        self.prev_dep = *dep;
                    }
                    AccessKind::Load => {}
                }
                self.prev_cycle = *cycle;
                self.prev_pc = *pc;
                self.prev_vaddr = *vaddr;
            }
            TraceRecord::Config { cycle, op } => {
                out.push(TAG_CONFIG);
                write_varint(out, cycle.wrapping_sub(self.prev_cycle));
                encode_config(op, out);
                self.prev_cycle = *cycle;
            }
        }
    }
}

/// Streaming decoder state mirroring [`Encoder`].
#[derive(Debug, Clone)]
pub(crate) struct Decoder {
    version: u16,
    prev_cycle: u64,
    prev_pc: u32,
    prev_vaddr: u64,
    prev_dep: u32,
}

/// A malformed trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace format error: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

pub(crate) struct ByteCursor<'a> {
    pub bytes: &'a [u8],
    pub pos: usize,
}

impl ByteCursor<'_> {
    pub(crate) fn u8(&mut self) -> Result<u8, FormatError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| FormatError("unexpected end of record".into()))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, FormatError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(FormatError("varint overflow".into()));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

impl Decoder {
    pub(crate) fn new(version: u16) -> Self {
        debug_assert!((MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version));
        Decoder {
            version,
            prev_cycle: 0,
            prev_pc: 0,
            prev_vaddr: 0,
            prev_dep: 0,
        }
    }

    /// Decodes one record starting at `cur` (tag already consumed).
    pub(crate) fn decode(
        &mut self,
        tag: u8,
        cur: &mut ByteCursor<'_>,
    ) -> Result<TraceRecord, FormatError> {
        match tag {
            TAG_LOAD | TAG_STORE => {
                let cycle = self.prev_cycle.wrapping_add(cur.varint()?);
                // Wrapping: identical to `prev + delta` for any stream the
                // encoder emits, and panic-free on corrupt deltas (the
                // footer hash rejects the record stream afterwards).
                let pc = (self.prev_pc as i64).wrapping_add(unzigzag(cur.varint()?)) as u32;
                let vaddr = self.prev_vaddr.wrapping_add(unzigzag(cur.varint()?) as u64);
                let (kind, value, size, dep) = if tag == TAG_STORE {
                    let size = cur.u8()?;
                    let value = cur.varint()?;
                    (AccessKind::Store, value, size, 0)
                } else if self.version >= 2 {
                    let dep = (self.prev_dep as i64).wrapping_add(unzigzag(cur.varint()?)) as u32;
                    self.prev_dep = dep;
                    (AccessKind::Load, 0, 0, dep)
                } else {
                    (AccessKind::Load, 0, 0, 0)
                };
                self.prev_cycle = cycle;
                self.prev_pc = pc;
                self.prev_vaddr = vaddr;
                Ok(TraceRecord::Access {
                    cycle,
                    pc,
                    vaddr,
                    kind,
                    value,
                    size,
                    dep,
                })
            }
            TAG_CONFIG => {
                let cycle = self.prev_cycle.wrapping_add(cur.varint()?);
                let op = decode_config(cur)?;
                self.prev_cycle = cycle;
                Ok(TraceRecord::Config { cycle, op })
            }
            other => Err(FormatError(format!("unknown record tag {other:#x}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// ConfigOp encoding
// ---------------------------------------------------------------------------

const CFG_SET_RANGE: u8 = 0;
const CFG_CLEAR_RANGE: u8 = 1;
const CFG_SET_GLOBAL: u8 = 2;
const CFG_SET_TAG_KERNEL: u8 = 3;
const CFG_ENABLE: u8 = 4;

fn write_opt_u16(out: &mut Vec<u8>, v: Option<u16>) {
    match v {
        None => write_varint(out, 0),
        Some(x) => write_varint(out, x as u64 + 1),
    }
}

fn read_opt_u16(cur: &mut ByteCursor<'_>) -> Result<Option<u16>, FormatError> {
    let v = cur.varint()?;
    Ok(if v == 0 { None } else { Some((v - 1) as u16) })
}

fn encode_config(op: &ConfigOp, out: &mut Vec<u8>) {
    match op {
        ConfigOp::SetRange {
            id,
            lo,
            hi,
            on_load,
            on_prefetch,
            flags,
        } => {
            out.push(CFG_SET_RANGE);
            write_varint(out, id.0 as u64);
            write_varint(out, *lo);
            write_varint(out, *hi);
            write_opt_u16(out, *on_load);
            write_opt_u16(out, *on_prefetch);
            out.push(
                (flags.ewma_iteration as u8)
                    | (flags.ewma_chain_start as u8) << 1
                    | (flags.ewma_chain_end as u8) << 2,
            );
        }
        ConfigOp::ClearRange { id } => {
            out.push(CFG_CLEAR_RANGE);
            write_varint(out, id.0 as u64);
        }
        ConfigOp::SetGlobal { idx, value } => {
            out.push(CFG_SET_GLOBAL);
            out.push(*idx);
            write_varint(out, *value);
        }
        ConfigOp::SetTagKernel {
            tag,
            kernel,
            chain_end,
        } => {
            out.push(CFG_SET_TAG_KERNEL);
            write_varint(out, tag.0 as u64);
            write_varint(out, *kernel as u64);
            out.push(*chain_end as u8);
        }
        ConfigOp::Enable(on) => {
            out.push(CFG_ENABLE);
            out.push(*on as u8);
        }
    }
}

fn decode_config(cur: &mut ByteCursor<'_>) -> Result<ConfigOp, FormatError> {
    match cur.u8()? {
        CFG_SET_RANGE => {
            let id = RangeId(cur.varint()? as u16);
            let lo = cur.varint()?;
            let hi = cur.varint()?;
            let on_load = read_opt_u16(cur)?;
            let on_prefetch = read_opt_u16(cur)?;
            let f = cur.u8()?;
            Ok(ConfigOp::SetRange {
                id,
                lo,
                hi,
                on_load,
                on_prefetch,
                flags: FilterFlags {
                    ewma_iteration: f & 1 != 0,
                    ewma_chain_start: f & 2 != 0,
                    ewma_chain_end: f & 4 != 0,
                },
            })
        }
        CFG_CLEAR_RANGE => Ok(ConfigOp::ClearRange {
            id: RangeId(cur.varint()? as u16),
        }),
        CFG_SET_GLOBAL => {
            let idx = cur.u8()?;
            let value = cur.varint()?;
            Ok(ConfigOp::SetGlobal { idx, value })
        }
        CFG_SET_TAG_KERNEL => {
            let tag = TagId(cur.varint()? as u16);
            let kernel = cur.varint()? as u16;
            let chain_end = cur.u8()? != 0;
            Ok(ConfigOp::SetTagKernel {
                tag,
                kernel,
                chain_end,
            })
        }
        CFG_ENABLE => Ok(ConfigOp::Enable(cur.u8()? != 0)),
        other => Err(FormatError(format!("unknown config tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut cur = ByteCursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cur.varint().unwrap(), v);
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn sequential_accesses_encode_small() {
        // A 64-byte-strided stream should cost only a few bytes per record.
        let mut enc = Encoder::new(FORMAT_VERSION);
        let mut out = Vec::new();
        for i in 0..1000u64 {
            enc.encode(
                &TraceRecord::Access {
                    cycle: i * 3,
                    pc: 0x400,
                    vaddr: 0x10000 + i * 64,
                    kind: AccessKind::Load,
                    value: 0,
                    size: 0,
                    dep: 0,
                },
                &mut out,
            );
        }
        // tag + 1-byte cycle delta + 1-byte pc delta + 2-byte vaddr delta
        // + 1-byte dep delta.
        assert!(
            out.len() <= 1000 * 6 + 8,
            "strided loads should be ~6 bytes each, got {} total",
            out.len()
        );
    }

    #[test]
    fn pointer_chase_deps_encode_as_single_zero_bytes() {
        // A dep-distance-1 chain delta-encodes every dep after the first
        // as zigzag(0) = one zero byte: v2 costs exactly one byte per
        // load over v1 on this stream.
        let mk = |dep| TraceRecord::Access {
            cycle: 0,
            pc: 0x40,
            vaddr: 0x1000,
            kind: AccessKind::Load,
            value: 0,
            size: 0,
            dep,
        };
        let records: Vec<TraceRecord> = (0..100).map(|i| mk(if i == 0 { 0 } else { 1 })).collect();
        let mut v1 = Vec::new();
        let mut v2 = Vec::new();
        let mut e1 = Encoder::new(1);
        let mut e2 = Encoder::new(2);
        for r in &records {
            e1.encode(r, &mut v1);
            e2.encode(r, &mut v2);
        }
        assert_eq!(v2.len(), v1.len() + records.len());
    }

    #[test]
    fn v2_deps_roundtrip_and_v1_drops_them() {
        let records: Vec<TraceRecord> = (0..50u64)
            .map(|i| TraceRecord::Access {
                cycle: i,
                pc: 0x40,
                vaddr: 0x1000 + i * 8,
                kind: AccessKind::Load,
                value: 0,
                size: 0,
                dep: (i % 7) as u32,
            })
            .collect();
        for version in [MIN_FORMAT_VERSION, FORMAT_VERSION] {
            let mut enc = Encoder::new(version);
            let mut dec = Decoder::new(version);
            let mut buf = Vec::new();
            for r in &records {
                enc.encode(r, &mut buf);
            }
            let mut cur = ByteCursor {
                bytes: &buf,
                pos: 0,
            };
            for r in &records {
                let tag = cur.u8().unwrap();
                let back = dec.decode(tag, &mut cur).unwrap();
                if version >= 2 {
                    assert_eq!(&back, r, "v2 must preserve dependence edges");
                } else {
                    match (&back, r) {
                        (
                            TraceRecord::Access { dep: got, .. },
                            TraceRecord::Access {
                                cycle,
                                pc,
                                vaddr,
                                kind,
                                value,
                                size,
                                ..
                            },
                        ) => {
                            assert_eq!(*got, 0, "v1 has no dependence edges");
                            assert_eq!(
                                back,
                                TraceRecord::Access {
                                    cycle: *cycle,
                                    pc: *pc,
                                    vaddr: *vaddr,
                                    kind: *kind,
                                    value: *value,
                                    size: *size,
                                    dep: 0,
                                }
                            );
                        }
                        _ => panic!("expected access"),
                    }
                }
            }
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn config_ops_roundtrip() {
        let ops = vec![
            ConfigOp::SetRange {
                id: RangeId(3),
                lo: 0x1000,
                hi: 0x2000,
                on_load: Some(7),
                on_prefetch: None,
                flags: FilterFlags {
                    ewma_iteration: true,
                    ewma_chain_start: false,
                    ewma_chain_end: true,
                },
            },
            ConfigOp::ClearRange { id: RangeId(9) },
            ConfigOp::SetGlobal {
                idx: 5,
                value: u64::MAX,
            },
            ConfigOp::SetTagKernel {
                tag: TagId(2),
                kernel: 11,
                chain_end: true,
            },
            ConfigOp::Enable(false),
        ];
        for op in ops {
            let mut buf = Vec::new();
            encode_config(&op, &mut buf);
            let mut cur = ByteCursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(decode_config(&mut cur).unwrap(), op);
        }
    }

    #[test]
    fn content_hash_is_order_sensitive() {
        let a = TraceRecord::Access {
            cycle: 1,
            pc: 1,
            vaddr: 0x40,
            kind: AccessKind::Load,
            value: 0,
            size: 0,
            dep: 0,
        };
        let b = TraceRecord::Access {
            cycle: 2,
            pc: 2,
            vaddr: 0x80,
            kind: AccessKind::Load,
            value: 0,
            size: 0,
            dep: 0,
        };
        assert_ne!(content_hash(&[a.clone(), b.clone()]), content_hash(&[b, a]));
    }

    #[test]
    fn content_hash_versions_diverge_only_when_deps_matter() {
        let mk = |dep| TraceRecord::Access {
            cycle: 3,
            pc: 9,
            vaddr: 0x140,
            kind: AccessKind::Load,
            value: 0,
            size: 0,
            dep,
        };
        // v1 ignores the dep field entirely...
        assert_eq!(
            content_hash_versioned(&[mk(0)], 1),
            content_hash_versioned(&[mk(5)], 1)
        );
        // ...while v2 hashes it.
        assert_ne!(
            content_hash_versioned(&[mk(0)], 2),
            content_hash_versioned(&[mk(5)], 2)
        );
    }
}
