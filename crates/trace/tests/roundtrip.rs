//! Property test: arbitrary access streams survive the delta-encoded
//! binary format exactly — write → read is the identity, and the content
//! hash agrees between writer, reader and the standalone hasher.

use etpp_mem::{AccessKind, ConfigOp, FilterFlags, RangeId, TagId};
use etpp_trace::{content_hash, TraceMeta, TraceReader, TraceRecord, TraceWriter};
use proptest::prelude::*;

/// Raw generator output folded into a well-formed record stream
/// (cycles non-decreasing, loads carrying no store payload).
type RawRec = ((u64, u32, u64), (u8, u64, u8));

fn materialise(raw: Vec<RawRec>) -> Vec<TraceRecord> {
    let mut cycle = 0u64;
    let mut out = Vec::with_capacity(raw.len());
    for ((dcycle, pc, vaddr), (sel, value, size_sel)) in raw {
        cycle += dcycle;
        let rec = match sel % 8 {
            // Occasional config records exercise the side encoding.
            0 => TraceRecord::Config {
                cycle,
                op: ConfigOp::SetGlobal {
                    idx: size_sel,
                    value,
                },
            },
            1 => TraceRecord::Config {
                cycle,
                op: ConfigOp::SetRange {
                    id: RangeId(pc as u16),
                    lo: vaddr.min(value),
                    hi: vaddr.max(value),
                    on_load: if value & 1 == 0 {
                        Some(size_sel as u16)
                    } else {
                        None
                    },
                    on_prefetch: if value & 2 == 0 {
                        Some(pc as u16)
                    } else {
                        None
                    },
                    flags: FilterFlags {
                        ewma_iteration: value & 4 != 0,
                        ewma_chain_start: value & 8 != 0,
                        ewma_chain_end: value & 16 != 0,
                    },
                },
            },
            2 => TraceRecord::Config {
                cycle,
                op: ConfigOp::SetTagKernel {
                    tag: TagId(pc as u16),
                    kernel: size_sel as u16,
                    chain_end: value & 1 != 0,
                },
            },
            3 | 4 => TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind: AccessKind::Store,
                value,
                size: [1u8, 4, 8][size_sel as usize % 3],
                dep: 0,
            },
            _ => TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind: AccessKind::Load,
                value: 0,
                size: 0,
                // Arbitrary dependence distances (far beyond real ROB
                // bounds too) must survive the v2 encoding.
                dep: (value >> 32) as u32 % 1000,
            },
        };
        out.push(rec);
    }
    out
}

proptest! {
    #[test]
    fn arbitrary_streams_roundtrip(
        raw in proptest::collection::vec(
            (
                (0u64..100_000, any::<u32>(), any::<u64>()),
                (0u8..8, any::<u64>(), 0u8..32),
            ),
            0..400,
        )
    ) {
        let records = materialise(raw);
        let meta = TraceMeta::new("prop", "tiny");

        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &meta).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        let (_, written_hash) = w.finish().unwrap();
        prop_assert_eq!(written_hash, content_hash(&records));

        let reader = TraceReader::new(buf.as_slice()).unwrap();
        prop_assert_eq!(reader.meta(), &meta);
        let back = reader.read_to_end().unwrap();
        prop_assert_eq!(back.records, records);
        prop_assert_eq!(&back.meta, &meta);
    }
}
