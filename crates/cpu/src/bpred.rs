//! Tournament branch predictor (Table 1 of the paper).
//!
//! A local predictor (2048-entry local-history table feeding a 2048-entry
//! pattern table), a global predictor (8192-entry gshare-style pattern
//! table), a 2048-entry chooser, and a 2048-entry BTB. The simulated core
//! only executes correct-path operations, so the predictor's job is to
//! decide *whether the front end would have stalled*: a mispredicted (or
//! BTB-missing taken) branch blocks fetch until the branch resolves.

/// Geometry of the tournament predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorParams {
    /// Entries in the local history table / local pattern table.
    pub local_entries: usize,
    /// Entries in the global pattern table.
    pub global_entries: usize,
    /// Entries in the chooser table.
    pub chooser_entries: usize,
    /// BTB entries.
    pub btb_entries: usize,
    /// Bits of local history kept per branch.
    pub local_history_bits: u32,
}

impl BranchPredictorParams {
    /// The paper's tournament predictor: 2048-entry local, 8192-entry
    /// global, 2048-entry chooser, 2048-entry BTB.
    pub fn paper() -> Self {
        BranchPredictorParams {
            local_entries: 2048,
            global_entries: 8192,
            chooser_entries: 2048,
            btb_entries: 2048,
            local_history_bits: 10,
        }
    }
}

impl Default for BranchPredictorParams {
    fn default() -> Self {
        BranchPredictorParams::paper()
    }
}

/// Tournament predictor state.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    params: BranchPredictorParams,
    local_history: Vec<u16>,
    local_pht: Vec<u8>,
    global_pht: Vec<u8>,
    chooser: Vec<u8>,
    btb: Vec<(u32, u64)>,
    global_history: u64,
    /// Branches predicted.
    pub predictions: u64,
    /// Mispredictions (direction wrong or taken-target unknown).
    pub mispredictions: u64,
}

#[inline]
fn ctr_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

#[inline]
fn ctr_taken(c: u8) -> bool {
    c >= 2
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken initial state.
    pub fn new(params: BranchPredictorParams) -> Self {
        assert!(params.local_entries.is_power_of_two());
        assert!(params.global_entries.is_power_of_two());
        assert!(params.chooser_entries.is_power_of_two());
        assert!(params.btb_entries.is_power_of_two());
        BranchPredictor {
            local_history: vec![0; params.local_entries],
            local_pht: vec![1; params.local_entries],
            global_pht: vec![1; params.global_entries],
            chooser: vec![2; params.chooser_entries],
            btb: vec![(u32::MAX, 0); params.btb_entries],
            global_history: 0,
            predictions: 0,
            mispredictions: 0,
            params,
        }
    }

    /// Predicts and immediately trains on the actual outcome, returning
    /// whether the front end predicted this branch correctly (direction and,
    /// for taken branches, target).
    pub fn predict_and_update(&mut self, pc: u32, taken: bool, target: u64) -> bool {
        self.predictions += 1;
        let p = self.params;

        let li = (pc as usize) & (p.local_entries - 1);
        let lhist = self.local_history[li] as usize & (p.local_entries - 1);
        let local_pred = ctr_taken(self.local_pht[lhist]);

        let gi = ((self.global_history as usize) ^ (pc as usize)) & (p.global_entries - 1);
        let global_pred = ctr_taken(self.global_pht[gi]);

        let ci = (pc as usize) & (p.chooser_entries - 1);
        let use_global = ctr_taken(self.chooser[ci]);
        let dir_pred = if use_global { global_pred } else { local_pred };

        // BTB: a predicted-taken branch with an unknown target still
        // redirects late — count it as a misprediction.
        let bi = (pc as usize) & (p.btb_entries - 1);
        let btb_hit = self.btb[bi].0 == pc && self.btb[bi].1 == target;

        let correct = dir_pred == taken && (!taken || btb_hit);

        // Train chooser toward whichever component was right.
        if local_pred != global_pred {
            ctr_update(&mut self.chooser[ci], global_pred == taken);
        }
        ctr_update(&mut self.local_pht[lhist], taken);
        ctr_update(&mut self.global_pht[gi], taken);
        self.local_history[li] =
            ((self.local_history[li] << 1) | taken as u16) & ((1 << p.local_history_bits) - 1);
        self.global_history = (self.global_history << 1) | taken as u64;
        if taken {
            self.btb[bi] = (pc, target);
        }

        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Misprediction rate over all predictions so far.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(BranchPredictorParams::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_loop_becomes_predictable() {
        let mut bp = BranchPredictor::default();
        let mut correct_late = 0;
        for i in 0..1000 {
            let c = bp.predict_and_update(0x400, true, 0x100);
            if i >= 100 && c {
                correct_late += 1;
            }
        }
        assert_eq!(correct_late, 900, "steady-state loop branch is perfect");
    }

    #[test]
    fn alternating_pattern_is_learned() {
        let mut bp = BranchPredictor::default();
        let mut correct_late = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            let c = bp.predict_and_update(0x500, taken, 0x200);
            if i >= 1000 && c {
                correct_late += 1;
            }
        }
        assert!(
            correct_late > 950,
            "local history should capture alternation, got {correct_late}/1000"
        );
    }

    #[test]
    fn random_data_dependent_branch_mispredicts() {
        // A pseudo-random direction stream can't be predicted well.
        let mut bp = BranchPredictor::default();
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            if !bp.predict_and_update(0x600, taken, 0x300) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 1000,
            "random branches should mispredict often, got {wrong}/4000"
        );
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias() {
        let mut bp = BranchPredictor::default();
        for _ in 0..500 {
            bp.predict_and_update(0x10, true, 0x1);
            bp.predict_and_update(0x20, false, 0x2);
        }
        assert!(bp.predict_and_update(0x10, true, 0x1));
        assert!(bp.predict_and_update(0x20, false, 0x2));
    }
}
